//! The abstract 2-D matrix data type.
//!
//! A [`Matrix`] is the two-dimensional sibling of [`crate::vector::Vector`]:
//! a row-major `rows × cols` view over the same shared
//! `container::Storage` coherence core, kept consistent
//! automatically and *lazily*. Matrices are always split at row granularity
//! ([`MatrixDistribution`]); under [`MatrixDistribution::OverlapBlock`] each
//! device part is padded with `halo_rows` read-only rows from its neighbours
//! (filled by a [`Boundary`] policy at the matrix edges), which is the
//! layout stencil skeletons ([`crate::skeletons::MapOverlap`]) execute on.
//! Re-establishing coherence between stencil sweeps exchanges **only the
//! halo rows** — never whole parts — and every exchange is visible in the
//! oclsim transfer stats and in the runtime's
//! [`crate::runtime::ExecTrace`] halo counters.
//!
//! The matrix contributes only the 2-D shape bookkeeping (rows × columns,
//! boundary policies, halo widths); every transfer and validity decision is
//! made by the shared `Storage`, driven by the segment geometry of
//! [`crate::distribution::RowPartition`].

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{pod, Buffer, CostHint, Pod};

use crate::container::{Container, EdgePolicy, PartLayout, Storage};
use crate::distribution::{Boundary, MatrixDistribution, Partition, RowPartition};
use crate::error::{Result, SkelError};
use crate::runtime::{DeviceSelection, SkelCl};
use crate::scheduler::StaticScheduler;
use crate::vector::Residence;

/// Compare two boundaries by value; the constant compares by its `Pod` byte
/// representation, so no `PartialEq` bound on `T` is needed.
pub(crate) fn boundary_eq<T: Pod>(a: &Boundary<T>, b: &Boundary<T>) -> bool {
    match (a, b) {
        (Boundary::Clamp, Boundary::Clamp) | (Boundary::Wrap, Boundary::Wrap) => true,
        (Boundary::Constant(x), Boundary::Constant(y)) => {
            pod::as_bytes(std::slice::from_ref(x)) == pod::as_bytes(std::slice::from_ref(y))
        }
        _ => false,
    }
}

/// Split a [`Boundary`] into the shape-agnostic edge policy and the fill
/// constant the storage keeps.
fn boundary_parts<T: Pod>(boundary: &Boundary<T>) -> (EdgePolicy, Option<T>) {
    match boundary {
        Boundary::Clamp => (EdgePolicy::Clamp, None),
        Boundary::Wrap => (EdgePolicy::Wrap, None),
        Boundary::Constant(c) => (EdgePolicy::Fill, Some(*c)),
    }
}

/// The SkelCL matrix: a row-major 2-D container with host + multi-device
/// storage and lazy coherence. Cloning is cheap and yields a handle to the
/// *same* underlying data, like [`crate::vector::Vector`].
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(2);
/// let m = Matrix::from_fn(&rt, 4, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.rows(), 4);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.to_vec().unwrap()[5], 5.0);
/// ```
pub struct Matrix<T: Pod> {
    id: u64,
    inner: Arc<Mutex<Storage<T, MatrixDistribution>>>,
}

impl<T: Pod> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Matrix {
            id: self.id,
            inner: self.inner.clone(),
        }
    }
}

impl<T: Pod> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Matrix")
            .field("id", &self.id)
            .field("rows", &inner.shape.0)
            .field("cols", &inner.shape.1)
            .field("distribution", &inner.distribution)
            .finish()
    }
}

impl<T: Pod> Matrix<T> {
    /// Create a matrix from row-major host data. The initial distribution is
    /// [`MatrixDistribution::RowBlock`]; no device transfer happens until the
    /// matrix is first used on the devices.
    pub fn from_vec(
        runtime: &Arc<SkelCl>,
        rows: usize,
        cols: usize,
        data: Vec<T>,
    ) -> Result<Matrix<T>> {
        if data.len() != rows * cols {
            return Err(SkelError::Distribution(format!(
                "matrix shape {rows}×{cols} needs {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix {
            id: runtime.next_vector_id(),
            inner: Arc::new(Mutex::new(Storage::new_host(
                runtime.clone(),
                data,
                (rows, cols),
                MatrixDistribution::default_for_inputs(),
            ))),
        })
    }

    /// Create a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(
        runtime: &Arc<SkelCl>,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix::from_vec(runtime, rows, cols, data).expect("shape matches by construction")
    }

    /// Create a `rows × cols` matrix of copies of `value`.
    pub fn filled(runtime: &Arc<SkelCl>, rows: usize, cols: usize, value: T) -> Matrix<T> {
        Matrix::from_vec(runtime, rows, cols, vec![value; rows * cols])
            .expect("shape matches by construction")
    }

    /// Internal constructor for device-resident outputs: the data already
    /// lives in per-device buffers; the host copy is stale, and any halo
    /// rows are stale too (stencil kernels write core rows only), so the
    /// next device use triggers a halo exchange rather than a full upload.
    pub(crate) fn device_resident(
        runtime: &Arc<SkelCl>,
        rows: usize,
        cols: usize,
        distribution: MatrixDistribution,
        boundary: Boundary<T>,
        buffers: Vec<Option<Buffer>>,
    ) -> Matrix<T> {
        let (edge, fill) = boundary_parts(&boundary);
        Matrix {
            id: runtime.next_vector_id(),
            inner: Arc::new(Mutex::new(Storage::new_device_resident(
                runtime.clone(),
                (rows, cols),
                distribution,
                buffers,
                edge,
                fill,
            ))),
        }
    }

    /// Stable identity of the matrix (used to detect aliasing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The runtime this matrix belongs to.
    pub fn runtime(&self) -> Arc<SkelCl> {
        self.inner.lock().runtime.clone()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.inner.lock().shape.0
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.inner.lock().shape.1
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.shape.0 * inner.shape.1
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current distribution.
    pub fn distribution(&self) -> MatrixDistribution {
        self.inner.lock().distribution.clone()
    }

    /// Where the authoritative data currently lives.
    pub fn residence(&self) -> Residence {
        self.inner.lock().residence()
    }

    /// Per-device core row counts under the current distribution.
    pub fn row_counts(&self) -> Vec<usize> {
        self.inner.lock().layout.core_row_counts()
    }

    /// Change the distribution. Like the vector, the implied data exchange
    /// goes through the host and the re-upload happens lazily on next device
    /// use. For halo-only refreshes between stencil sweeps the runtime uses
    /// [`Matrix::set_overlap`] + halo exchanges instead — never this path.
    /// The boundary policy is kept across redistributions.
    pub fn set_distribution(&self, distribution: MatrixDistribution) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.distribution == distribution {
            return Ok(());
        }
        let (edge, fill) = (inner.edge, inner.fill);
        inner.redistribute(distribution, edge, fill)
    }

    /// Coerce the matrix to [`MatrixDistribution::OverlapBlock`] with the
    /// given halo width and boundary policy (the stencil-launch preparation
    /// step). A matrix already overlap-distributed with the same halo and
    /// boundary keeps its device parts untouched; a boundary-only change
    /// invalidates just the halo rows; anything else is a full
    /// redistribution through the host.
    pub fn set_overlap(&self, halo_rows: usize, boundary: Boundary<T>) -> Result<()> {
        let mut inner = self.inner.lock();
        let (edge, fill) = boundary_parts(&boundary);
        // Either overlap variant with the matching halo width already has
        // the padded layout; in particular a weighted overlap left behind by
        // fault recovery must keep its survivor weights rather than being
        // clobbered back to an even split.
        let already_overlapped =
            inner.distribution.is_overlap() && inner.distribution.halo_rows() == halo_rows;
        if already_overlapped && boundary_eq(&self.boundary_of(&inner), &boundary) {
            return Ok(());
        }
        if !already_overlapped {
            inner.redistribute(MatrixDistribution::OverlapBlock { halo_rows }, edge, fill)?;
        } else {
            // Same layout, different boundary: only the policy-filled edge
            // halos change; a halo refresh re-fills them.
            inner.edge = edge;
            inner.fill = fill;
            inner.halos_valid = false;
        }
        Ok(())
    }

    /// Reconstruct the boundary policy from the storage's edge + fill state.
    fn boundary_of(&self, inner: &Storage<T, MatrixDistribution>) -> Boundary<T> {
        match inner.edge {
            EdgePolicy::Clamp => Boundary::Clamp,
            EdgePolicy::Wrap => Boundary::Wrap,
            EdgePolicy::Fill => Boundary::Constant(
                inner
                    .fill
                    .expect("fill-edged matrices carry their constant"),
            ),
        }
    }

    /// The boundary policy used to fill edge halos.
    pub fn boundary(&self) -> Boundary<T> {
        let inner = self.inner.lock();
        self.boundary_of(&inner)
    }

    /// Declare that a kernel has modified the matrix's device data through a
    /// channel the runtime cannot see: the host copy and the halo rows
    /// become stale.
    pub fn mark_device_modified(&self) {
        self.inner.lock().mark_device_modified();
    }

    /// Copy the matrix's contents to a row-major host `Vec`, downloading
    /// (core rows only) from the devices if they hold the newer copy.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        Ok(inner.host.clone())
    }

    /// Run `f` over the row-major host copy (downloading first if needed).
    pub fn with_host<R>(&self, f: impl FnOnce(&[T]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        Ok(f(&inner.host))
    }

    /// Mutate the host copy in place (shape is fixed); the device copies
    /// become stale and are re-uploaded lazily.
    pub fn update_host(&self, f: impl FnOnce(&mut [T])) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        f(&mut inner.host);
        inner.invalidate_devices();
        Ok(())
    }

    /// Element at `(row, col)` (downloads if the devices hold the newer
    /// copy).
    pub fn get(&self, row: usize, col: usize) -> Result<T> {
        let mut inner = self.inner.lock();
        let (rows, cols) = inner.shape;
        if row >= rows || col >= cols {
            return Err(SkelError::Distribution(format!(
                "element ({row}, {col}) out of bounds for a {rows}×{cols} matrix"
            )));
        }
        inner.download_to_host()?;
        Ok(inner.host[row * cols + col])
    }

    /// Ensure the matrix data is present on the devices under its current
    /// distribution; under `OverlapBlock` this also guarantees **fresh halo
    /// rows**, refreshed by a halo-only exchange when the core data is
    /// already device-resident (the between-sweeps path of iterative
    /// stencils). Returns the partition and per-device buffers.
    pub(crate) fn prepare_on_devices(&self) -> Result<(RowPartition, Vec<Option<Buffer>>)> {
        let mut inner = self.inner.lock();
        inner.prepare_on_devices()?;
        Ok((inner.layout.clone(), inner.buffers.clone()))
    }

    /// Force the halo rows fresh now (no-op for non-overlap distributions or
    /// when they are already valid). Exposed for tests and diagnostics.
    pub fn refresh_halos(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.devices_valid {
            inner.refresh_halos()?;
        }
        Ok(())
    }

    /// Declare this matrix the freshly written target of a stencil sweep
    /// that reused its device buffers in place (the iterative driver's
    /// ping-pong): the devices hold the authoritative core rows, the host
    /// copy and the halo rows are stale.
    pub(crate) fn mark_stencil_output(&self) {
        self.inner.lock().mark_devices_authoritative();
    }

    /// Commit this matrix as the output of an element-wise launch that wrote
    /// the given buffers: adopt shape, distribution and buffers.
    pub(crate) fn commit_as_output(
        &self,
        rows: usize,
        cols: usize,
        distribution: MatrixDistribution,
        buffers: Vec<Option<Buffer>>,
    ) -> Result<()> {
        self.inner
            .lock()
            .commit_as_output((rows, cols), distribution, buffers)
    }

    /// Check that this matrix belongs to `runtime`.
    pub(crate) fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        if Arc::ptr_eq(&self.inner.lock().runtime, runtime) {
            Ok(())
        } else {
            Err(SkelError::RuntimeMismatch)
        }
    }

    /// The buffer of device `d`, if the matrix currently has one there.
    pub fn buffer_of(&self, device: usize) -> Option<Buffer> {
        self.inner.lock().buffers.get(device).cloned().flatten()
    }

    /// The boundary carried onto element-wise outputs: `Clamp`/`Wrap` are
    /// element-type-independent and transfer as-is; a `Constant` (an
    /// input-element value) does not transfer to the output element type and
    /// falls back to clamp — consistent with the stencil skeleton's output
    /// policy.
    fn output_boundary<O: Pod>(&self) -> Boundary<O> {
        match self.boundary() {
            Boundary::Wrap => Boundary::Wrap,
            _ => Boundary::Clamp,
        }
    }
}

impl<T: Pod> Container<T> for Matrix<T> {
    type Rebound<O: Pod> = Matrix<O>;

    fn runtime(&self) -> Arc<SkelCl> {
        Matrix::runtime(self)
    }

    fn id(&self) -> u64 {
        Matrix::id(self)
    }

    fn elem_count(&self) -> usize {
        self.len()
    }

    fn part_sizes(&self) -> Vec<usize> {
        self.inner.lock().layout.flat_partition().sizes()
    }

    fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        Matrix::check_runtime(self, runtime)
    }

    fn ensure_on_devices(&self) -> Result<()> {
        self.inner.lock().prepare_on_devices()
    }

    fn mark_device_modified(&self) {
        Matrix::mark_device_modified(self)
    }

    fn gather(&self) -> Result<Vec<T>> {
        self.to_vec()
    }

    fn apply_selection(&self, selection: &DeviceSelection) -> Result<()> {
        match selection {
            DeviceSelection::All | DeviceSelection::AllGpus => Ok(()),
            _ => Err(SkelError::Distribution(
                "matrix launches run on all devices of the runtime; \
                 initialise the runtime with the devices you want"
                    .into(),
            )),
        }
    }

    fn apply_scheduler(&self, _scheduler: &StaticScheduler, _cost: CostHint) -> Result<()> {
        Err(SkelError::Distribution(
            "schedulers are not supported on matrix launches yet; \
             matrices always split at row granularity"
                .into(),
        ))
    }

    fn unify_with<B: Pod>(&self, other: &Matrix<B>) -> Result<()> {
        let (lr, lc) = (self.rows(), self.cols());
        let (rr, rc) = (other.rows(), other.cols());
        if (lr, lc) != (rr, rc) {
            return Err(SkelError::Distribution(format!(
                "zip requires equal matrix shapes, got {lr}×{lc} and {rr}×{rc}"
            )));
        }
        if self.distribution() != other.distribution() {
            self.set_distribution(MatrixDistribution::RowBlock)?;
            other.set_distribution(MatrixDistribution::RowBlock)?;
        }
        Ok(())
    }

    fn ensure_disjoint(&self) -> Result<()> {
        if self.distribution() == MatrixDistribution::Copy {
            self.set_distribution(MatrixDistribution::RowBlock)?;
        }
        Ok(())
    }

    fn repartition_for_recovery(&self, weights: &[f64]) -> Result<()> {
        let current = self.distribution();
        let target = if current.is_overlap() {
            MatrixDistribution::overlap_block_weighted(current.halo_rows(), weights)
        } else {
            MatrixDistribution::row_block_weighted(weights)
        };
        self.set_distribution(target)
    }

    fn refresh_for_replay(&self) -> Result<()> {
        self.inner.lock().refresh_for_replay()
    }

    fn prepare_elementwise(&self) -> Result<(Partition, Vec<Option<Buffer>>)> {
        // Halo-padded parts interleave padding with core data; element-wise
        // kernels iterate owned elements only, so coerce to plain row blocks
        // (keeping any recovery weights).
        match self.distribution() {
            MatrixDistribution::OverlapBlock { .. } => {
                self.set_distribution(MatrixDistribution::RowBlock)?;
            }
            MatrixDistribution::OverlapBlockWeighted { weights, .. } => {
                self.set_distribution(MatrixDistribution::RowBlockWeighted(weights))?;
            }
            _ => {}
        }
        let mut inner = self.inner.lock();
        inner.ensure_on_devices()?;
        Ok((inner.layout.flat_partition(), inner.buffers.clone()))
    }

    fn obtain_output_buffers(&self, partition: &Partition) -> Result<Vec<Option<Buffer>>> {
        self.inner.lock().obtain_output_buffers(partition)
    }

    fn wrap_output<O: Pod>(&self, buffers: Vec<Option<Buffer>>) -> Matrix<O> {
        Matrix::device_resident(
            &self.runtime(),
            self.rows(),
            self.cols(),
            self.distribution(),
            self.output_boundary::<O>(),
            buffers,
        )
    }

    fn commit_output<O: Pod>(&self, out: &Matrix<O>, buffers: Vec<Option<Buffer>>) -> Result<()> {
        out.commit_as_output(self.rows(), self.cols(), self.distribution(), buffers)?;
        // Keep both output paths (fresh wrap and run_into commit) consistent:
        // the target adopts the input's boundary metadata too.
        let (edge, fill) = boundary_parts(&self.output_boundary::<O>());
        let mut inner = out.inner.lock();
        inner.edge = edge;
        inner.fill = fill;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fluent pipeline API (element-wise skeletons over matrices)
// ---------------------------------------------------------------------------

use crate::args::Args;
use crate::skeletons::{DeviceScalar, Map, Reduce, Skeleton, Zip};

impl<T: Pod> Matrix<T> {
    /// Apply a [`Map`] skeleton element-wise to this matrix:
    /// `m.map(&square)?` is shorthand for `square.run(&m).exec()?`. The
    /// output matrix has the same shape and distribution.
    pub fn map<O: Pod>(&self, skeleton: &Map<T, O>) -> Result<Matrix<O>> {
        skeleton.run(self).exec()
    }

    /// Apply a [`Map`] skeleton with additional arguments.
    pub fn map_with<O: Pod>(&self, skeleton: &Map<T, O>, args: Args) -> Result<Matrix<O>> {
        skeleton.run(self).args(args).exec()
    }

    /// Apply a [`Map`] skeleton writing into `out` (buffer reuse).
    pub fn map_into<O: Pod>(&self, skeleton: &Map<T, O>, out: &Matrix<O>) -> Result<()> {
        skeleton.run(self).run_into(out)
    }

    /// Pair this matrix element-wise with `other` (same shape) under a
    /// [`Zip`] skeleton: `a.zip(&b, &add)?`.
    pub fn zip<B: Pod, O: Pod>(
        &self,
        other: &Matrix<B>,
        skeleton: &Zip<T, B, O>,
    ) -> Result<Matrix<O>> {
        skeleton.run(self, other).exec()
    }

    /// Apply a [`Zip`] skeleton with additional arguments.
    pub fn zip_with<B: Pod, O: Pod>(
        &self,
        other: &Matrix<B>,
        skeleton: &Zip<T, B, O>,
        args: Args,
    ) -> Result<Matrix<O>> {
        skeleton.run(self, other).args(args).exec()
    }

    /// Apply a [`Zip`] skeleton writing into `out` (buffer reuse).
    pub fn zip_into<B: Pod, O: Pod>(
        &self,
        other: &Matrix<B>,
        skeleton: &Zip<T, B, O>,
        out: &Matrix<O>,
    ) -> Result<()> {
        skeleton.run(self, other).run_into(out)
    }
}

impl Matrix<f32> {
    /// Open a lazy pipeline plan over this matrix: adjacent map stages fuse
    /// into one composed kernel, stencil stages stay barriers — see
    /// [`crate::plan::MatPlan`].
    pub fn lazy<'a>(&self) -> crate::plan::MatPlan<'a> {
        crate::plan::MatPlan::new(self)
    }
}

impl<T: DeviceScalar> Matrix<T> {
    /// Reduce every element of this matrix to a single value:
    /// `m.reduce(&sum)?`.
    pub fn reduce(&self, skeleton: &Reduce<T>) -> Result<T> {
        Skeleton::execute(skeleton, self, &crate::skeletons::LaunchConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;

    #[test]
    fn from_vec_round_trip_and_shape_checks() {
        let rt = init_gpus(2);
        let m = Matrix::from_vec(&rt, 2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.get(1, 2).unwrap(), 6.0);
        assert!(m.get(2, 0).is_err());
        assert!(Matrix::from_vec(&rt, 2, 3, vec![0.0f32; 5]).is_err());
        assert_eq!(m.distribution(), MatrixDistribution::RowBlock);
        assert_eq!(m.residence(), Residence::HostOnly);
    }

    #[test]
    fn row_block_upload_and_download() {
        let rt = init_gpus(3);
        let m = Matrix::from_fn(&rt, 7, 4, |r, c| (r * 10 + c) as f32);
        let expected = m.to_vec().unwrap();
        let (partition, buffers) = m.prepare_on_devices().unwrap();
        assert_eq!(partition.core_row_counts().iter().sum::<usize>(), 7);
        assert_eq!(buffers.iter().filter(|b| b.is_some()).count(), 3);
        m.mark_device_modified();
        assert_eq!(m.residence(), Residence::DevicesOnly);
        assert_eq!(m.to_vec().unwrap(), expected);
    }

    #[test]
    fn overlap_upload_pads_parts_with_halo_rows() {
        let rt = init_gpus(2);
        let m = Matrix::from_fn(&rt, 6, 2, |r, _| r as f32);
        m.set_overlap(1, Boundary::Clamp).unwrap();
        let (partition, buffers) = m.prepare_on_devices().unwrap();
        assert_eq!(partition.halo(), 1);
        // Device 0 owns rows 0..3, stores rows -1..4 (clamped): 5 rows.
        assert_eq!(buffers[0].as_ref().unwrap().len(), 5 * 2);
        // Read the raw part back: clamp duplicates row 0 at the top, and the
        // bottom halo row is the neighbour's row 3.
        let mut part = vec![0.0f32; 10];
        rt.queue(0)
            .enqueue_read_buffer(buffers[0].as_ref().unwrap(), &mut part)
            .unwrap();
        assert_eq!(part, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        // Downloads gather core rows only.
        m.mark_device_modified();
        assert_eq!(
            m.to_vec().unwrap(),
            Matrix::from_fn(&rt, 6, 2, |r, _| r as f32)
                .to_vec()
                .unwrap()
        );
    }

    #[test]
    fn wrap_boundary_fills_halos_cyclically() {
        let rt = init_gpus(1);
        let m = Matrix::from_fn(&rt, 3, 1, |r, _| r as f32);
        m.set_overlap(2, Boundary::Wrap).unwrap();
        let (_, buffers) = m.prepare_on_devices().unwrap();
        let mut part = vec![0.0f32; 7];
        rt.queue(0)
            .enqueue_read_buffer(buffers[0].as_ref().unwrap(), &mut part)
            .unwrap();
        // rows -2..5 wrapped over 3 rows: 1 2 | 0 1 2 | 0 1
        assert_eq!(part, vec![1.0, 2.0, 0.0, 1.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn constant_boundary_fills_halos_with_the_constant() {
        let rt = init_gpus(1);
        let m = Matrix::from_fn(&rt, 2, 2, |r, c| (r * 2 + c) as f32);
        m.set_overlap(1, Boundary::Constant(-7.0)).unwrap();
        let (_, buffers) = m.prepare_on_devices().unwrap();
        let mut part = vec![0.0f32; 8];
        rt.queue(0)
            .enqueue_read_buffer(buffers[0].as_ref().unwrap(), &mut part)
            .unwrap();
        assert_eq!(part, vec![-7.0, -7.0, 0.0, 1.0, 2.0, 3.0, -7.0, -7.0]);
    }

    #[test]
    fn halo_refresh_moves_only_halo_rows() {
        let rt = init_gpus(2);
        let m = Matrix::from_fn(&rt, 8, 16, |r, c| (r * 16 + c) as f32);
        m.set_overlap(2, Boundary::Clamp).unwrap();
        m.prepare_on_devices().unwrap();
        rt.drain_events();
        // Simulate a sweep having modified the cores: halos stale.
        m.mark_device_modified();
        m.refresh_halos().unwrap();
        let events = rt.drain_events();
        let transfers: Vec<&oclsim::Event> = events
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .collect();
        // Interior boundary + clamped edges, grouped into runs: each halo
        // region is one read + one write of halo*cols elements.
        assert!(!transfers.is_empty());
        let max_bytes = transfers.iter().map(|e| e.bytes).max().unwrap();
        assert!(
            max_bytes <= 2 * 16 * 4,
            "halo refresh must move at most halo*cols elements per transfer, got {max_bytes}"
        );
        let trace = rt.exec_trace();
        assert!(trace.devices.iter().any(|d| d.halo_bytes > 0));
    }

    #[test]
    fn same_overlap_is_a_noop_and_boundary_change_only_invalidates_halos() {
        let rt = init_gpus(2);
        let m = Matrix::from_fn(&rt, 16, 16, |r, c| (r + c) as f32);
        m.set_overlap(1, Boundary::Clamp).unwrap();
        m.prepare_on_devices().unwrap();
        let before = rt.now();
        m.set_overlap(1, Boundary::Clamp).unwrap();
        assert_eq!(rt.now(), before, "identical overlap must not move data");
        // Changing only the boundary refreshes halos, not whole parts: the
        // traffic is a few single rows (64 B each), far below the padded
        // part re-upload of (8 + 2) * 16 * 4 = 640 B per device.
        m.set_overlap(1, Boundary::Constant(0.0)).unwrap();
        rt.drain_events();
        m.prepare_on_devices().unwrap();
        let events = rt.drain_events();
        let uploads: usize = events
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .map(|e| e.bytes)
            .sum();
        assert!(
            uploads < 10 * 16 * 4,
            "boundary change must exchange halos only, moved {uploads} bytes"
        );
    }

    #[test]
    fn clone_shares_data_and_single_distribution_works() {
        let rt = init_gpus(3);
        let m = Matrix::filled(&rt, 3, 3, 2.5f32);
        let n = m.clone();
        assert_eq!(m.id(), n.id());
        m.set_distribution(MatrixDistribution::Single(1)).unwrap();
        let (partition, buffers) = n.prepare_on_devices().unwrap();
        assert_eq!(partition.core_row_counts(), vec![0, 3, 0]);
        assert!(buffers[1].is_some() && buffers[0].is_none());
        assert!(m.set_distribution(MatrixDistribution::Single(9)).is_err());
        assert_eq!(n.to_vec().unwrap(), vec![2.5f32; 9]);
    }

    #[test]
    fn update_host_invalidates_devices() {
        let rt = init_gpus(2);
        let m = Matrix::filled(&rt, 2, 2, 0.0f32);
        m.prepare_on_devices().unwrap();
        m.update_host(|h| h[3] = 9.0).unwrap();
        assert_eq!(m.residence(), Residence::HostOnly);
        assert_eq!(m.to_vec().unwrap(), vec![0.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn runtime_mismatch_is_detected() {
        let rt1 = init_gpus(1);
        let rt2 = init_gpus(1);
        let m = Matrix::filled(&rt1, 1, 1, 0i32);
        assert!(m.check_runtime(&rt1).is_ok());
        assert!(m.check_runtime(&rt2).is_err());
    }

    #[test]
    fn boundary_comparison_by_bytes() {
        assert!(boundary_eq::<f32>(&Boundary::Clamp, &Boundary::Clamp));
        assert!(!boundary_eq::<f32>(&Boundary::Clamp, &Boundary::Wrap));
        assert!(boundary_eq(
            &Boundary::Constant(1.5f32),
            &Boundary::Constant(1.5f32)
        ));
        assert!(!boundary_eq(
            &Boundary::Constant(1.5f32),
            &Boundary::Constant(2.5f32)
        ));
    }

    #[test]
    fn elementwise_outputs_adopt_the_input_boundary_metadata() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");

        // Wrap is element-type-independent and transfers to the output on
        // both output paths (fresh exec and run_into commit).
        let m = Matrix::filled(&rt, 4, 2, 1.0f32);
        m.set_overlap(1, Boundary::Wrap).unwrap();
        let out = m.map(&inc).unwrap();
        assert!(matches!(out.boundary(), Boundary::Wrap));
        let target = Matrix::filled(&rt, 4, 2, 0.0f32);
        target.set_overlap(1, Boundary::Constant(3.0)).unwrap();
        m.map_into(&inc, &target).unwrap();
        assert!(matches!(target.boundary(), Boundary::Wrap));
        assert_eq!(target.to_vec().unwrap(), vec![2.0f32; 8]);

        // A constant boundary is an input-element value and cannot transfer
        // to the output element type: both paths fall back to clamp.
        let c = Matrix::filled(&rt, 4, 2, 1.0f32);
        c.set_overlap(1, Boundary::Constant(7.0)).unwrap();
        let out = c.map(&inc).unwrap();
        assert!(matches!(out.boundary(), Boundary::Clamp));
    }

    #[test]
    fn empty_matrices_round_trip_through_every_distribution() {
        let rt = init_gpus(3);
        for (rows, cols) in [(0usize, 5usize), (4, 0), (0, 0)] {
            let m = Matrix::from_vec(&rt, rows, cols, Vec::<f32>::new()).unwrap();
            for dist in [
                MatrixDistribution::RowBlock,
                MatrixDistribution::Copy,
                MatrixDistribution::Single(1),
                MatrixDistribution::OverlapBlock { halo_rows: 2 },
                MatrixDistribution::RowBlock,
            ] {
                m.set_distribution(dist.clone()).unwrap();
                let (_, buffers) = m.prepare_on_devices().unwrap();
                assert!(
                    buffers.iter().all(Option::is_none),
                    "empty {rows}×{cols} matrix must allocate nothing under {dist:?}"
                );
                m.mark_device_modified();
                assert_eq!(m.to_vec().unwrap(), Vec::<f32>::new());
                assert_eq!(m.rows(), rows);
                assert_eq!(m.cols(), cols);
            }
        }
    }
}
