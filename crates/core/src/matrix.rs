//! The abstract 2-D matrix data type.
//!
//! A [`Matrix`] is the two-dimensional sibling of [`crate::vector::Vector`]:
//! a row-major `rows × cols` container whose data is accessible by both CPU
//! and GPU, kept consistent automatically and *lazily*. Matrices are always
//! split at row granularity ([`MatrixDistribution`]); under
//! [`MatrixDistribution::OverlapBlock`] each device part is padded with
//! `halo_rows` read-only rows from its neighbours (filled by a [`Boundary`]
//! policy at the matrix edges), which is the layout stencil skeletons
//! ([`crate::skeletons::MapOverlap`]) execute on. Re-establishing coherence
//! between stencil sweeps exchanges **only the halo rows** — never whole
//! parts — and every exchange is visible in the oclsim transfer stats and in
//! the runtime's [`crate::runtime::ExecTrace`] halo counters.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{pod, Buffer, Pod};

use crate::distribution::{Boundary, MatrixDistribution, RowPartition};
use crate::error::{Result, SkelError};
use crate::runtime::SkelCl;
use crate::vector::Residence;

/// Compare two boundaries by value; the constant compares by its `Pod` byte
/// representation, so no `PartialEq` bound on `T` is needed.
pub(crate) fn boundary_eq<T: Pod>(a: &Boundary<T>, b: &Boundary<T>) -> bool {
    match (a, b) {
        (Boundary::Clamp, Boundary::Clamp) | (Boundary::Wrap, Boundary::Wrap) => true,
        (Boundary::Constant(x), Boundary::Constant(y)) => {
            pod::as_bytes(std::slice::from_ref(x)) == pod::as_bytes(std::slice::from_ref(y))
        }
        _ => false,
    }
}

/// Where one padded (halo) row comes from.
enum RowSource {
    /// A real matrix row (global row index).
    Row(usize),
    /// A row of the boundary constant.
    Constant,
}

struct Inner<T: Pod> {
    runtime: Arc<SkelCl>,
    host: Vec<T>,
    rows: usize,
    cols: usize,
    host_valid: bool,
    devices_valid: bool,
    /// Under `OverlapBlock`: whether the halo rows of the device parts match
    /// the neighbours' current core rows. A stencil sweep leaves the freshly
    /// written output with stale halos; the next device use refreshes them
    /// through a halo exchange instead of a full redistribution.
    halos_valid: bool,
    distribution: MatrixDistribution,
    partition: RowPartition,
    buffers: Vec<Option<Buffer>>,
    /// Halo fill policy at the matrix edges (meaningful under
    /// `OverlapBlock`; kept across redistributions).
    boundary: Boundary<T>,
}

impl<T: Pod> Inner<T> {
    fn release_buffers(&mut self) {
        for buf in self.buffers.iter_mut() {
            if let Some(b) = buf.take() {
                let _ = self.runtime.context().release_buffer(&b);
            }
        }
    }

    /// Resolve padded row index `p` (may be negative or `>= rows`) to its
    /// source under the boundary policy.
    fn row_source(&self, p: i64) -> RowSource {
        let rows = self.rows as i64;
        if (0..rows).contains(&p) {
            return RowSource::Row(p as usize);
        }
        match self.boundary {
            Boundary::Clamp => RowSource::Row(p.clamp(0, rows - 1) as usize),
            Boundary::Wrap => RowSource::Row(p.rem_euclid(rows) as usize),
            Boundary::Constant(_) => RowSource::Constant,
        }
    }

    /// Append the contents of padded row `p` (boundary policy applied) to a
    /// part being assembled for upload.
    fn push_padded_row(&self, p: i64, part: &mut Vec<T>) {
        match self.row_source(p) {
            RowSource::Row(r) => {
                part.extend_from_slice(&self.host[r * self.cols..(r + 1) * self.cols])
            }
            RowSource::Constant => {
                let Boundary::Constant(c) = self.boundary else {
                    unreachable!("row_source yields Constant only for constant boundaries")
                };
                part.resize(part.len() + self.cols, c);
            }
        }
    }

    fn ensure_on_devices(&mut self) -> Result<()> {
        if self.devices_valid {
            return Ok(());
        }
        debug_assert!(self.host_valid, "either host or devices must be valid");
        let halo = self.partition.halo() as i64;
        for device in 0..self.partition.device_count() {
            let stored = self.partition.stored_len(device);
            if stored == 0 {
                continue;
            }
            let buffer = match &self.buffers[device] {
                Some(b) if b.len() == stored => b.clone(),
                _ => {
                    if let Some(old) = self.buffers[device].take() {
                        let _ = self.runtime.context().release_buffer(&old);
                    }
                    let b = self.runtime.context().create_buffer::<T>(device, stored)?;
                    self.buffers[device] = Some(b.clone());
                    b
                }
            };
            let core = self.partition.core_rows(device);
            // Build the part to upload: the top halo rows (policy-filled),
            // the core rows as one contiguous host slice, the bottom halo.
            let mut part = Vec::with_capacity(stored);
            for p in core.start as i64 - halo..core.start as i64 {
                self.push_padded_row(p, &mut part);
            }
            part.extend_from_slice(&self.host[core.start * self.cols..core.end * self.cols]);
            for p in core.end as i64..core.end as i64 + halo {
                self.push_padded_row(p, &mut part);
            }
            self.runtime
                .queue(device)
                .enqueue_write_buffer(&buffer, &part)?;
        }
        self.devices_valid = true;
        self.halos_valid = true;
        Ok(())
    }

    /// Re-fill the halo rows of every device part from the neighbours'
    /// current *core* rows (and the boundary policy at the matrix edges),
    /// without touching any core data. Consecutive halo rows with the same
    /// owner move as one transfer, so the exchange between two neighbouring
    /// parts is a single `halo_rows × cols` read plus one write.
    fn refresh_halos(&mut self) -> Result<()> {
        debug_assert!(self.devices_valid);
        let halo = self.partition.halo();
        if halo == 0 || self.halos_valid {
            self.halos_valid = true;
            return Ok(());
        }
        let cols = self.cols;
        let elem = std::mem::size_of::<T>();
        for device in self.partition.active_devices() {
            let core = self.partition.core_rows(device);
            let dst = self.buffers[device]
                .as_ref()
                .expect("active parts hold a buffer")
                .clone();
            // Padded slots: `slot` is the row index within the stored part;
            // core rows occupy slots halo .. halo + core_len.
            let slots: Vec<(usize, i64)> = (0..halo)
                .map(|k| (k, core.start as i64 - halo as i64 + k as i64))
                .chain((0..halo).map(|k| (halo + core.len() + k, core.end as i64 + k as i64)))
                .collect();
            // Group consecutive slots whose sources are consecutive rows of
            // the same owning device into one read + one write.
            let mut run: Option<(usize, usize, usize, usize)> = None; // (slot0, src_row0, owner, len)
            let flush =
                |inner: &Self, run: &mut Option<(usize, usize, usize, usize)>| -> Result<()> {
                    if let Some((slot0, src_row0, owner, len)) = run.take() {
                        let src_buf = inner.buffers[owner].as_ref().expect("owners hold a buffer");
                        let owner_core = inner.partition.core_rows(owner);
                        let src_off = (src_row0 - owner_core.start + halo) * cols;
                        let mut staging = crate::vector::vec_uninit_len::<T>(len * cols);
                        inner.runtime.queue(owner).enqueue_read_buffer_region(
                            src_buf,
                            src_off,
                            &mut staging,
                        )?;
                        inner.runtime.queue(device).enqueue_write_buffer_region(
                            &dst,
                            slot0 * cols,
                            &staging,
                        )?;
                        inner.runtime.charge_halo_transfer(owner, len * cols * elem);
                        inner
                            .runtime
                            .charge_halo_transfer(device, len * cols * elem);
                    }
                    Ok(())
                };
            for (slot, p) in slots {
                match self.row_source(p) {
                    RowSource::Constant => {
                        flush(self, &mut run)?;
                        let Boundary::Constant(c) = self.boundary else {
                            unreachable!("constant source implies constant boundary")
                        };
                        self.runtime.queue(device).enqueue_write_buffer_region(
                            &dst,
                            slot * cols,
                            &vec![c; cols],
                        )?;
                        self.runtime.charge_halo_transfer(device, cols * elem);
                    }
                    RowSource::Row(g) => {
                        let owner = self
                            .partition
                            .row_owner(g)
                            .expect("every matrix row has an owning device");
                        match &mut run {
                            Some((slot0, src_row0, own, len))
                                if *own == owner
                                    && g == *src_row0 + *len
                                    && slot == *slot0 + *len =>
                            {
                                *len += 1;
                            }
                            _ => {
                                flush(self, &mut run)?;
                                run = Some((slot, g, owner, 1));
                            }
                        }
                    }
                }
            }
            flush(self, &mut run)?;
        }
        self.halos_valid = true;
        Ok(())
    }

    fn download_to_host(&mut self) -> Result<()> {
        if self.host_valid {
            return Ok(());
        }
        debug_assert!(self.devices_valid, "either host or devices must be valid");
        let halo = self.partition.halo();
        let cols = self.cols;
        match &self.distribution {
            MatrixDistribution::Copy => {
                let actives = self.partition.active_devices();
                let first = *actives.first().ok_or(SkelError::EmptyInput)?;
                let buffer = self.buffers[first].as_ref().ok_or_else(|| {
                    SkelError::Distribution("copy-distributed matrix has no device buffer".into())
                })?;
                let mut host = crate::vector::vec_uninit_len::<T>(self.rows * cols);
                self.runtime
                    .queue(first)
                    .enqueue_read_buffer(buffer, &mut host)?;
                self.host = host;
            }
            _ => {
                // Row blocks (plain, single or overlapped): gather only the
                // core rows of every part — halo rows are replicas and are
                // never read back.
                let mut host = Vec::with_capacity(self.rows * cols);
                for device in 0..self.partition.device_count() {
                    let core = self.partition.core_rows(device);
                    if core.is_empty() {
                        continue;
                    }
                    let buffer = self.buffers[device].as_ref().ok_or_else(|| {
                        SkelError::Distribution(format!(
                            "device {device} should hold rows {core:?} but has no buffer"
                        ))
                    })?;
                    let mut part = crate::vector::vec_uninit_len::<T>(core.len() * cols);
                    self.runtime.queue(device).enqueue_read_buffer_region(
                        buffer,
                        halo * cols,
                        &mut part,
                    )?;
                    host.extend_from_slice(&part);
                }
                self.host = host;
            }
        }
        self.host_valid = true;
        Ok(())
    }
}

impl<T: Pod> Drop for Inner<T> {
    fn drop(&mut self) {
        self.release_buffers();
    }
}

/// The SkelCL matrix: a row-major 2-D container with host + multi-device
/// storage and lazy coherence. Cloning is cheap and yields a handle to the
/// *same* underlying data, like [`crate::vector::Vector`].
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(2);
/// let m = Matrix::from_fn(&rt, 4, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.rows(), 4);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.to_vec().unwrap()[5], 5.0);
/// ```
pub struct Matrix<T: Pod> {
    id: u64,
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T: Pod> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Matrix {
            id: self.id,
            inner: self.inner.clone(),
        }
    }
}

impl<T: Pod> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Matrix")
            .field("id", &self.id)
            .field("rows", &inner.rows)
            .field("cols", &inner.cols)
            .field("distribution", &inner.distribution)
            .finish()
    }
}

impl<T: Pod> Matrix<T> {
    /// Create a matrix from row-major host data. The initial distribution is
    /// [`MatrixDistribution::RowBlock`]; no device transfer happens until the
    /// matrix is first used on the devices.
    pub fn from_vec(
        runtime: &Arc<SkelCl>,
        rows: usize,
        cols: usize,
        data: Vec<T>,
    ) -> Result<Matrix<T>> {
        if data.len() != rows * cols {
            return Err(SkelError::Distribution(format!(
                "matrix shape {rows}×{cols} needs {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        let devices = runtime.device_count();
        let distribution = MatrixDistribution::default_for_inputs();
        let partition = RowPartition::compute(rows, cols, devices, &distribution);
        Ok(Matrix {
            id: runtime.next_vector_id(),
            inner: Arc::new(Mutex::new(Inner {
                runtime: runtime.clone(),
                host: data,
                rows,
                cols,
                host_valid: true,
                devices_valid: false,
                halos_valid: false,
                distribution,
                partition,
                buffers: vec![None; devices],
                boundary: Boundary::Clamp,
            })),
        })
    }

    /// Create a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(
        runtime: &Arc<SkelCl>,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix::from_vec(runtime, rows, cols, data).expect("shape matches by construction")
    }

    /// Create a `rows × cols` matrix of copies of `value`.
    pub fn filled(runtime: &Arc<SkelCl>, rows: usize, cols: usize, value: T) -> Matrix<T> {
        Matrix::from_vec(runtime, rows, cols, vec![value; rows * cols])
            .expect("shape matches by construction")
    }

    /// Internal constructor for stencil outputs: the data already lives in
    /// halo-padded per-device buffers; the host copy is stale, and the halo
    /// rows are stale too (the kernel writes core rows only), so the next
    /// device use triggers a halo exchange rather than a full upload.
    pub(crate) fn device_resident(
        runtime: &Arc<SkelCl>,
        rows: usize,
        cols: usize,
        distribution: MatrixDistribution,
        boundary: Boundary<T>,
        buffers: Vec<Option<Buffer>>,
    ) -> Matrix<T> {
        let partition = RowPartition::compute(rows, cols, runtime.device_count(), &distribution);
        Matrix {
            id: runtime.next_vector_id(),
            inner: Arc::new(Mutex::new(Inner {
                runtime: runtime.clone(),
                host: Vec::new(),
                rows,
                cols,
                host_valid: false,
                devices_valid: true,
                halos_valid: false,
                distribution,
                partition,
                buffers,
                boundary,
            })),
        }
    }

    /// Stable identity of the matrix (used to detect aliasing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The runtime this matrix belongs to.
    pub fn runtime(&self) -> Arc<SkelCl> {
        self.inner.lock().runtime.clone()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.inner.lock().rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.inner.lock().cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.rows * inner.cols
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current distribution.
    pub fn distribution(&self) -> MatrixDistribution {
        self.inner.lock().distribution.clone()
    }

    /// Where the authoritative data currently lives.
    pub fn residence(&self) -> Residence {
        let inner = self.inner.lock();
        match (inner.host_valid, inner.devices_valid) {
            (true, true) => Residence::Shared,
            (true, false) => Residence::HostOnly,
            (false, true) => Residence::DevicesOnly,
            (false, false) => unreachable!("matrix lost both copies"),
        }
    }

    /// Per-device core row counts under the current distribution.
    pub fn row_counts(&self) -> Vec<usize> {
        self.inner.lock().partition.core_row_counts()
    }

    /// Change the distribution. Like the vector, the implied data exchange
    /// goes through the host and the re-upload happens lazily on next device
    /// use. For halo-only refreshes between stencil sweeps the runtime uses
    /// [`Matrix::set_overlap`] + halo exchanges instead — never this path.
    pub fn set_distribution(&self, distribution: MatrixDistribution) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.distribution == distribution {
            return Ok(());
        }
        if let MatrixDistribution::Single(d) = &distribution {
            let devices = inner.runtime.device_count();
            if *d >= devices {
                return Err(SkelError::Distribution(format!(
                    "single distribution names device {d} but the runtime has {devices} devices"
                )));
            }
        }
        inner.download_to_host()?;
        inner.release_buffers();
        inner.devices_valid = false;
        inner.halos_valid = false;
        let devices = inner.runtime.device_count();
        inner.partition = RowPartition::compute(inner.rows, inner.cols, devices, &distribution);
        inner.distribution = distribution;
        Ok(())
    }

    /// Coerce the matrix to [`MatrixDistribution::OverlapBlock`] with the
    /// given halo width and boundary policy (the stencil-launch preparation
    /// step). A matrix already overlap-distributed with the same halo and
    /// boundary keeps its device parts untouched; anything else is a full
    /// redistribution through the host.
    pub fn set_overlap(&self, halo_rows: usize, boundary: Boundary<T>) -> Result<()> {
        let mut inner = self.inner.lock();
        let target = MatrixDistribution::OverlapBlock { halo_rows };
        if inner.distribution == target && boundary_eq(&inner.boundary, &boundary) {
            return Ok(());
        }
        if inner.distribution != target {
            inner.download_to_host()?;
            inner.release_buffers();
            inner.devices_valid = false;
            inner.halos_valid = false;
            let devices = inner.runtime.device_count();
            inner.partition = RowPartition::compute(inner.rows, inner.cols, devices, &target);
            inner.distribution = target;
        } else {
            // Same layout, different boundary: only the policy-filled edge
            // halos change; a halo refresh re-fills them.
            inner.halos_valid = false;
        }
        inner.boundary = boundary;
        Ok(())
    }

    /// The boundary policy used to fill edge halos.
    pub fn boundary(&self) -> Boundary<T> {
        self.inner.lock().boundary
    }

    /// Declare that a kernel has modified the matrix's device data through a
    /// channel the runtime cannot see: the host copy and the halo rows
    /// become stale.
    pub fn mark_device_modified(&self) {
        let mut inner = self.inner.lock();
        if inner.devices_valid {
            inner.host_valid = false;
            inner.halos_valid = false;
        }
    }

    /// Copy the matrix's contents to a row-major host `Vec`, downloading
    /// (core rows only) from the devices if they hold the newer copy.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        Ok(inner.host.clone())
    }

    /// Run `f` over the row-major host copy (downloading first if needed).
    pub fn with_host<R>(&self, f: impl FnOnce(&[T]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        Ok(f(&inner.host))
    }

    /// Mutate the host copy in place (shape is fixed); the device copies
    /// become stale and are re-uploaded lazily.
    pub fn update_host(&self, f: impl FnOnce(&mut [T])) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        f(&mut inner.host);
        inner.release_buffers();
        inner.devices_valid = false;
        inner.halos_valid = false;
        inner.host_valid = true;
        Ok(())
    }

    /// Element at `(row, col)` (downloads if the devices hold the newer
    /// copy).
    pub fn get(&self, row: usize, col: usize) -> Result<T> {
        let mut inner = self.inner.lock();
        if row >= inner.rows || col >= inner.cols {
            return Err(SkelError::Distribution(format!(
                "element ({row}, {col}) out of bounds for a {}×{} matrix",
                inner.rows, inner.cols
            )));
        }
        inner.download_to_host()?;
        let cols = inner.cols;
        Ok(inner.host[row * cols + col])
    }

    /// Ensure the matrix data is present on the devices under its current
    /// distribution; under `OverlapBlock` this also guarantees **fresh halo
    /// rows**, refreshed by a halo-only exchange when the core data is
    /// already device-resident (the between-sweeps path of iterative
    /// stencils). Returns the partition and per-device buffers.
    pub(crate) fn prepare_on_devices(&self) -> Result<(RowPartition, Vec<Option<Buffer>>)> {
        let mut inner = self.inner.lock();
        if inner.devices_valid {
            inner.refresh_halos()?;
        } else {
            inner.ensure_on_devices()?;
        }
        Ok((inner.partition.clone(), inner.buffers.clone()))
    }

    /// Force the halo rows fresh now (no-op for non-overlap distributions or
    /// when they are already valid). Exposed for tests and diagnostics.
    pub fn refresh_halos(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.devices_valid {
            inner.refresh_halos()?;
        }
        Ok(())
    }

    /// Declare this matrix the freshly written target of a stencil sweep
    /// that reused its device buffers in place (the iterative driver's
    /// ping-pong): the devices hold the authoritative core rows, the host
    /// copy and the halo rows are stale.
    pub(crate) fn mark_stencil_output(&self) {
        let mut inner = self.inner.lock();
        debug_assert!(
            inner.buffers.iter().any(Option::is_some),
            "a reused stencil target owns device buffers"
        );
        inner.devices_valid = true;
        inner.host_valid = false;
        inner.halos_valid = false;
    }

    /// Check that this matrix belongs to `runtime`.
    pub(crate) fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        if Arc::ptr_eq(&self.inner.lock().runtime, runtime) {
            Ok(())
        } else {
            Err(SkelError::RuntimeMismatch)
        }
    }

    /// The buffer of device `d`, if the matrix currently has one there.
    pub fn buffer_of(&self, device: usize) -> Option<Buffer> {
        self.inner.lock().buffers.get(device).cloned().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;

    #[test]
    fn from_vec_round_trip_and_shape_checks() {
        let rt = init_gpus(2);
        let m = Matrix::from_vec(&rt, 2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.get(1, 2).unwrap(), 6.0);
        assert!(m.get(2, 0).is_err());
        assert!(Matrix::from_vec(&rt, 2, 3, vec![0.0f32; 5]).is_err());
        assert_eq!(m.distribution(), MatrixDistribution::RowBlock);
        assert_eq!(m.residence(), Residence::HostOnly);
    }

    #[test]
    fn row_block_upload_and_download() {
        let rt = init_gpus(3);
        let m = Matrix::from_fn(&rt, 7, 4, |r, c| (r * 10 + c) as f32);
        let expected = m.to_vec().unwrap();
        let (partition, buffers) = m.prepare_on_devices().unwrap();
        assert_eq!(partition.core_row_counts().iter().sum::<usize>(), 7);
        assert_eq!(buffers.iter().filter(|b| b.is_some()).count(), 3);
        m.mark_device_modified();
        assert_eq!(m.residence(), Residence::DevicesOnly);
        assert_eq!(m.to_vec().unwrap(), expected);
    }

    #[test]
    fn overlap_upload_pads_parts_with_halo_rows() {
        let rt = init_gpus(2);
        let m = Matrix::from_fn(&rt, 6, 2, |r, _| r as f32);
        m.set_overlap(1, Boundary::Clamp).unwrap();
        let (partition, buffers) = m.prepare_on_devices().unwrap();
        assert_eq!(partition.halo(), 1);
        // Device 0 owns rows 0..3, stores rows -1..4 (clamped): 5 rows.
        assert_eq!(buffers[0].as_ref().unwrap().len(), 5 * 2);
        // Read the raw part back: clamp duplicates row 0 at the top, and the
        // bottom halo row is the neighbour's row 3.
        let mut part = vec![0.0f32; 10];
        rt.queue(0)
            .enqueue_read_buffer(buffers[0].as_ref().unwrap(), &mut part)
            .unwrap();
        assert_eq!(part, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        // Downloads gather core rows only.
        m.mark_device_modified();
        assert_eq!(
            m.to_vec().unwrap(),
            Matrix::from_fn(&rt, 6, 2, |r, _| r as f32)
                .to_vec()
                .unwrap()
        );
    }

    #[test]
    fn wrap_boundary_fills_halos_cyclically() {
        let rt = init_gpus(1);
        let m = Matrix::from_fn(&rt, 3, 1, |r, _| r as f32);
        m.set_overlap(2, Boundary::Wrap).unwrap();
        let (_, buffers) = m.prepare_on_devices().unwrap();
        let mut part = vec![0.0f32; 7];
        rt.queue(0)
            .enqueue_read_buffer(buffers[0].as_ref().unwrap(), &mut part)
            .unwrap();
        // rows -2..5 wrapped over 3 rows: 1 2 | 0 1 2 | 0 1
        assert_eq!(part, vec![1.0, 2.0, 0.0, 1.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn constant_boundary_fills_halos_with_the_constant() {
        let rt = init_gpus(1);
        let m = Matrix::from_fn(&rt, 2, 2, |r, c| (r * 2 + c) as f32);
        m.set_overlap(1, Boundary::Constant(-7.0)).unwrap();
        let (_, buffers) = m.prepare_on_devices().unwrap();
        let mut part = vec![0.0f32; 8];
        rt.queue(0)
            .enqueue_read_buffer(buffers[0].as_ref().unwrap(), &mut part)
            .unwrap();
        assert_eq!(part, vec![-7.0, -7.0, 0.0, 1.0, 2.0, 3.0, -7.0, -7.0]);
    }

    #[test]
    fn halo_refresh_moves_only_halo_rows() {
        let rt = init_gpus(2);
        let m = Matrix::from_fn(&rt, 8, 16, |r, c| (r * 16 + c) as f32);
        m.set_overlap(2, Boundary::Clamp).unwrap();
        m.prepare_on_devices().unwrap();
        rt.drain_events();
        // Simulate a sweep having modified the cores: halos stale.
        m.mark_device_modified();
        m.refresh_halos().unwrap();
        let events = rt.drain_events();
        let transfers: Vec<&oclsim::Event> = events
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .collect();
        // Interior boundary + clamped edges, grouped into runs: each halo
        // region is one read + one write of halo*cols elements.
        assert!(!transfers.is_empty());
        let max_bytes = transfers.iter().map(|e| e.bytes).max().unwrap();
        assert!(
            max_bytes <= 2 * 16 * 4,
            "halo refresh must move at most halo*cols elements per transfer, got {max_bytes}"
        );
        let trace = rt.exec_trace();
        assert!(trace.devices.iter().any(|d| d.halo_bytes > 0));
    }

    #[test]
    fn same_overlap_is_a_noop_and_boundary_change_only_invalidates_halos() {
        let rt = init_gpus(2);
        let m = Matrix::from_fn(&rt, 16, 16, |r, c| (r + c) as f32);
        m.set_overlap(1, Boundary::Clamp).unwrap();
        m.prepare_on_devices().unwrap();
        let before = rt.now();
        m.set_overlap(1, Boundary::Clamp).unwrap();
        assert_eq!(rt.now(), before, "identical overlap must not move data");
        // Changing only the boundary refreshes halos, not whole parts: the
        // traffic is a few single rows (64 B each), far below the padded
        // part re-upload of (8 + 2) * 16 * 4 = 640 B per device.
        m.set_overlap(1, Boundary::Constant(0.0)).unwrap();
        rt.drain_events();
        m.prepare_on_devices().unwrap();
        let events = rt.drain_events();
        let uploads: usize = events
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .map(|e| e.bytes)
            .sum();
        assert!(
            uploads < 10 * 16 * 4,
            "boundary change must exchange halos only, moved {uploads} bytes"
        );
    }

    #[test]
    fn clone_shares_data_and_single_distribution_works() {
        let rt = init_gpus(3);
        let m = Matrix::filled(&rt, 3, 3, 2.5f32);
        let n = m.clone();
        assert_eq!(m.id(), n.id());
        m.set_distribution(MatrixDistribution::Single(1)).unwrap();
        let (partition, buffers) = n.prepare_on_devices().unwrap();
        assert_eq!(partition.core_row_counts(), vec![0, 3, 0]);
        assert!(buffers[1].is_some() && buffers[0].is_none());
        assert!(m.set_distribution(MatrixDistribution::Single(9)).is_err());
        assert_eq!(n.to_vec().unwrap(), vec![2.5f32; 9]);
    }

    #[test]
    fn update_host_invalidates_devices() {
        let rt = init_gpus(2);
        let m = Matrix::filled(&rt, 2, 2, 0.0f32);
        m.prepare_on_devices().unwrap();
        m.update_host(|h| h[3] = 9.0).unwrap();
        assert_eq!(m.residence(), Residence::HostOnly);
        assert_eq!(m.to_vec().unwrap(), vec![0.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn runtime_mismatch_is_detected() {
        let rt1 = init_gpus(1);
        let rt2 = init_gpus(1);
        let m = Matrix::filled(&rt1, 1, 1, 0i32);
        assert!(m.check_runtime(&rt1).is_ok());
        assert!(m.check_runtime(&rt2).is_err());
    }

    #[test]
    fn boundary_comparison_by_bytes() {
        assert!(boundary_eq::<f32>(&Boundary::Clamp, &Boundary::Clamp));
        assert!(!boundary_eq::<f32>(&Boundary::Clamp, &Boundary::Wrap));
        assert!(boundary_eq(
            &Boundary::Constant(1.5f32),
            &Boundary::Constant(1.5f32)
        ));
        assert!(!boundary_eq(
            &Boundary::Constant(1.5f32),
            &Boundary::Constant(2.5f32)
        ));
    }
}
