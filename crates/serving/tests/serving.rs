//! Property and integration tests of the serving layer: coalesced execution
//! must be bit-identical to sequential execution per job, dispatch order
//! must follow priority bands and fair-share weights, quota/backpressure
//! error paths must reject-then-recover, shutdown must drain every admitted
//! handle, and a fixed submission order must be deterministic across
//! repetitions and 1–4 devices.

use proptest::prelude::*;

use skelcl::prelude::*;
use skelcl_serving::{Priority, ServeError, Server, ServerConfig, TenantConfig};

fn double() -> Map<f32, f32> {
    Map::from_source("float func(float x) { return 2.0f * x; }")
}

fn square() -> Map<f32, f32> {
    Map::from_source("float func(float x) { return x * x; }")
}

fn mul() -> Zip<f32, f32, f32> {
    Zip::from_source("float func(float x, float y) { return x * y; }")
}

fn fsum() -> Reduce<f32> {
    Reduce::from_source("float func(float a, float b) { return a + b; }")
}

fn isum() -> Reduce<i32> {
    Reduce::from_source("int func(int a, int b) { return a + b; }")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic pseudo-random input.
fn input(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 8.0 - 4.0
        })
        .collect()
}

fn total_launches(trace: &skelcl::ExecTrace) -> usize {
    trace.interp_launches()
        + trace.scalar_launches()
        + trace.batched_launches()
        + trace.native_launches()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every coalesced job's result is bit-identical to running the same
    /// plan sequentially through the ordinary executor.
    #[test]
    fn coalesced_jobs_match_sequential_bitwise(
        devices in 1usize..=3,
        lens in prop::collection::vec(1usize..48, 2..8),
        seed in 0u64..1_000,
    ) {
        let rt = skelcl::init_gpus(devices);
        let server = Server::new(rt.clone());
        server.add_tenant("t", TenantConfig::default()).unwrap();
        let session = server.session("t").unwrap();

        let d = double();
        let m = mul();
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let xs = input(seed.wrapping_add(i as u64), len);
            let ys = input(seed.wrapping_add(1000 + i as u64), len);
            let v = Vector::from_vec(&rt, xs.clone());
            let w = Vector::from_vec(&rt, ys.clone());
            let plan = v.lazy().zip(&w, &m).map(&d);
            handles.push(session.submit_vec(&plan).unwrap());

            let ref_rt = skelcl::init_gpus(devices);
            let rv = Vector::from_vec(&ref_rt, xs);
            let rw = Vector::from_vec(&ref_rt, ys);
            expected.push(rv.lazy().zip(&rw, &m).map(&d).collect().unwrap());
        }
        server.flush();
        for (handle, expect) in handles.into_iter().zip(expected) {
            let (got, report) = handle.wait().unwrap();
            prop_assert_eq!(bits(&got), bits(&expect));
            prop_assert_eq!(report.batch_jobs, lens.len());
        }
        let trace = server.trace();
        prop_assert_eq!(trace.packed_batches, 1);
        prop_assert_eq!(trace.coalesced_jobs, lens.len());
    }
}

#[test]
fn mixed_signature_jobs_batch_separately() {
    let rt = skelcl::init_gpus(2);
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let d = double();
    let q = square();
    let mut doubles = Vec::new();
    let mut squares = Vec::new();
    for i in 0..3 {
        let v = Vector::from_vec(&rt, input(i, 20 + i as usize));
        doubles.push((
            input(i, 20 + i as usize),
            session.submit_vec(&v.lazy().map(&d)).unwrap(),
        ));
    }
    for i in 0..2 {
        let v = Vector::from_vec(&rt, input(100 + i, 15));
        squares.push((
            input(100 + i, 15),
            session.submit_vec(&v.lazy().map(&q)).unwrap(),
        ));
    }
    let data = input(7, 33);
    let v = Vector::from_vec(&rt, data.clone());
    let reduce_handle = session.submit_scalar(&v.lazy().reduce(&fsum())).unwrap();

    server.flush();
    for (xs, handle) in doubles {
        let (got, report) = handle.wait().unwrap();
        assert_eq!(
            bits(&got),
            bits(&xs.iter().map(|x| 2.0 * x).collect::<Vec<_>>())
        );
        assert_eq!(report.batch_jobs, 3);
    }
    for (xs, handle) in squares {
        let (got, report) = handle.wait().unwrap();
        assert_eq!(
            bits(&got),
            bits(&xs.iter().map(|x| x * x).collect::<Vec<_>>())
        );
        assert_eq!(report.batch_jobs, 2);
    }
    let (total, report) = reduce_handle.wait().unwrap();
    let ref_rt = skelcl::init_gpus(2);
    let rv = Vector::from_vec(&ref_rt, data);
    let expect = rv.lazy().reduce(&fsum()).scalar().unwrap();
    assert_eq!(total.to_bits(), expect.to_bits());
    assert_eq!(report.device, None);

    let trace = server.trace();
    assert_eq!(trace.jobs_submitted, 6);
    assert_eq!(trace.jobs_completed, 6);
    assert_eq!(trace.batches, 3);
    assert_eq!(trace.packed_batches, 2);
    assert_eq!(trace.coalesced_jobs, 5);
    assert_eq!(trace.opaque_jobs, 1);
}

#[test]
fn fair_share_follows_weights_within_a_band() {
    let rt = skelcl::init_gpus(1);
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            coalescing: false,
            ..ServerConfig::default()
        },
    );
    server
        .add_tenant("heavy", TenantConfig::weighted(3))
        .unwrap();
    server
        .add_tenant("light", TenantConfig::weighted(1))
        .unwrap();

    let d = double();
    let mut handles = Vec::new();
    for tenant in ["heavy", "light"] {
        let session = server.session(tenant).unwrap();
        for i in 0..12 {
            let v = Vector::from_vec(&rt, input(i, 16));
            handles.push(session.submit_vec(&v.lazy().map(&d)).unwrap());
        }
    }
    server.flush();
    for handle in handles {
        handle.wait().unwrap();
    }

    let trace = server.trace();
    // Equal job footprints at weights 3:1: every 4 consecutive dispatch
    // slots go 3 to `heavy`, 1 to `light` while both are backlogged.
    let first8 = &trace.dispatch_tenants[..8];
    assert_eq!(first8.iter().filter(|t| t.as_str() == "heavy").count(), 6);
    assert_eq!(first8.iter().filter(|t| t.as_str() == "light").count(), 2);
    assert!(trace.batch_sizes.iter().all(|&s| s == 1));
}

#[test]
fn priority_bands_are_strict() {
    let rt = skelcl::init_gpus(1);
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            coalescing: false,
            ..ServerConfig::default()
        },
    );
    server
        .add_tenant(
            "bg",
            TenantConfig {
                priority: Priority::Low,
                ..TenantConfig::default()
            },
        )
        .unwrap();
    server
        .add_tenant(
            "fg",
            TenantConfig {
                priority: Priority::High,
                ..TenantConfig::default()
            },
        )
        .unwrap();

    let d = double();
    let mut handles = Vec::new();
    // Background jobs are admitted FIRST, yet every foreground job must
    // dispatch before any of them.
    for tenant in ["bg", "fg"] {
        let session = server.session(tenant).unwrap();
        for i in 0..4 {
            let v = Vector::from_vec(&rt, input(i, 8));
            handles.push(session.submit_vec(&v.lazy().map(&d)).unwrap());
        }
    }
    server.flush();
    for handle in handles {
        handle.wait().unwrap();
    }
    let trace = server.trace();
    assert_eq!(&trace.dispatch_tenants[..4], ["fg", "fg", "fg", "fg"]);
    assert_eq!(&trace.dispatch_tenants[4..], ["bg", "bg", "bg", "bg"]);
}

#[test]
fn quota_rejects_then_recovers_after_completion() {
    let rt = skelcl::init_gpus(1);
    let server = Server::new(rt.clone());
    // A length-16 f32 map job's footprint: 64 output + 64 source bytes.
    server
        .add_tenant(
            "q",
            TenantConfig {
                quota_bytes: Some(200),
                ..TenantConfig::default()
            },
        )
        .unwrap();
    let session = server.session("q").unwrap();

    let d = double();
    let v = Vector::from_vec(&rt, input(1, 16));
    let first = session.submit_vec(&v.lazy().map(&d)).unwrap();
    let w = Vector::from_vec(&rt, input(2, 16));
    let err = match session.try_submit_vec(&w.lazy().map(&d)) {
        Err(e) => e,
        Ok(_) => panic!("submission past the quota must be rejected"),
    };
    match err {
        ServeError::QuotaExceeded {
            tenant,
            requested,
            used,
            cap,
        } => {
            assert_eq!(tenant, "q");
            assert_eq!(requested, 128);
            assert_eq!(used, 128);
            assert_eq!(cap, 200);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // Completion credits the ledger; the same submission now fits.
    first.wait().unwrap();
    let usage = rt.context().ledger().usage("q");
    assert_eq!(usage.used_bytes, 0);
    assert_eq!(usage.peak_bytes, 128);
    session
        .try_submit_vec(&w.lazy().map(&d))
        .unwrap()
        .wait()
        .unwrap();
}

#[test]
fn backpressure_would_block_then_blocking_submit_makes_room() {
    let rt = skelcl::init_gpus(1);
    let server = Server::new(rt.clone());
    server
        .add_tenant(
            "t",
            TenantConfig {
                max_pending: 2,
                ..TenantConfig::default()
            },
        )
        .unwrap();
    let session = server.session("t").unwrap();

    let d = double();
    let plan_of = |seed: u64| {
        let v = Vector::from_vec(&rt, input(seed, 12));
        v.lazy().map(&d)
    };
    let a = session.try_submit_vec(&plan_of(1)).unwrap();
    let b = session.try_submit_vec(&plan_of(2)).unwrap();
    assert!(matches!(
        session.try_submit_vec(&plan_of(3)),
        Err(ServeError::WouldBlock)
    ));
    assert_eq!(server.trace().would_blocks, 1);

    // The blocking submit drives the scheduler until admission succeeds.
    let c = session.submit_vec(&plan_of(3)).unwrap();
    for handle in [a, b, c] {
        handle.wait().unwrap();
    }
    assert_eq!(server.trace().jobs_completed, 3);
}

#[test]
fn queue_depth_watermark_applies_across_tenants() {
    let rt = skelcl::init_gpus(1);
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            max_queue_depth: 2,
            ..ServerConfig::default()
        },
    );
    server.add_tenant("a", TenantConfig::default()).unwrap();
    server.add_tenant("b", TenantConfig::default()).unwrap();

    let d = double();
    let submit = |tenant: &str, seed: u64| {
        let v = Vector::from_vec(&rt, input(seed, 8));
        server
            .session(tenant)
            .unwrap()
            .try_submit_vec(&v.lazy().map(&d))
    };
    let a = submit("a", 1).unwrap();
    let b = submit("b", 2).unwrap();
    assert!(matches!(submit("a", 3), Err(ServeError::WouldBlock)));
    server.flush();
    a.wait().unwrap();
    b.wait().unwrap();
}

#[test]
fn shutdown_drains_admitted_jobs_and_refuses_new_ones() {
    let rt = skelcl::init_gpus(2);
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let d = double();
    let mut handles = Vec::new();
    for i in 0..5 {
        let v = Vector::from_vec(&rt, input(i, 10 + i as usize));
        handles.push(session.submit_vec(&v.lazy().map(&d)).unwrap());
    }
    server.shutdown();
    for handle in &handles {
        assert!(handle.is_done());
    }
    for handle in handles {
        handle.wait().unwrap();
    }
    let v = Vector::from_vec(&rt, input(9, 4));
    assert!(matches!(
        session.try_submit_vec(&v.lazy().map(&d)),
        Err(ServeError::ShuttingDown)
    ));
    assert_eq!(server.trace().jobs_completed, 5);
}

#[test]
fn failed_jobs_surface_errors_and_release_quota() {
    let rt = skelcl::init_gpus(1);
    let server = Server::new(rt.clone());
    server
        .add_tenant(
            "t",
            TenantConfig {
                quota_bytes: Some(1 << 20),
                ..TenantConfig::default()
            },
        )
        .unwrap();
    let session = server.session("t").unwrap();

    // Reducing an empty vector fails inside the plan executor at dispatch.
    let v = Vector::from_vec(&rt, Vec::<f32>::new());
    let handle = session.submit_scalar(&v.lazy().reduce(&fsum())).unwrap();
    server.flush();
    assert!(matches!(handle.wait(), Err(ServeError::Skel(_))));
    let trace = server.trace();
    assert_eq!(trace.jobs_failed, 1);
    assert_eq!(trace.jobs_completed, 0);
    assert_eq!(rt.context().ledger().usage("t").used_bytes, 0);
}

#[test]
fn results_are_taken_exactly_once() {
    let rt = skelcl::init_gpus(1);
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    assert!(matches!(
        server.session("ghost"),
        Err(ServeError::UnknownTenant(_))
    ));
    assert!(matches!(
        server.add_tenant("t", TenantConfig::default()),
        Err(ServeError::DuplicateTenant(_))
    ));
    let session = server.session("t").unwrap();
    let v = Vector::from_vec(&rt, input(1, 6));
    let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
    let (out, _) = handle.wait().unwrap();
    assert_eq!(out.len(), 6);
}

/// One fixed submission schedule, parameterized only by the runtime.
/// Returns (per-job result bits, scalar bits, final virtual time).
fn run_schedule(devices: usize) -> (Vec<Vec<u32>>, Vec<u32>, oclsim::SimTime) {
    let rt = skelcl::init_gpus(devices);
    let server = Server::new(rt.clone());
    server.add_tenant("a", TenantConfig::weighted(2)).unwrap();
    server.add_tenant("b", TenantConfig::weighted(1)).unwrap();
    let sa = server.session("a").unwrap();
    let sb = server.session("b").unwrap();

    let d = double();
    let q = square();
    let s = isum();
    let mut vec_handles = Vec::new();
    let mut scalar_handles = Vec::new();
    for i in 0..10u64 {
        let v = Vector::from_vec(&rt, input(i, 8 + (i as usize % 5) * 7));
        let session = if i % 2 == 0 { &sa } else { &sb };
        let skeleton = if i % 3 == 0 { &d } else { &q };
        vec_handles.push(session.submit_vec(&v.lazy().map(skeleton)).unwrap());
        if i % 4 == 0 {
            let ints: Vec<i32> = (0..12).map(|k| k - (i as i32)).collect();
            let iv = Vector::from_vec(&rt, ints);
            scalar_handles.push(session.submit_scalar(&iv.lazy().reduce(&s)).unwrap());
        }
    }
    server.flush();
    let results: Vec<Vec<u32>> = vec_handles
        .into_iter()
        .map(|h| bits(&h.wait().unwrap().0))
        .collect();
    let scalars: Vec<u32> = scalar_handles
        .into_iter()
        .map(|h| h.wait().unwrap().0 as u32)
        .collect();
    (results, scalars, rt.now())
}

#[test]
fn fixed_schedule_is_deterministic_across_reps_and_devices() {
    let mut per_devices = Vec::new();
    for devices in [1usize, 2, 4] {
        let first = run_schedule(devices);
        for _ in 0..2 {
            let rep = run_schedule(devices);
            // Same device count: results AND virtual time bit-identical.
            assert_eq!(rep, first, "rep diverged at {devices} device(s)");
        }
        per_devices.push(first);
    }
    // Across device counts: result bits identical (jobs pin to one device).
    for other in &per_devices[1..] {
        assert_eq!(other.0, per_devices[0].0);
        assert_eq!(other.1, per_devices[0].1);
    }
}

#[test]
fn coalescing_reduces_kernel_launches() {
    let jobs = 32usize;
    let run = |coalescing: bool| {
        let rt = skelcl::init_gpus(2);
        let server = Server::with_config(
            rt.clone(),
            ServerConfig {
                coalescing,
                ..ServerConfig::default()
            },
        );
        server.add_tenant("t", TenantConfig::default()).unwrap();
        let session = server.session("t").unwrap();
        let d = double();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let v = Vector::from_vec(&rt, input(i as u64, 100));
                session.submit_vec(&v.lazy().map(&d)).unwrap()
            })
            .collect();
        server.flush();
        let outs: Vec<Vec<u32>> = handles
            .into_iter()
            .map(|h| bits(&h.wait().unwrap().0))
            .collect();
        (outs, total_launches(&rt.exec_trace()), server.trace())
    };

    let (on_outs, on_launches, on_trace) = run(true);
    let (off_outs, off_launches, off_trace) = run(false);
    assert_eq!(on_outs, off_outs);
    assert_eq!(on_trace.packed_batches, 1);
    assert_eq!(on_trace.coalesced_jobs, jobs);
    assert_eq!(off_trace.packed_batches, jobs);
    assert_eq!(off_trace.coalesced_jobs, 0);
    assert!(
        on_launches < off_launches,
        "coalescing must reduce launches: {on_launches} vs {off_launches}"
    );
}
