//! Fault-path tests of the serving layer: transient faults are retried
//! with backoff and succeed bit-identically, replays refresh their inputs
//! (no silent zeros from a failed upload), device-loss replays land on
//! surviving devices, an exhausted retry budget fails typed with the full
//! fault chain, quota is credited exactly once on every failure path,
//! `cancel` releases admission state, and queued jobs past their
//! virtual-time deadline fail typed.
//!
//! Core-level recovery is disabled (`set_recovery_enabled(false)`)
//! throughout so injected faults propagate up to the serving retry layer
//! instead of being replayed inside the skeleton launch.

use skelcl::oclsim::{FaultPlan, SimTime};
use skelcl::prelude::*;
use skelcl_serving::{JobOptions, ServeError, Server, ServerConfig, TenantConfig};

fn double() -> Map<f32, f32> {
    Map::from_source("float func(float x) { return 2.0f * x; }")
}

fn fsum() -> Reduce<f32> {
    Reduce::from_source("float func(float a, float b) { return a + b; }")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic pseudo-random input.
fn input(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 8.0 - 4.0
        })
        .collect()
}

#[test]
fn transient_launch_fault_is_retried_and_succeeds_bit_identically() {
    let rt = skelcl::init_gpus(1);
    rt.set_recovery_enabled(false);
    rt.inject_faults(&FaultPlan::new().transient_launch_at_op(0, 1));
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let xs = input(1, 64);
    let v = Vector::from_vec(&rt, xs.clone());
    let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
    server.flush();
    let (got, _) = handle.wait().unwrap();
    assert_eq!(
        bits(&got),
        bits(&xs.iter().map(|x| 2.0 * x).collect::<Vec<_>>())
    );

    let trace = server.trace();
    assert!(trace.jobs_retried >= 1, "the fault must force a retry");
    assert_eq!(trace.jobs_failed, 0);
    assert_eq!(trace.jobs_completed, 1);
    // Quota held across the retry, credited exactly once on completion.
    assert_eq!(rt.context().ledger().usage("t").used_bytes, 0);
}

#[test]
fn replays_refresh_inputs_after_a_failed_upload() {
    // The transient fault kills the *input upload*: the coherence flags
    // recorded the transfer when it was enqueued, so a replay that skipped
    // the refresh would trust a device buffer the data never reached and
    // silently return zeros.
    let rt = skelcl::init_gpus(1);
    rt.set_recovery_enabled(false);
    rt.inject_faults(&FaultPlan::new().transient_transfer_at_op(0, 1));
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let xs = input(2, 48);
    let v = Vector::from_vec(&rt, xs.clone());
    let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
    server.flush();
    let (got, _) = handle.wait().unwrap();
    assert_eq!(
        bits(&got),
        bits(&xs.iter().map(|x| 2.0 * x).collect::<Vec<_>>())
    );
    assert!(server.trace().jobs_retried >= 1);
}

#[test]
fn device_loss_replays_land_on_a_survivor() {
    let rt = skelcl::init_gpus(2);
    rt.set_recovery_enabled(false);
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(0, 1));
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let xs = input(3, 80);
    let v = Vector::from_vec(&rt, xs.clone());
    let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
    server.flush();
    let (got, _) = handle.wait().unwrap();
    assert_eq!(
        bits(&got),
        bits(&xs.iter().map(|x| 2.0 * x).collect::<Vec<_>>())
    );
    assert_eq!(rt.lost_devices(), vec![0]);
    assert!(server.trace().jobs_retried >= 1);

    // Later jobs dispatch straight onto the survivor: no further retries.
    let retried_before = server.trace().jobs_retried;
    let ys = input(4, 32);
    let w = Vector::from_vec(&rt, ys.clone());
    let handle = session.submit_vec(&w.lazy().map(&double())).unwrap();
    server.flush();
    let (got, _) = handle.wait().unwrap();
    assert_eq!(
        bits(&got),
        bits(&ys.iter().map(|y| 2.0 * y).collect::<Vec<_>>())
    );
    assert_eq!(server.trace().jobs_retried, retried_before);
}

#[test]
fn exhausted_retries_fail_typed_with_the_full_fault_chain() {
    let rt = skelcl::init_gpus(1);
    rt.set_recovery_enabled(false);
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(0, 1));
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            max_retries: 2,
            ..ServerConfig::default()
        },
    );
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let v = Vector::from_vec(&rt, input(5, 24));
    let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
    server.flush();
    match handle.wait() {
        Err(ServeError::JobFailed {
            tenant,
            attempts,
            fault_chain,
        }) => {
            assert_eq!(tenant, "t");
            assert_eq!(attempts, 3, "initial attempt plus max_retries replays");
            assert_eq!(fault_chain.len(), 3);
            for entry in &fault_chain {
                assert!(
                    entry.contains("lost"),
                    "each chain entry records the device loss: {entry}"
                );
            }
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
    let trace = server.trace();
    assert_eq!(trace.jobs_failed, 1);
    assert_eq!(trace.jobs_retried, 2);
    // Terminal failure credits the quota exactly once.
    assert_eq!(rt.context().ledger().usage("t").used_bytes, 0);
}

#[test]
fn per_job_retry_override_caps_the_attempts() {
    let rt = skelcl::init_gpus(1);
    rt.set_recovery_enabled(false);
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(0, 1));
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let v = Vector::from_vec(&rt, input(6, 24));
    let handle = session
        .submit_vec_with(&v.lazy().map(&double()), JobOptions::with_max_retries(0))
        .unwrap();
    server.flush();
    match handle.wait() {
        Err(ServeError::JobFailed { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected JobFailed, got {other:?}"),
    }
    assert_eq!(server.trace().jobs_retried, 0);
}

#[test]
fn cancel_releases_quota_and_pending_before_dispatch() {
    let rt = skelcl::init_gpus(1);
    let server = Server::new(rt.clone());
    // Quota and backpressure sized for exactly one queued job, so the
    // follow-up submission only succeeds if cancel released both.
    server
        .add_tenant(
            "t",
            TenantConfig {
                quota_bytes: Some(200),
                max_pending: 1,
                ..TenantConfig::default()
            },
        )
        .unwrap();
    let session = server.session("t").unwrap();

    let xs = input(7, 16);
    let v = Vector::from_vec(&rt, xs.clone());
    let first = session.try_submit_vec(&v.lazy().map(&double())).unwrap();
    assert!(first.cancel(), "a queued job is cancellable");
    match first.wait() {
        Err(ServeError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(rt.context().ledger().usage("t").used_bytes, 0);

    let second = session.try_submit_vec(&v.lazy().map(&double())).unwrap();
    server.flush();
    let (got, _) = second.wait().unwrap();
    assert_eq!(
        bits(&got),
        bits(&xs.iter().map(|x| 2.0 * x).collect::<Vec<_>>())
    );

    let trace = server.trace();
    assert_eq!(trace.jobs_cancelled, 1);
    assert_eq!(trace.jobs_completed, 1);
    assert_eq!(trace.jobs_failed, 1, "a cancellation counts as a failure");
}

#[test]
fn cancel_after_dispatch_returns_false() {
    let rt = skelcl::init_gpus(1);
    let server = Server::new(rt.clone());
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    let v = Vector::from_vec(&rt, input(8, 16));
    let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
    server.flush();
    assert!(!handle.cancel(), "a dispatched job runs to completion");
    handle.wait().unwrap();
    assert_eq!(server.trace().jobs_cancelled, 0);
}

#[test]
fn queued_jobs_past_their_deadline_fail_typed() {
    let rt = skelcl::init_gpus(1);
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            coalescing: false,
            ..ServerConfig::default()
        },
    );
    server.add_tenant("t", TenantConfig::default()).unwrap();
    let session = server.session("t").unwrap();

    // Job A (a synchronous reduction) dispatches first — same tenant,
    // lower sequence number — and advances the virtual clock past job B's
    // deadline while B is still queued.
    let xs = input(9, 64);
    let v = Vector::from_vec(&rt, xs.clone());
    let a = session.submit_scalar(&v.lazy().reduce(&fsum())).unwrap();
    let w = Vector::from_vec(&rt, input(10, 16));
    let b = session
        .submit_vec_with(
            &w.lazy().map(&double()),
            JobOptions::with_deadline(SimTime::ZERO),
        )
        .unwrap();

    server.flush();
    a.wait().unwrap();
    match b.wait() {
        Err(ServeError::DeadlineExceeded { tenant, deadline }) => {
            assert_eq!(tenant, "t");
            assert_eq!(deadline, SimTime::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let trace = server.trace();
    assert_eq!(trace.jobs_deadline_failed, 1);
    assert_eq!(rt.context().ledger().usage("t").used_bytes, 0);
}

#[test]
fn fault_free_serving_is_unchanged_by_the_retry_machinery() {
    // A dormant fault plan and a generous retry budget must not perturb
    // results or the virtual clock: the retry layer only acts after a
    // failure.
    let run = |max_retries: usize, armed: bool| {
        let rt = skelcl::init_gpus(2);
        if armed {
            // A plan whose triggers never become due charges zero time.
            rt.inject_faults(&FaultPlan::new().device_lost_at_op(0, 1_000_000));
        }
        let server = Server::with_config(
            rt.clone(),
            ServerConfig {
                max_retries,
                ..ServerConfig::default()
            },
        );
        server.add_tenant("t", TenantConfig::default()).unwrap();
        let session = server.session("t").unwrap();
        let xs = input(11, 96);
        let v = Vector::from_vec(&rt, xs);
        let handle = session.submit_vec(&v.lazy().map(&double())).unwrap();
        server.flush();
        let (got, _) = handle.wait().unwrap();
        (bits(&got), rt.now())
    };
    let baseline = run(0, false);
    assert_eq!(run(5, false), baseline);
    assert_eq!(run(5, true), baseline);
}
