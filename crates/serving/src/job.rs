//! Job completion handles: the async result path of the serving layer.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use oclsim::SimTime;
use parking_lot::Mutex;

use crate::error::{Result, ServeError};
use crate::scheduler::Core;

/// Bookkeeping delivered with every completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Server-wide job id, in admission order.
    pub job_id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The device the job's packed launch ran on (`None` for jobs that ran
    /// through the plan executor across all devices).
    pub device: Option<usize>,
    /// Number of jobs coalesced into the same launch (1 = uncoalesced).
    pub batch_jobs: usize,
    /// Host virtual time at admission.
    pub submit_virt: SimTime,
    /// Virtual completion time: the packed read's event end, or the host
    /// clock after a synchronous plan execution.
    pub complete_virt: SimTime,
}

impl JobReport {
    /// Virtual latency from admission to completion.
    pub fn latency(&self) -> oclsim::SimDuration {
        self.complete_virt - self.submit_virt
    }
}

/// Completion state of one job, shared between the scheduler core and the
/// job's handle.
pub(crate) enum SlotState {
    Pending,
    Ready {
        payload: Box<dyn Any + Send>,
        report: JobReport,
    },
    Failed(ServeError),
    Taken,
}

/// One job's completion slot.
pub(crate) struct JobSlot {
    state: Mutex<SlotState>,
}

impl JobSlot {
    pub(crate) fn new() -> Arc<JobSlot> {
        Arc::new(JobSlot {
            state: Mutex::new(SlotState::Pending),
        })
    }

    pub(crate) fn complete(&self, payload: Box<dyn Any + Send>, report: JobReport) {
        *self.state.lock() = SlotState::Ready { payload, report };
    }

    pub(crate) fn fail(&self, error: ServeError) {
        *self.state.lock() = SlotState::Failed(error);
    }

    pub(crate) fn is_done(&self) -> bool {
        !matches!(*self.state.lock(), SlotState::Pending)
    }

    /// Claim the result. `None` while pending; `ResultTaken` after a
    /// previous claim.
    pub(crate) fn take(&self) -> Option<Result<(Box<dyn Any + Send>, JobReport)>> {
        let mut state = self.state.lock();
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Pending => {
                *state = SlotState::Pending;
                None
            }
            SlotState::Ready { payload, report } => Some(Ok((payload, report))),
            SlotState::Failed(e) => Some(Err(e)),
            SlotState::Taken => Some(Err(ServeError::ResultTaken)),
        }
    }
}

/// Handle to an asynchronously executing job; [`JobHandle::wait`] drives the
/// scheduler until the job completes and claims its result. `P` is the
/// result payload: `Vec<T>` for vector jobs, `T` for scalar jobs.
#[must_use = "a job delivers its result only through `wait()`"]
pub struct JobHandle<P> {
    pub(crate) slot: Arc<JobSlot>,
    pub(crate) core: Arc<Core>,
    pub(crate) _payload: PhantomData<fn() -> P>,
}

impl<P: Send + 'static> JobHandle<P> {
    /// Whether the job has completed (successfully or not). Non-blocking
    /// and non-driving: a pending job stays pending until someone waits,
    /// flushes, or submits past a dispatch trigger.
    pub fn is_done(&self) -> bool {
        self.slot.is_done()
    }

    /// Cancel the job if it is still queued: its quota and pending count
    /// are released immediately and [`JobHandle::wait`] returns
    /// [`ServeError::Cancelled`]. Returns false once the job has dispatched
    /// (it then runs to completion) or already finished.
    pub fn cancel(&self) -> bool {
        self.core.cancel(&self.slot)
    }

    /// Wait for the job: drives the scheduler (dispatching queued batches
    /// and resolving in-flight launches in deterministic order) until this
    /// job's slot is resolved, then returns the payload and its report.
    pub fn wait(self) -> Result<(P, JobReport)> {
        if !self.slot.is_done() {
            self.core.drain_all();
        }
        match self.slot.take() {
            Some(Ok((payload, report))) => {
                let payload = payload.downcast::<P>().map_err(|_| {
                    ServeError::Internal("job payload type does not match its handle".into())
                })?;
                Ok((*payload, report))
            }
            Some(Err(e)) => Err(e),
            None => Err(ServeError::Internal(
                "scheduler drained but the job is still pending".into(),
            )),
        }
    }
}
