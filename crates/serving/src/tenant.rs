//! Tenants: the unit of fair-share, priority, quota and backpressure.

/// Scheduling priority of a tenant's jobs. Bands are strict: a queued
/// high-priority job always dispatches before any normal- or low-priority
/// job; fair-share weighting applies *within* a band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Dispatched before everything else.
    High,
    /// The default band.
    #[default]
    Normal,
    /// Dispatched only when no higher band has queued jobs.
    Low,
}

/// Per-tenant serving policy, fixed at registration time
/// ([`crate::Server::add_tenant`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Fair-share weight within the tenant's priority band: a tenant with
    /// weight 3 receives ~3× the dispatch slots of a weight-1 tenant while
    /// both are backlogged. Clamped to at least 1.
    pub weight: u32,
    /// The tenant's priority band.
    pub priority: Priority,
    /// Byte quota on the tenant's admitted-plus-in-flight job footprints
    /// (`None` = unlimited), enforced through the runtime's
    /// [`oclsim::ResourceLedger`] at admission time.
    pub quota_bytes: Option<usize>,
    /// Backpressure watermark: the maximum number of this tenant's jobs
    /// that may be admitted but not yet completed. Clamped to at least 1.
    pub max_pending: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            priority: Priority::Normal,
            quota_bytes: None,
            max_pending: 1024,
        }
    }
}

impl TenantConfig {
    /// A default-policy tenant with the given fair-share weight.
    pub fn weighted(weight: u32) -> Self {
        TenantConfig {
            weight,
            ..TenantConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bands_order_high_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
