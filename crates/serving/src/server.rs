//! [`Server`], [`Session`] and the serving-level trace.

use std::sync::Arc;

use oclsim::SimDuration;
use skelcl::{DeviceScalar, PlanScalar, PlanVec, SkelCl};

use crate::error::{Result, ServeError};
use crate::job::JobHandle;
use crate::scheduler::{Core, JobOptions};
use crate::tenant::TenantConfig;

/// Server-wide scheduling knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Whether same-kernel jobs coalesce into packed launches. With
    /// coalescing off every job dispatches as a batch of one through the
    /// same packed path, so results are bit-identical either way.
    pub coalescing: bool,
    /// Maximum jobs per packed launch; reaching it triggers an eager
    /// dispatch at admission. Clamped to at least 1.
    pub coalesce_cap: usize,
    /// Server-wide backpressure watermark on admitted-but-undispatched
    /// jobs; submissions past it return [`ServeError::WouldBlock`] (or
    /// make room, for blocking submits). Clamped to at least 1.
    pub max_queue_depth: usize,
    /// Replays granted to a job whose attempt dies with an *injected*
    /// fault, unless overridden per job through
    /// [`JobOptions::with_max_retries`]. Past the budget the job fails
    /// with [`ServeError::JobFailed`] carrying its fault chain.
    pub max_retries: usize,
    /// Base virtual-time backoff between replays; attempt `n` waits
    /// `n × retry_backoff` before becoming dispatchable again.
    pub retry_backoff: SimDuration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            coalescing: true,
            coalesce_cap: 64,
            max_queue_depth: 256,
            max_retries: 2,
            retry_backoff: SimDuration::from_secs_f64(50e-6),
        }
    }
}

/// Aggregate serving statistics, a snapshot from [`Server::trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingTrace {
    /// Jobs admitted into the queue (excludes rejected submissions).
    pub jobs_submitted: usize,
    /// Jobs completed successfully.
    pub jobs_completed: usize,
    /// Jobs that failed after admission.
    pub jobs_failed: usize,
    /// Jobs currently admitted but not yet dispatched.
    pub jobs_queued: usize,
    /// Packed launches dispatched but not yet resolved.
    pub batches_inflight: usize,
    /// Dispatched batches of any kind.
    pub batches: usize,
    /// Dispatched packed (elementwise) launches, coalesced or not.
    pub packed_batches: usize,
    /// Jobs that shared a packed launch with at least one other job.
    pub coalesced_jobs: usize,
    /// Jobs that ran through the ordinary plan executor.
    pub opaque_jobs: usize,
    /// Submissions rejected with [`ServeError::WouldBlock`].
    pub would_blocks: usize,
    /// High-water mark of the admission queue depth.
    pub max_queue_depth_seen: usize,
    /// Tenant of each dispatched batch's leader, in dispatch order.
    pub dispatch_tenants: Vec<String>,
    /// Size of each dispatched batch, in dispatch order.
    pub batch_sizes: Vec<usize>,
    /// Fault-failed attempts that were re-queued for replay.
    pub jobs_retried: usize,
    /// Jobs cancelled through [`crate::JobHandle::cancel`] before dispatch.
    pub jobs_cancelled: usize,
    /// Jobs that missed their virtual-time deadline while queued.
    pub jobs_deadline_failed: usize,
}

/// A multi-tenant serving front end over a shared [`SkelCl`] runtime.
///
/// Register tenants with [`Server::add_tenant`], open [`Session`]s, submit
/// [`PlanVec`]/[`PlanScalar`] jobs and wait on the returned [`JobHandle`]s.
/// Cloning the server is cheap; all clones share one scheduler core.
#[derive(Clone)]
pub struct Server {
    core: Arc<Core>,
}

impl Server {
    /// A server with the default [`ServerConfig`].
    pub fn new(runtime: Arc<SkelCl>) -> Server {
        Server::with_config(runtime, ServerConfig::default())
    }

    /// A server with explicit scheduling knobs.
    pub fn with_config(runtime: Arc<SkelCl>, config: ServerConfig) -> Server {
        Server {
            core: Core::new(runtime, config),
        }
    }

    /// The shared runtime this server schedules onto.
    pub fn runtime(&self) -> Arc<SkelCl> {
        self.core.runtime()
    }

    /// Register a tenant. Installs the tenant's byte quota (if any) on the
    /// runtime's [`oclsim::ResourceLedger`]. Errors if the name is taken.
    pub fn add_tenant(&self, name: &str, config: TenantConfig) -> Result<()> {
        self.core.add_tenant(name, config)
    }

    /// Open a submission session for a registered tenant. Sessions are
    /// cheap; a tenant may hold any number concurrently.
    pub fn session(&self, tenant: &str) -> Result<Session> {
        if !self.core.has_tenant(tenant) {
            return Err(ServeError::UnknownTenant(tenant.to_string()));
        }
        Ok(Session {
            core: self.core.clone(),
            tenant: tenant.to_string(),
        })
    }

    /// Dispatch everything queued and resolve all in-flight launches.
    pub fn flush(&self) {
        self.core.drain_all();
    }

    /// Graceful shutdown: refuse new submissions, then drain so every
    /// already-admitted job's handle resolves.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }

    /// Snapshot the serving statistics.
    pub fn trace(&self) -> ServingTrace {
        let (stats, completed, failed, queued, inflight) = self.core.snapshot();
        ServingTrace {
            jobs_submitted: stats.jobs_submitted,
            jobs_completed: completed,
            jobs_failed: failed,
            jobs_queued: queued,
            batches_inflight: inflight,
            batches: stats.batches,
            packed_batches: stats.packed_batches,
            coalesced_jobs: stats.coalesced_jobs,
            opaque_jobs: stats.opaque_jobs,
            would_blocks: stats.would_blocks,
            max_queue_depth_seen: stats.max_queue_depth_seen,
            dispatch_tenants: stats.dispatch_tenants,
            batch_sizes: stats.batch_sizes,
            jobs_retried: stats.retries,
            jobs_cancelled: stats.cancelled,
            jobs_deadline_failed: stats.deadline_failures,
        }
    }
}

/// One tenant's submission handle onto a [`Server`].
#[derive(Clone)]
pub struct Session {
    core: Arc<Core>,
    tenant: String,
}

impl Session {
    /// The tenant this session submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submit a vector pipeline job, returning [`ServeError::WouldBlock`]
    /// instead of waiting when a backpressure watermark is hit.
    pub fn try_submit_vec<T: DeviceScalar>(&self, plan: &PlanVec<T>) -> Result<JobHandle<Vec<T>>> {
        self.try_submit_vec_with(plan, JobOptions::default())
    }

    /// [`Session::try_submit_vec`] with per-job [`JobOptions`] (deadline,
    /// retry budget).
    pub fn try_submit_vec_with<T: DeviceScalar>(
        &self,
        plan: &PlanVec<T>,
        options: JobOptions,
    ) -> Result<JobHandle<Vec<T>>> {
        self.core.admit_vec(&self.tenant, plan, options)
    }

    /// Submit a vector pipeline job, making room (dispatching queued
    /// batches and resolving in-flight launches) until admission succeeds.
    pub fn submit_vec<T: DeviceScalar>(&self, plan: &PlanVec<T>) -> Result<JobHandle<Vec<T>>> {
        self.submit_vec_with(plan, JobOptions::default())
    }

    /// [`Session::submit_vec`] with per-job [`JobOptions`].
    pub fn submit_vec_with<T: DeviceScalar>(
        &self,
        plan: &PlanVec<T>,
        options: JobOptions,
    ) -> Result<JobHandle<Vec<T>>> {
        loop {
            match self.core.admit_vec(&self.tenant, plan, options) {
                Err(ServeError::WouldBlock) => {
                    if !self.core.make_room() {
                        return Err(ServeError::WouldBlock);
                    }
                }
                other => return other,
            }
        }
    }

    /// Submit a scalar (reduction) pipeline job with try semantics.
    pub fn try_submit_scalar<T: DeviceScalar>(&self, plan: &PlanScalar<T>) -> Result<JobHandle<T>> {
        self.try_submit_scalar_with(plan, JobOptions::default())
    }

    /// [`Session::try_submit_scalar`] with per-job [`JobOptions`].
    pub fn try_submit_scalar_with<T: DeviceScalar>(
        &self,
        plan: &PlanScalar<T>,
        options: JobOptions,
    ) -> Result<JobHandle<T>> {
        self.core.admit_scalar(&self.tenant, plan, options)
    }

    /// Submit a scalar (reduction) pipeline job, making room as needed.
    pub fn submit_scalar<T: DeviceScalar>(&self, plan: &PlanScalar<T>) -> Result<JobHandle<T>> {
        self.submit_scalar_with(plan, JobOptions::default())
    }

    /// [`Session::submit_scalar`] with per-job [`JobOptions`].
    pub fn submit_scalar_with<T: DeviceScalar>(
        &self,
        plan: &PlanScalar<T>,
        options: JobOptions,
    ) -> Result<JobHandle<T>> {
        loop {
            match self.core.admit_scalar(&self.tenant, plan, options) {
                Err(ServeError::WouldBlock) => {
                    if !self.core.make_room() {
                        return Err(ServeError::WouldBlock);
                    }
                }
                other => return other,
            }
        }
    }
}
