//! Error type of the serving layer.

use std::fmt;

use oclsim::{OclError, SimTime};
use skelcl::SkelError;

/// Errors returned by [`crate::Server`] and [`crate::Session`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission would exceed a backpressure watermark (the tenant's
    /// `max_pending` or the server's `max_queue_depth`); retry after some
    /// in-flight work completes, or use the blocking submit which makes
    /// room by driving the scheduler itself.
    WouldBlock,
    /// The server is shutting down and accepts no new jobs.
    ShuttingDown,
    /// The named tenant was never registered.
    UnknownTenant(String),
    /// The tenant name is already registered.
    DuplicateTenant(String),
    /// Admitting the job would exceed the tenant's memory quota.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
        /// Bytes the job asked for.
        requested: usize,
        /// Bytes of the tenant's jobs currently admitted or in flight.
        used: usize,
        /// The tenant's quota in bytes.
        cap: usize,
    },
    /// The job's result was already claimed from its handle.
    ResultTaken,
    /// The job was cancelled through [`crate::JobHandle::cancel`] before it
    /// dispatched; its quota and pending count were released immediately.
    Cancelled,
    /// The job's virtual-time deadline passed before it dispatched.
    DeadlineExceeded {
        /// The submitting tenant.
        tenant: String,
        /// The deadline that passed (virtual time).
        deadline: SimTime,
    },
    /// The job kept failing with injected faults past its retry budget.
    /// Carries the full fault chain — one entry per failed attempt, oldest
    /// first — for post-mortem analysis.
    JobFailed {
        /// The submitting tenant.
        tenant: String,
        /// Total attempts made (1 initial + retries).
        attempts: usize,
        /// The error of every failed attempt, oldest first.
        fault_chain: Vec<String>,
    },
    /// The job failed inside the SkelCL runtime.
    Skel(SkelError),
    /// A serving-layer invariant was violated (a bug, not an input error).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WouldBlock => write!(f, "submission would exceed a backpressure watermark"),
            ServeError::ShuttingDown => write!(f, "the server is shutting down"),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant `{name}`"),
            ServeError::DuplicateTenant(name) => {
                write!(f, "tenant `{name}` is already registered")
            }
            ServeError::QuotaExceeded {
                tenant,
                requested,
                used,
                cap,
            } => write!(
                f,
                "tenant `{tenant}` quota exceeded: job needs {requested} bytes with {used} of {cap} bytes in use"
            ),
            ServeError::ResultTaken => write!(f, "the job result was already taken"),
            ServeError::Cancelled => write!(f, "the job was cancelled before dispatch"),
            ServeError::DeadlineExceeded { tenant, deadline } => write!(
                f,
                "tenant `{tenant}` job missed its virtual-time deadline ({deadline:?})"
            ),
            ServeError::JobFailed {
                tenant,
                attempts,
                fault_chain,
            } => write!(
                f,
                "tenant `{tenant}` job failed after {attempts} attempts: [{}]",
                fault_chain.join("; ")
            ),
            ServeError::Skel(e) => write!(f, "job failed: {e}"),
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Skel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SkelError> for ServeError {
    fn from(e: SkelError) -> Self {
        match e {
            SkelError::Ocl(OclError::QuotaExceeded {
                tag,
                requested,
                used,
                cap,
            }) => ServeError::QuotaExceeded {
                tenant: tag,
                requested,
                used,
                cap,
            },
            other => ServeError::Skel(other),
        }
    }
}

impl From<OclError> for ServeError {
    fn from(e: OclError) -> Self {
        ServeError::from(SkelError::from(e))
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
