//! SkelCL as a service: a multi-tenant serving layer over a shared
//! [`skelcl::SkelCl`] runtime.
//!
//! Many concurrent clients submit lazy pipeline [`skelcl::PlanVec`] /
//! [`skelcl::PlanScalar`] jobs through per-tenant [`Session`]s; the
//! [`Server`]'s admission scheduler:
//!
//! - **coalesces** small same-kernel elementwise jobs into one lane-batched
//!   packed launch with per-job result slicing,
//! - enforces **weighted fair share** within strict [`Priority`] bands
//!   across tenants and 1–N simulated devices,
//! - applies per-tenant **memory quotas** (through the runtime's
//!   [`oclsim::ResourceLedger`]) and queue-depth **backpressure**
//!   ([`ServeError::WouldBlock`] past a watermark, or blocking submits
//!   that make room by driving the scheduler), and
//! - delivers results **asynchronously** through [`JobHandle`]s built on
//!   the simulator's event machinery.
//!
//! The scheduler is cooperative and synchronous — no scheduler thread —
//! so a fixed submission order yields bit-identical results *and*
//! bit-identical virtual time across repetitions and device counts:
//! packed launches pin every coalesced job to a single device chosen by
//! deterministic argmin over per-device virtual availability.
//!
//! ```
//! use skelcl::prelude::*;
//! use skelcl_serving::{Server, TenantConfig};
//!
//! let runtime = skelcl::init_gpus(2);
//! let server = Server::new(runtime.clone());
//! server.add_tenant("alice", TenantConfig::weighted(3)).unwrap();
//!
//! let session = server.session("alice").unwrap();
//! let double = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x; }");
//! let v = Vector::from_vec(&runtime, vec![1.0f32, 2.0, 3.0]);
//! let job = session.submit_vec(&v.lazy().map(&double)).unwrap();
//! let (out, report) = job.wait().unwrap();
//! assert_eq!(out, vec![2.0, 4.0, 6.0]);
//! assert_eq!(report.batch_jobs, 1);
//! ```

mod error;
mod job;
mod scheduler;
mod server;
mod tenant;

pub use error::{Result, ServeError};
pub use job::{JobHandle, JobReport};
pub use scheduler::JobOptions;
pub use server::{Server, ServerConfig, ServingTrace, Session};
pub use tenant::{Priority, TenantConfig};
