//! The admission/scheduling core.
//!
//! The scheduler is **cooperative and synchronous**: there is no scheduler
//! thread. Jobs are admitted into a queue; dispatch happens under the core
//! lock when a trigger fires (the coalesce cap fills, a blocking submit
//! needs room, a handle waits, or the server flushes or shuts down). All
//! host-virtual-clock charges therefore happen in deterministic program
//! order — given a fixed submission order, results and virtual time are
//! bit-identical across repetitions.
//!
//! Dispatch picks jobs by **weighted fair queuing within strict priority
//! bands**: each tenant carries a virtual time that advances by
//! `footprint / weight` per admitted job, and the queued job with the
//! smallest `(band, tag, admission#)` key dispatches first. If the picked
//! job is *coalescible* (an all-elementwise plan), every queued job with
//! the same kernel signature joins it — up to the coalesce cap — in **one**
//! packed launch ([`skelcl::PlanVec::pack_jobs`]) on the least-loaded
//! device (in virtual time). Non-coalescible jobs (reduce/scan pipelines)
//! run through the ordinary plan executor at dispatch.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use oclsim::{SimDuration, SimTime};
use parking_lot::Mutex;
use skelcl::{DeviceScalar, PlanScalar, PlanVec, SkelCl, SkelError};

use crate::error::{Result, ServeError};
use crate::job::{JobHandle, JobReport, JobSlot};
use crate::server::ServerConfig;
use crate::tenant::{Priority, TenantConfig};

/// Fixed-point scale of the fair-queuing virtual clock.
const WFQ_SCALE: u128 = 1 << 20;

/// Per-job submission options (the `*_with` submit forms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobOptions {
    /// Absolute virtual-time deadline: a job still *queued* when the host's
    /// virtual clock passes this instant fails with
    /// [`ServeError::DeadlineExceeded`], releasing its quota and pending
    /// count immediately. Jobs already dispatched run to completion.
    pub deadline: Option<SimTime>,
    /// Override of the server-wide retry budget
    /// (`ServerConfig::max_retries`) for this job.
    pub max_retries: Option<usize>,
}

impl JobOptions {
    /// Options with a virtual-time deadline.
    pub fn with_deadline(deadline: SimTime) -> JobOptions {
        JobOptions {
            deadline: Some(deadline),
            ..JobOptions::default()
        }
    }

    /// Options with a per-job retry budget.
    pub fn with_max_retries(max_retries: usize) -> JobOptions {
        JobOptions {
            max_retries: Some(max_retries),
            ..JobOptions::default()
        }
    }
}

/// Completion counters shared with in-flight resolution closures (which run
/// while the core lock is held and therefore cannot re-enter the state).
#[derive(Clone)]
pub(crate) struct Counters {
    pub(crate) completed: Arc<AtomicUsize>,
    pub(crate) failed: Arc<AtomicUsize>,
}

/// Everything a resolution closure needs to finish one packed job.
pub(crate) struct BatchMember {
    slot: Arc<JobSlot>,
    tenant: String,
    footprint: usize,
    pending: Arc<AtomicUsize>,
    report: JobReport,
}

impl BatchMember {
    fn finish_ok(
        self,
        runtime: &Arc<SkelCl>,
        payload: Box<dyn Any + Send>,
        complete_virt: SimTime,
        counters: &Counters,
    ) {
        runtime
            .context()
            .ledger()
            .credit(&self.tenant, self.footprint);
        self.pending.fetch_sub(1, Ordering::Relaxed);
        let mut report = self.report;
        report.complete_virt = complete_virt;
        self.slot.complete(payload, report);
        counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Outcome of resolving one in-flight packed launch: `Ok` means every
/// member was finished; `Err` hands the error and the *unfinished* members
/// back to the core, which decides between retry (re-queueing the retained
/// jobs, quota kept charged) and terminal failure (quota credited).
type ResolveOutcome = std::result::Result<(), (ServeError, Vec<BatchMember>)>;

/// Type-erased view of a coalescible (all-elementwise) vector job.
trait ErasedPackable: Send {
    /// The job's `PlanVec<T>` as `Any` (downcast by the batch leader).
    fn plan_any(&self) -> &(dyn Any + Send);

    /// Pack `peers` (self first) into one launch on `device` and return the
    /// deferred resolution closure. Called on the leader; all peers carry
    /// the leader's signature and therefore its element type.
    fn launch(
        &self,
        peers: &[&dyn ErasedPackable],
        device: usize,
        members: Vec<BatchMember>,
        runtime: Arc<SkelCl>,
        counters: Counters,
    ) -> std::result::Result<Box<dyn FnOnce() -> ResolveOutcome + Send>, SkelError>;
}

struct TypedPackable<T: DeviceScalar> {
    plan: PlanVec<T>,
}

impl<T: DeviceScalar> ErasedPackable for TypedPackable<T> {
    fn plan_any(&self) -> &(dyn Any + Send) {
        &self.plan
    }

    fn launch(
        &self,
        peers: &[&dyn ErasedPackable],
        device: usize,
        members: Vec<BatchMember>,
        runtime: Arc<SkelCl>,
        counters: Counters,
    ) -> std::result::Result<Box<dyn FnOnce() -> ResolveOutcome + Send>, SkelError> {
        let mut plans: Vec<&PlanVec<T>> = Vec::with_capacity(peers.len());
        for peer in peers {
            let plan = peer
                .plan_any()
                .downcast_ref::<PlanVec<T>>()
                .ok_or_else(|| {
                    SkelError::Scheduler(
                        "coalesced peer's element type does not match the batch leader".into(),
                    )
                })?;
            plans.push(plan);
        }
        let packed = PlanVec::pack_jobs(&plans, device)?;
        Ok(Box::new(move || match packed.wait() {
            Ok((outputs, event)) => {
                for (member, out) in members.into_iter().zip(outputs) {
                    member.finish_ok(&runtime, Box::new(out), event.end, &counters);
                }
                Ok(())
            }
            Err(e) => Err((ServeError::from(e), members)),
        }))
    }
}

/// How a queued job executes at dispatch. Both forms are re-runnable, so a
/// job that fails with an injected fault can be replayed after backoff.
enum JobWork {
    /// Coalescible elementwise job: joins a packed launch.
    Packable(Box<dyn ErasedPackable>),
    /// Everything else: runs through the plan executor synchronously.
    Opaque(Box<dyn Fn() -> std::result::Result<Box<dyn Any + Send>, SkelError> + Send>),
}

/// One admitted, not-yet-dispatched job.
struct QueuedJob {
    id: u64,
    tenant: String,
    band: Priority,
    tag: u128,
    seq: u64,
    signature: Option<String>,
    footprint: usize,
    submit_virt: SimTime,
    /// Virtual-time release of the next attempt (backoff after a fault);
    /// the job is not dispatchable before this instant.
    not_before: SimTime,
    /// Absolute virtual-time deadline while queued, if any.
    deadline: Option<SimTime>,
    /// Replays left before the job fails terminally.
    retries_left: usize,
    /// Errors of the failed attempts so far, oldest first.
    fault_chain: Vec<String>,
    slot: Arc<JobSlot>,
    pending: Arc<AtomicUsize>,
    work: JobWork,
    /// Re-establishes a trustworthy device image of the job's input
    /// containers before a replay (see [`PlanVec::refresh_for_replay`]).
    refresh: Box<dyn Fn() -> std::result::Result<(), SkelError> + Send>,
}

impl QueuedJob {
    fn sort_key(&self) -> (Priority, u128, u64) {
        (self.band, self.tag, self.seq)
    }

    /// Terminally fail the job: credit its quota, release its pending
    /// count and resolve its slot.
    fn fail_now(self, runtime: &Arc<SkelCl>, error: ServeError, counters: &Counters) {
        runtime
            .context()
            .ledger()
            .credit(&self.tenant, self.footprint);
        self.pending.fetch_sub(1, Ordering::Relaxed);
        self.slot.fail(error);
        counters.failed.fetch_add(1, Ordering::Relaxed);
    }
}

/// A dispatched packed launch awaiting resolution. The queued jobs are
/// retained so a fault-failed batch can be re-queued for replay.
struct InFlight {
    resolve: Box<dyn FnOnce() -> ResolveOutcome + Send>,
    jobs: Vec<QueuedJob>,
}

struct TenantState {
    config: TenantConfig,
    vtime: u128,
    pending: Arc<AtomicUsize>,
}

/// Dispatch statistics (under the core lock; completion counts live in
/// [`Counters`]).
#[derive(Default, Clone)]
pub(crate) struct Stats {
    pub(crate) jobs_submitted: usize,
    pub(crate) batches: usize,
    pub(crate) packed_batches: usize,
    pub(crate) coalesced_jobs: usize,
    pub(crate) opaque_jobs: usize,
    pub(crate) would_blocks: usize,
    pub(crate) max_queue_depth_seen: usize,
    pub(crate) dispatch_tenants: Vec<String>,
    pub(crate) batch_sizes: Vec<usize>,
    pub(crate) retries: usize,
    pub(crate) cancelled: usize,
    pub(crate) deadline_failures: usize,
}

struct CoreState {
    queue: Vec<QueuedJob>,
    inflight: Vec<InFlight>,
    tenants: HashMap<String, TenantState>,
    vclock: u128,
    next_job: u64,
    shutting_down: bool,
    stats: Stats,
}

/// The shared scheduler core behind [`crate::Server`] and every
/// [`crate::Session`] / [`JobHandle`].
pub(crate) struct Core {
    runtime: Arc<SkelCl>,
    config: ServerConfig,
    state: Mutex<CoreState>,
    counters: Counters,
}

impl Core {
    pub(crate) fn new(runtime: Arc<SkelCl>, config: ServerConfig) -> Arc<Core> {
        Arc::new(Core {
            runtime,
            config,
            state: Mutex::new(CoreState {
                queue: Vec::new(),
                inflight: Vec::new(),
                tenants: HashMap::new(),
                vclock: 0,
                next_job: 0,
                shutting_down: false,
                stats: Stats::default(),
            }),
            counters: Counters {
                completed: Arc::new(AtomicUsize::new(0)),
                failed: Arc::new(AtomicUsize::new(0)),
            },
        })
    }

    pub(crate) fn runtime(&self) -> Arc<SkelCl> {
        self.runtime.clone()
    }

    pub(crate) fn add_tenant(&self, name: &str, config: TenantConfig) -> Result<()> {
        let mut state = self.state.lock();
        if state.tenants.contains_key(name) {
            return Err(ServeError::DuplicateTenant(name.to_string()));
        }
        self.runtime
            .context()
            .ledger()
            .set_cap(name, config.quota_bytes);
        state.tenants.insert(
            name.to_string(),
            TenantState {
                config,
                vtime: 0,
                pending: Arc::new(AtomicUsize::new(0)),
            },
        );
        Ok(())
    }

    pub(crate) fn has_tenant(&self, name: &str) -> bool {
        self.state.lock().tenants.contains_key(name)
    }

    /// Admit an elementwise-or-opaque vector job (try semantics: returns
    /// [`ServeError::WouldBlock`] past a watermark instead of blocking).
    pub(crate) fn admit_vec<T: DeviceScalar>(
        self: &Arc<Self>,
        tenant: &str,
        plan: &PlanVec<T>,
        options: JobOptions,
    ) -> Result<JobHandle<Vec<T>>> {
        let signature = plan.coalesce_signature().map_err(ServeError::from)?;
        let footprint = plan.footprint_bytes();
        let work = if signature.is_some() {
            JobWork::Packable(Box::new(TypedPackable { plan: plan.clone() }))
        } else {
            let plan = plan.clone();
            JobWork::Opaque(Box::new(move || {
                plan.collect().map(|v| Box::new(v) as Box<dyn Any + Send>)
            }))
        };
        let refresh = {
            let plan = plan.clone();
            Box::new(move || plan.refresh_for_replay())
        };
        let slot = self.admit(tenant, signature, footprint, work, refresh, options)?;
        Ok(JobHandle {
            slot,
            core: self.clone(),
            _payload: std::marker::PhantomData,
        })
    }

    /// Admit a reduction job (always runs through the plan executor).
    pub(crate) fn admit_scalar<T: DeviceScalar>(
        self: &Arc<Self>,
        tenant: &str,
        plan: &PlanScalar<T>,
        options: JobOptions,
    ) -> Result<JobHandle<T>> {
        let footprint = plan.footprint_bytes();
        let work = {
            let plan = plan.clone();
            JobWork::Opaque(Box::new(move || {
                plan.scalar().map(|v| Box::new(v) as Box<dyn Any + Send>)
            }))
        };
        let refresh = {
            let plan = plan.clone();
            Box::new(move || plan.refresh_for_replay())
        };
        let slot = self.admit(tenant, None, footprint, work, refresh, options)?;
        Ok(JobHandle {
            slot,
            core: self.clone(),
            _payload: std::marker::PhantomData,
        })
    }

    fn admit(
        &self,
        tenant: &str,
        signature: Option<String>,
        footprint: usize,
        work: JobWork,
        refresh: Box<dyn Fn() -> std::result::Result<(), SkelError> + Send>,
        options: JobOptions,
    ) -> Result<Arc<JobSlot>> {
        let mut state = self.state.lock();
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        let Some((max_pending, pending)) = state
            .tenants
            .get(tenant)
            .map(|t| (t.config.max_pending.max(1), t.pending.clone()))
        else {
            return Err(ServeError::UnknownTenant(tenant.to_string()));
        };
        if pending.load(Ordering::Relaxed) >= max_pending
            || state.queue.len() >= self.config.max_queue_depth.max(1)
        {
            state.stats.would_blocks += 1;
            return Err(ServeError::WouldBlock);
        }
        self.runtime
            .context()
            .ledger()
            .try_charge(tenant, footprint)
            .map_err(|e| ServeError::from(SkelError::from(e)))?;
        let vclock = state.vclock;
        let t = state.tenants.get_mut(tenant).expect("checked above");
        let weight = u128::from(t.config.weight.max(1));
        let start = t.vtime.max(vclock);
        t.vtime = start + (footprint.max(1) as u128 * WFQ_SCALE) / weight;
        let tag = t.vtime;
        let band = t.config.priority;
        pending.fetch_add(1, Ordering::Relaxed);
        let id = state.next_job;
        state.next_job += 1;
        let slot = JobSlot::new();
        let submit_virt = self.runtime.now();
        state.queue.push(QueuedJob {
            id,
            tenant: tenant.to_string(),
            band,
            tag,
            seq: id,
            signature: signature.clone(),
            footprint,
            submit_virt,
            not_before: submit_virt,
            deadline: options.deadline,
            retries_left: options.max_retries.unwrap_or(self.config.max_retries),
            fault_chain: Vec::new(),
            slot: slot.clone(),
            pending,
            work,
            refresh,
        });
        state.stats.jobs_submitted += 1;
        let depth = state.queue.len();
        state.stats.max_queue_depth_seen = state.stats.max_queue_depth_seen.max(depth);
        // Coalesce-cap trigger: once a full batch of one signature is
        // queued, dispatch it eagerly — waiting longer cannot grow it.
        if let (Some(sig), true) = (&signature, self.config.coalescing) {
            let same = state
                .queue
                .iter()
                .filter(|j| j.signature.as_deref() == Some(sig.as_str()))
                .count();
            if same >= self.config.coalesce_cap.max(1) {
                self.dispatch_one_locked(&mut state);
            }
        }
        Ok(slot)
    }

    /// The device whose command queue is least loaded in virtual time
    /// (ties broken toward the lowest index, for determinism). Lost devices
    /// are skipped so replayed batches land on survivors.
    fn pick_device(&self) -> usize {
        let lost = self.runtime.lost_devices();
        (0..self.runtime.device_count())
            .filter(|d| !lost.contains(d))
            .min_by_key(|&d| (self.runtime.queue(d).available_at(), d))
            .unwrap_or(0)
    }

    /// Terminally fail every queued job whose virtual-time deadline has
    /// passed, releasing quota and pending counts immediately.
    fn sweep_deadlines_locked(&self, state: &mut CoreState) {
        let now = self.runtime.now();
        let mut kept = Vec::with_capacity(state.queue.len());
        for job in std::mem::take(&mut state.queue) {
            match job.deadline {
                Some(deadline) if now > deadline => {
                    state.stats.deadline_failures += 1;
                    let error = ServeError::DeadlineExceeded {
                        tenant: job.tenant.clone(),
                        deadline,
                    };
                    job.fail_now(&self.runtime, error, &self.counters);
                }
                _ => kept.push(job),
            }
        }
        state.queue = kept;
    }

    /// Dispatch the best queued batch, if any. Packed launches go in
    /// flight (resolved later, in dispatch order); opaque jobs complete
    /// before this returns. Jobs backing off after a fault (`not_before`
    /// in the virtual future) are not eligible; the drain loop advances
    /// the clock when only those remain.
    fn dispatch_one_locked(&self, state: &mut CoreState) -> bool {
        self.sweep_deadlines_locked(state);
        if state.queue.is_empty() {
            return false;
        }
        let now = self.runtime.now();
        let eligible = |job: &QueuedJob| job.not_before <= now;
        let Some(leader_idx) = (0..state.queue.len())
            .filter(|&i| eligible(&state.queue[i]))
            .min_by_key(|&i| state.queue[i].sort_key())
        else {
            return false;
        };
        let leader_sig = state.queue[leader_idx].signature.clone();
        let batch_indices: Vec<usize> = match (&leader_sig, self.config.coalescing) {
            (Some(sig), true) => {
                let mut idxs: Vec<usize> = (0..state.queue.len())
                    .filter(|&i| {
                        eligible(&state.queue[i])
                            && state.queue[i].signature.as_deref() == Some(sig.as_str())
                    })
                    .collect();
                idxs.sort_by_key(|&i| state.queue[i].sort_key());
                idxs.truncate(self.config.coalesce_cap.max(1));
                idxs
            }
            _ => vec![leader_idx],
        };
        let batch_set: HashSet<usize> = batch_indices.iter().copied().collect();
        let old_queue = std::mem::take(&mut state.queue);
        let mut extracted: HashMap<usize, QueuedJob> = HashMap::new();
        for (i, job) in old_queue.into_iter().enumerate() {
            if batch_set.contains(&i) {
                extracted.insert(i, job);
            } else {
                state.queue.push(job);
            }
        }
        let batch: Vec<QueuedJob> = batch_indices
            .iter()
            .map(|i| extracted.remove(i).expect("extracted above"))
            .collect();
        state.vclock = state.vclock.max(batch[0].tag);
        state.stats.batches += 1;
        state.stats.batch_sizes.push(batch.len());
        state.stats.dispatch_tenants.push(batch[0].tenant.clone());
        if batch.len() > 1 {
            state.stats.coalesced_jobs += batch.len();
        }
        let ledger_ctx = self.runtime.context().ledger();
        let mut seen_tenants: HashSet<&str> = HashSet::new();
        for job in &batch {
            ledger_ctx.note_transfer(&job.tenant, job.footprint);
            if seen_tenants.insert(job.tenant.as_str()) {
                ledger_ctx.note_launch(&job.tenant);
            }
        }
        match &batch[0].work {
            JobWork::Packable(_) => {
                state.stats.packed_batches += 1;
                let device = self.pick_device();
                let members: Vec<BatchMember> = batch
                    .iter()
                    .map(|j| BatchMember {
                        slot: j.slot.clone(),
                        tenant: j.tenant.clone(),
                        footprint: j.footprint,
                        pending: j.pending.clone(),
                        report: JobReport {
                            job_id: j.id,
                            tenant: j.tenant.clone(),
                            device: Some(device),
                            batch_jobs: batch.len(),
                            submit_virt: j.submit_virt,
                            complete_virt: SimTime::ZERO,
                        },
                    })
                    .collect();
                let launched = {
                    let packables: Vec<&dyn ErasedPackable> = batch
                        .iter()
                        .map(|j| match &j.work {
                            JobWork::Packable(p) => p.as_ref(),
                            JobWork::Opaque(_) => {
                                unreachable!("a signature match implies a packable job")
                            }
                        })
                        .collect();
                    packables[0].launch(
                        &packables,
                        device,
                        members,
                        self.runtime.clone(),
                        self.counters.clone(),
                    )
                };
                match launched {
                    Ok(resolve) => state.inflight.push(InFlight {
                        resolve,
                        jobs: batch,
                    }),
                    Err(e) => {
                        let error = ServeError::from(e);
                        for job in batch {
                            self.settle_failed_job(state, job, error.clone());
                        }
                    }
                }
            }
            JobWork::Opaque(_) => {
                state.stats.opaque_jobs += 1;
                let job = batch
                    .into_iter()
                    .next()
                    .expect("opaque batches hold one job");
                let outcome = match &job.work {
                    JobWork::Opaque(run) => run(),
                    JobWork::Packable(_) => unreachable!("matched opaque above"),
                };
                match outcome {
                    Ok(payload) => {
                        ledger_ctx.credit(&job.tenant, job.footprint);
                        job.pending.fetch_sub(1, Ordering::Relaxed);
                        let report = JobReport {
                            job_id: job.id,
                            tenant: job.tenant.clone(),
                            device: None,
                            batch_jobs: 1,
                            submit_virt: job.submit_virt,
                            complete_virt: self.runtime.now(),
                        };
                        job.slot.complete(payload, report);
                        self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => self.settle_failed_job(state, job, ServeError::from(e)),
                }
            }
        }
        true
    }

    /// Decide between replay and terminal failure for a job whose attempt
    /// failed with `error`. Injected faults with retry budget left re-queue
    /// the job — quota stays charged across replays, so the ledger never
    /// double-charges — with an exponential virtual-time backoff; injected
    /// faults past the budget fail with [`ServeError::JobFailed`] carrying
    /// the whole fault chain; everything else passes through unchanged.
    fn settle_failed_job(&self, state: &mut CoreState, mut job: QueuedJob, error: ServeError) {
        // Drop fault records the failed attempt parked on the runtime so
        // they cannot leak into the replay (or an unrelated job).
        let _ = self.runtime.take_deferred_errors();
        let injected = matches!(&error, ServeError::Skel(e) if e.is_injected_fault());
        if injected && job.retries_left > 0 {
            // A transiently failed upload was recorded by the coherence
            // flags when enqueued but never executed; refresh the inputs so
            // the replay re-uploads instead of trusting a stale buffer. If
            // the authoritative copy itself is gone (it lived on a lost
            // device), degrade gracefully to a typed terminal failure.
            if let Err(refresh_err) = (job.refresh)() {
                job.fail_now(&self.runtime, ServeError::Skel(refresh_err), &self.counters);
                return;
            }
            job.retries_left -= 1;
            job.fault_chain.push(error.to_string());
            let attempts = job.fault_chain.len() as u64;
            job.not_before =
                self.runtime.now() + SimDuration(self.config.retry_backoff.0.max(1) * attempts);
            state.stats.retries += 1;
            state.queue.push(job);
        } else if injected {
            job.fault_chain.push(error.to_string());
            let terminal = ServeError::JobFailed {
                tenant: job.tenant.clone(),
                attempts: job.fault_chain.len(),
                fault_chain: std::mem::take(&mut job.fault_chain),
            };
            job.fail_now(&self.runtime, terminal, &self.counters);
        } else {
            job.fail_now(&self.runtime, error, &self.counters);
        }
    }

    /// Resolve one in-flight packed launch: on success the members finished
    /// themselves inside the closure; on failure every retained job goes
    /// through the retry-or-fail decision.
    fn settle_resolved(&self, state: &mut CoreState, inflight: InFlight) {
        let InFlight { resolve, jobs } = inflight;
        match resolve() {
            Ok(()) => {}
            Err((error, members)) => {
                // The members hold no accounting of their own — quota and
                // pending counts are settled through the retained jobs.
                drop(members);
                for job in jobs {
                    self.settle_failed_job(state, job, error.clone());
                }
            }
        }
    }

    /// When the queue holds only backing-off jobs (and nothing is in
    /// flight), advance the host's virtual clock to the earliest release so
    /// a blocked drain cannot deadlock. Returns whether the clock moved.
    fn advance_to_backoff_locked(&self, state: &mut CoreState) -> bool {
        let now = self.runtime.now();
        let earliest = state
            .queue
            .iter()
            .map(|j| j.not_before)
            .filter(|&t| t > now)
            .min();
        match earliest {
            Some(release) => {
                self.runtime.context().sync_host_to(release);
                true
            }
            None => false,
        }
    }

    /// Cancel a still-queued job (identified by its slot): credits its
    /// quota, releases its pending count and fails the slot with
    /// [`ServeError::Cancelled`]. Returns false once the job has dispatched
    /// — in-flight and completed jobs cannot be cancelled.
    pub(crate) fn cancel(&self, slot: &Arc<JobSlot>) -> bool {
        let mut state = self.state.lock();
        let Some(pos) = state.queue.iter().position(|j| Arc::ptr_eq(&j.slot, slot)) else {
            return false;
        };
        let job = state.queue.remove(pos);
        state.stats.cancelled += 1;
        job.fail_now(&self.runtime, ServeError::Cancelled, &self.counters);
        true
    }

    /// Make one unit of progress (used by blocking submits to free a
    /// watermark): dispatch one batch, else resolve the oldest in-flight
    /// launch. Returns false when there is nothing left to drive.
    pub(crate) fn make_room(&self) -> bool {
        let mut state = self.state.lock();
        if self.dispatch_one_locked(&mut state) {
            return true;
        }
        if !state.inflight.is_empty() {
            let batch = state.inflight.remove(0);
            self.settle_resolved(&mut state, batch);
            return true;
        }
        self.advance_to_backoff_locked(&mut state)
    }

    /// Dispatch everything queued and resolve every in-flight launch, in
    /// deterministic (dispatch) order.
    pub(crate) fn drain_all(&self) {
        let mut state = self.state.lock();
        self.drain_locked(&mut state);
    }

    fn drain_locked(&self, state: &mut CoreState) {
        loop {
            while self.dispatch_one_locked(state) {}
            if !state.inflight.is_empty() {
                let resolvers: Vec<InFlight> = state.inflight.drain(..).collect();
                for batch in resolvers {
                    self.settle_resolved(state, batch);
                }
                continue;
            }
            // Only backing-off replays remain: jump the virtual clock to
            // their release instant. Bounded — every replay consumes retry
            // budget, so this loop terminates.
            if !self.advance_to_backoff_locked(state) {
                break;
            }
        }
    }

    /// Refuse new work, then drain.
    pub(crate) fn shutdown(&self) {
        let mut state = self.state.lock();
        state.shutting_down = true;
        self.drain_locked(&mut state);
    }

    pub(crate) fn snapshot(&self) -> (Stats, usize, usize, usize, usize) {
        let state = self.state.lock();
        (
            state.stats.clone(),
            self.counters.completed.load(Ordering::Relaxed),
            self.counters.failed.load(Ordering::Relaxed),
            state.queue.len(),
            state.inflight.len(),
        )
    }
}
