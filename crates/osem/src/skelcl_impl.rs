//! The SkelCL host program for list-mode OSEM — the Rust analogue of
//! Listing 3 of the paper.
//!
//! The hybrid parallelisation strategy of Section IV-A is expressed purely
//! through distributions: step 1 uses PSD (events block-distributed,
//! reconstruction image and error image copy-distributed), step 2 uses ISD
//! (both images block-distributed). All data movement between the phases is
//! implied by the `set_distribution` calls and performed implicitly by
//! SkelCL.
//!
//! The `// LOC:` markers delimit the regions counted for the Figure 4a
//! programming-effort comparison; the multi-GPU region contains exactly the
//! distribution changes that the paper counts as the 8 additional lines.

use std::sync::Arc;

use skelcl::prelude::*;
use skelcl::SkelCl;

use crate::config::ReconstructionConfig;
use crate::events::Event;
use crate::kernels::{step1_cost, step2_cost};
use crate::siddon::compute_path_into;

/// Virtual-time breakdown of one subset iteration, mirroring the five phases
/// of Figure 3 in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    /// Phase 1: upload (distribute events, images to the devices).
    pub upload_s: f64,
    /// Phase 2: step 1 — compute the error image.
    pub step1_s: f64,
    /// Phase 3: redistribution (combine error images, switch PSD → ISD).
    pub redistribution_s: f64,
    /// Phase 4: step 2 — update the reconstruction image.
    pub step2_s: f64,
    /// Phase 5: download (merge the reconstruction image on the host).
    pub download_s: f64,
}

impl PhaseTiming {
    /// Total time of the subset iteration.
    pub fn total_s(&self) -> f64 {
        self.upload_s + self.step1_s + self.redistribution_s + self.step2_s + self.download_s
    }
}

/// The SkelCL implementation of list-mode OSEM.
pub struct SkelclOsem {
    runtime: Arc<SkelCl>,
    config: ReconstructionConfig,
    map_compute_c: Map<Event, f32>,
    zip_update: Zip<f32, f32, f32>,
}

impl SkelclOsem {
    /// Set up the skeletons for a reconstruction on the given runtime.
    pub fn new(runtime: Arc<SkelCl>, config: ReconstructionConfig) -> SkelclOsem {
        let volume = config.volume;
        // Step 1 as a map skeleton with additional arguments: the
        // reconstruction image (read) and the error image (written) are
        // passed as additional vector arguments, like `mapComputeC` in
        // Listing 3 of the paper.
        let map_compute_c = Map::<Event, f32>::new(move |event, args| {
            let mut path = Vec::new();
            compute_path_into(&volume, event, &mut path);
            if path.is_empty() {
                return 0.0;
            }
            let fp: f32 = {
                let f = args.slice_f32(0);
                path.iter().map(|el| f[el.coord] * el.len).sum()
            };
            if fp <= 0.0 {
                return 0.0;
            }
            let c = args.slice_mut_f32(1);
            for el in &path {
                c[el.coord] += el.len / fp;
            }
            0.0
        })
        .with_cost(step1_cost(&volume));

        // Step 2 as a zip skeleton with a source-string user function —
        // `zipUpdate` in Listing 3.
        let zip_update = Zip::<f32, f32, f32>::from_source(
            "float func(float f, float c) { if (c > 0.0f) { return f * c; } return f; }",
        )
        .with_cost(step2_cost());

        SkelclOsem {
            runtime,
            config,
            map_compute_c,
            zip_update,
        }
    }

    /// The runtime the reconstruction executes on.
    pub fn runtime(&self) -> &Arc<SkelCl> {
        &self.runtime
    }

    /// Process one subset, updating the reconstruction image vector in place
    /// (the vector handle is replaced because the zip skeleton produces a new
    /// output vector). Returns the per-phase timing of Figure 3.
    pub fn process_subset(&self, events: &[Event], f: &mut Vector<f32>) -> Result<PhaseTiming> {
        let rt = &self.runtime;
        let mut timing = PhaseTiming::default();
        let t0 = rt.now();

        // LOC: host-single begin
        /* 1. Upload: distribute events to devices */
        let events = Vector::from_vec(rt, events.to_vec());
        let c = Vector::filled(rt, self.config.volume.voxel_count(), 0.0f32);
        // LOC: multi-gpu begin
        events.set_distribution(Distribution::Block)?;
        f.set_distribution(Distribution::Copy)?;
        c.set_copy_distribution_with(Combine::add())?;
        // LOC: multi-gpu end
        let t1 = rt.finish_all();
        timing.upload_s = (t1 - t0).as_secs_f64();

        /* 2. Step 1: compute error image (map skeleton) */
        self.map_compute_c.run(&events).arg(&*f).arg(&c).exec()?;
        c.mark_device_modified();
        let t2 = rt.finish_all();
        timing.step1_s = (t2 - t1).as_secs_f64();

        /* 3. Redistribution: combine error images (element-wise add) and
        switch from PSD to ISD by re-partitioning both images */
        // LOC: multi-gpu begin
        f.set_distribution(Distribution::Block)?;
        c.set_distribution(Distribution::Block)?;
        // LOC: multi-gpu end
        let t3 = rt.finish_all();
        timing.redistribution_s = (t3 - t2).as_secs_f64();

        /* 4. Step 2: update reconstruction image (zip skeleton) */
        *f = self.zip_update.run(f, &c).exec()?;
        let t4 = rt.finish_all();
        timing.step2_s = (t4 - t3).as_secs_f64();

        /* 5. Download: merging the reconstruction image happens implicitly
        on the next host access of `f` */
        let t5 = rt.finish_all();
        timing.download_s = (t5 - t4).as_secs_f64();
        // LOC: host-single end
        Ok(timing)
    }

    /// Run a full reconstruction over pre-generated subsets and return the
    /// final image.
    pub fn reconstruct_subsets(&self, subsets: &[Vec<Event>]) -> Result<Vec<f32>> {
        let mut f = Vector::filled(&self.runtime, self.config.volume.voxel_count(), 1.0f32);
        for subset in subsets {
            self.process_subset(subset, &mut f)?;
        }
        f.to_vec()
    }

    /// Run a full reconstruction, generating events from the configuration.
    pub fn reconstruct(&self) -> Result<Vec<f32>> {
        let subsets = crate::sequential::generate_subsets(&self.config);
        self.reconstruct_subsets(&subsets)
    }

    /// Build the skeleton kernels up front by processing a tiny throw-away
    /// subset. The paper excludes runtime kernel compilation from its
    /// measurements ("compilation is only required once, when launching the
    /// implementation"), so the timing helpers call this first.
    pub fn warmup(&self, events: &[Event]) -> Result<()> {
        let sample = &events[..events.len().min(4)];
        if sample.is_empty() {
            return Ok(());
        }
        let mut f = Vector::filled(&self.runtime, self.config.volume.voxel_count(), 1.0f32);
        self.process_subset(sample, &mut f)?;
        Ok(())
    }

    /// Process one subset and report its total virtual runtime in seconds —
    /// the quantity plotted in Figure 4b. Kernel compilation is excluded by
    /// warming the skeletons up first, as in the paper.
    pub fn time_one_subset(&self, events: &[Event]) -> Result<(f64, Vec<f32>)> {
        self.warmup(events)?;
        let mut f = Vector::filled(&self.runtime, self.config.volume.voxel_count(), 1.0f32);
        let timing = self.process_subset(events, &mut f)?;
        let image = f.to_vec()?;
        Ok((timing.total_s(), image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    fn assert_images_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let denom = x.abs().max(y.abs()).max(1e-3);
            assert!(
                (x - y).abs() / denom < tol,
                "voxel {i}: {x} vs {y} differ by more than {tol}"
            );
        }
    }

    #[test]
    fn skelcl_reconstruction_matches_sequential_on_1_2_4_gpus() {
        let config = ReconstructionConfig::test_scale();
        let subsets = sequential::generate_subsets(&config);
        let mut reference = vec![1.0f32; config.volume.voxel_count()];
        for s in &subsets {
            sequential::process_subset(&config, s, &mut reference);
        }
        for devices in [1usize, 2, 4] {
            let rt = skelcl::init_gpus(devices);
            let osem = SkelclOsem::new(rt, config.clone());
            let image = osem.reconstruct_subsets(&subsets).unwrap();
            assert_images_close(&image, &reference, 1e-3);
        }
    }

    #[test]
    fn phase_timing_is_populated_and_positive() {
        let config = ReconstructionConfig::test_scale();
        let subsets = sequential::generate_subsets(&config);
        let rt = skelcl::init_gpus(2);
        let osem = SkelclOsem::new(rt, config.clone());
        let mut f = Vector::filled(osem.runtime(), config.volume.voxel_count(), 1.0f32);
        let timing = osem.process_subset(&subsets[0], &mut f).unwrap();
        // Uploads are lazy, so the upload phase itself may be free; the two
        // compute steps must always take time.
        assert!(timing.upload_s >= 0.0);
        assert!(timing.step1_s > 0.0);
        assert!(timing.step2_s > 0.0);
        assert!(timing.total_s() >= timing.step1_s + timing.step2_s);
    }

    #[test]
    fn more_gpus_do_not_increase_subset_runtime() {
        let config = ReconstructionConfig::test_scale().with_events_per_subset(50_000);
        let subsets = sequential::generate_subsets(&config);
        let time_for = |devices: usize| {
            let rt = skelcl::init_gpus(devices);
            let osem = SkelclOsem::new(rt, config.clone());
            osem.time_one_subset(&subsets[0]).unwrap().0
        };
        let t1 = time_for(1);
        let t4 = time_for(4);
        assert!(
            t4 < t1,
            "4 GPUs ({t4:.6} s) should be faster than 1 GPU ({t1:.6} s)"
        );
    }
}
