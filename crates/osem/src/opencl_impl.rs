//! The low-level OpenCL-style host program for list-mode OSEM.
//!
//! This implementation uses the simulated OpenCL runtime (`oclsim`) directly,
//! the way the paper's hand-written OpenCL version does: explicit platform
//! and device selection, explicit buffer management, explicit splitting of
//! the event stream across GPUs with offset arithmetic, explicit download /
//! merge / re-upload of the images between the two steps, and explicit
//! synchronisation. The verbosity is the point — Figure 4a compares exactly
//! this host code against Listing 3.
//!
//! The device kernels themselves (`crate::kernels`) are shared by all three
//! implementations, as in the paper where the kernel code is essentially
//! identical across CUDA, OpenCL and SkelCL.

use oclsim::{
    ApiModel, Buffer, CommandQueue, Context, DeviceType, KernelArg, NativeKernelDef, Program,
};

use crate::config::ReconstructionConfig;
use crate::events::Event;
use crate::geometry::Volume;
use crate::kernels::{self, step1_cost, step2_cost};

/// Errors of the low-level implementations are the simulator's errors.
pub type OclResult<T> = oclsim::Result<T>;

/// The OpenCL-style implementation of list-mode OSEM.
pub struct OpenClOsem {
    context: Context,
    queues: Vec<CommandQueue>,
    num_gpus: usize,
    volume: Volume,
    config: ReconstructionConfig,
    compute_c_kernel: oclsim::Kernel,
    update_kernel: oclsim::Kernel,
}

impl OpenClOsem {
    /// Set up the OpenCL-style reconstruction on `num_gpus` GPUs.
    pub fn new(num_gpus: usize, config: ReconstructionConfig) -> OclResult<OpenClOsem> {
        // LOC: host-single begin
        // Platform and device selection boilerplate: enumerate platforms,
        // pick the first one exposing enough GPU devices, and collect their
        // descriptors — the ceremony the paper attributes much of the OpenCL
        // host-code length to.
        let platforms = oclsim::default_platforms();
        let mut selected = None;
        for platform in &platforms {
            let gpus = platform.devices_of_type(DeviceType::Gpu);
            if gpus.len() >= num_gpus {
                selected = Some(gpus.into_iter().take(num_gpus).collect::<Vec<_>>());
                break;
            }
        }
        let Some(device_profiles) = selected else {
            return Err(oclsim::OclError::NoSuchDevice {
                index: num_gpus,
                available: platforms
                    .iter()
                    .map(|p| p.devices_of_type(DeviceType::Gpu).len())
                    .max()
                    .unwrap_or(0),
            });
        };
        // Create the context and one in-order command queue per device.
        let context = Context::new(device_profiles, ApiModel::opencl());
        let mut queues = Vec::with_capacity(num_gpus);
        for device_index in 0..context.device_count() {
            queues.push(context.queue(device_index)?);
        }

        // Build the device programs. OpenCL compiles kernels at runtime; the
        // actual kernel bodies live in `crate::kernels` (shared across the
        // implementations), registered here as native kernels with the cost
        // hints of the real code. A representative source program is built
        // through the runtime compiler so this implementation pays the same
        // one-time compilation cost a real OpenCL host program would (the
        // paper excludes this cost from its measurements, and so do the
        // benchmark harnesses).
        let volume = config.volume;
        context.build_program(
            "__kernel void computeC(__global float* f, __global float* c, int n) {\
                 int i = get_global_id(0); if (i < n) { c[i] = f[i]; } }",
        )?;
        let step1 = step1_cost(&volume);
        let step2 = step2_cost();
        let compute_c_def = NativeKernelDef::new("computeC", step1, move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (events_view, rest) = views.split_first_mut().ok_or("missing events argument")?;
            let (f_view, rest) = rest.split_first_mut().ok_or("missing f argument")?;
            let (c_view, _) = rest.split_first_mut().ok_or("missing c argument")?;
            let events = events_view
                .as_slice::<Event>()
                .ok_or("events must be a buffer")?;
            let f = f_view.as_slice::<f32>().ok_or("f must be a buffer")?;
            let c = c_view.as_slice_mut::<f32>().ok_or("c must be a buffer")?;
            kernels::compute_error_image(&volume, &events[..n], f, c);
            Ok(())
        });
        let update_def = NativeKernelDef::new("updateImage", step2, move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (f_view, rest) = views.split_first_mut().ok_or("missing f argument")?;
            let (c_view, _) = rest.split_first_mut().ok_or("missing c argument")?;
            let f = f_view.as_slice_mut::<f32>().ok_or("f must be a buffer")?;
            let c = c_view.as_slice::<f32>().ok_or("c must be a buffer")?;
            kernels::update_image(&mut f[..n], &c[..n]);
            Ok(())
        });
        let program = Program::from_native([compute_c_def, update_def]);
        let compute_c_kernel = program.kernel("computeC")?;
        let update_kernel = program.kernel("updateImage")?;
        // LOC: host-single end

        Ok(OpenClOsem {
            context,
            queues,
            num_gpus,
            volume,
            config,
            compute_c_kernel,
            update_kernel,
        })
    }

    /// The underlying context (used by harnesses to read the virtual clock).
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Process one subset, updating the host-resident reconstruction image.
    pub fn process_subset(&self, events: &[Event], f: &mut [f32]) -> OclResult<()> {
        let nvox = self.volume.voxel_count();
        // LOC: host-single begin
        // LOC: multi-gpu begin
        // Split the subset into per-GPU sub-subsets with explicit offset and
        // length arithmetic (PSD for step 1).
        let per_gpu = events.len().div_ceil(self.num_gpus.max(1));
        let mut chunks: Vec<&[Event]> = Vec::with_capacity(self.num_gpus);
        for gpu in 0..self.num_gpus {
            let start = (gpu * per_gpu).min(events.len());
            let end = ((gpu + 1) * per_gpu).min(events.len());
            chunks.push(&events[start..end]);
        }
        // LOC: multi-gpu end

        // Upload: one sub-subset, a full copy of f and a zeroed error image
        // per GPU; then launch step 1 on every GPU.
        let mut event_buffers: Vec<Option<Buffer>> = Vec::with_capacity(self.num_gpus);
        let mut f_buffers: Vec<Buffer> = Vec::with_capacity(self.num_gpus);
        let mut c_buffers: Vec<Buffer> = Vec::with_capacity(self.num_gpus);
        for gpu in 0..self.num_gpus {
            let queue = &self.queues[gpu];
            let f_buf = self.context.create_buffer::<f32>(gpu, nvox)?;
            queue.enqueue_write_buffer(&f_buf, f)?;
            let c_buf = self.context.create_buffer::<f32>(gpu, nvox)?;
            queue.enqueue_write_buffer(&c_buf, &vec![0.0f32; nvox])?;
            let ev_buf = if chunks[gpu].is_empty() {
                None
            } else {
                let b = self
                    .context
                    .create_buffer::<Event>(gpu, chunks[gpu].len())?;
                queue.enqueue_write_buffer(&b, chunks[gpu])?;
                Some(b)
            };
            event_buffers.push(ev_buf);
            f_buffers.push(f_buf);
            c_buffers.push(c_buf);
        }
        for gpu in 0..self.num_gpus {
            let Some(ev_buf) = &event_buffers[gpu] else {
                continue;
            };
            self.queues[gpu].enqueue_kernel(
                &self.compute_c_kernel,
                chunks[gpu].len(),
                &[
                    KernelArg::Buffer(ev_buf.clone()),
                    KernelArg::Buffer(f_buffers[gpu].clone()),
                    KernelArg::Buffer(c_buffers[gpu].clone()),
                ],
            )?;
        }

        // LOC: multi-gpu begin
        // Download every GPU's error image and merge them on the host by
        // element-wise addition.
        let mut c_merged = vec![0.0f32; nvox];
        let mut c_part = vec![0.0f32; nvox];
        for gpu in 0..self.num_gpus {
            self.queues[gpu].enqueue_read_buffer(&c_buffers[gpu], &mut c_part)?;
            for (acc, x) in c_merged.iter_mut().zip(&c_part) {
                *acc += *x;
            }
        }
        // Partition the images for step 2 (ISD): compute per-GPU voxel
        // ranges, release the step-1 buffers and upload the parts.
        let per_gpu_vox = nvox.div_ceil(self.num_gpus.max(1));
        let mut ranges = Vec::with_capacity(self.num_gpus);
        for gpu in 0..self.num_gpus {
            let start = (gpu * per_gpu_vox).min(nvox);
            let end = ((gpu + 1) * per_gpu_vox).min(nvox);
            ranges.push(start..end);
        }
        for gpu in 0..self.num_gpus {
            if let Some(b) = &event_buffers[gpu] {
                self.context.release_buffer(b)?;
            }
            self.context.release_buffer(&f_buffers[gpu])?;
            self.context.release_buffer(&c_buffers[gpu])?;
        }
        let mut f_part_buffers = Vec::with_capacity(self.num_gpus);
        let mut c_part_buffers = Vec::with_capacity(self.num_gpus);
        for gpu in 0..self.num_gpus {
            let range = ranges[gpu].clone();
            if range.is_empty() {
                f_part_buffers.push(None);
                c_part_buffers.push(None);
                continue;
            }
            let queue = &self.queues[gpu];
            let f_buf = self.context.create_buffer::<f32>(gpu, range.len())?;
            queue.enqueue_write_buffer(&f_buf, &f[range.clone()])?;
            let c_buf = self.context.create_buffer::<f32>(gpu, range.len())?;
            queue.enqueue_write_buffer(&c_buf, &c_merged[range])?;
            f_part_buffers.push(Some(f_buf));
            c_part_buffers.push(Some(c_buf));
        }
        // LOC: multi-gpu end

        // Step 2: update each image part, then download and merge into f.
        for gpu in 0..self.num_gpus {
            let (Some(f_buf), Some(c_buf)) = (&f_part_buffers[gpu], &c_part_buffers[gpu]) else {
                continue;
            };
            self.queues[gpu].enqueue_kernel(
                &self.update_kernel,
                ranges[gpu].len(),
                &[
                    KernelArg::Buffer(f_buf.clone()),
                    KernelArg::Buffer(c_buf.clone()),
                ],
            )?;
        }
        // LOC: multi-gpu begin
        for gpu in 0..self.num_gpus {
            let Some(f_buf) = &f_part_buffers[gpu] else {
                continue;
            };
            let range = ranges[gpu].clone();
            self.queues[gpu].enqueue_read_buffer(f_buf, &mut f[range])?;
            self.context.release_buffer(f_buf)?;
            if let Some(c_buf) = &c_part_buffers[gpu] {
                self.context.release_buffer(c_buf)?;
            }
        }
        for queue in &self.queues {
            queue.finish();
        }
        // LOC: multi-gpu end
        // LOC: host-single end
        Ok(())
    }

    /// Run a reconstruction over pre-generated subsets.
    pub fn reconstruct_subsets(&self, subsets: &[Vec<Event>]) -> OclResult<Vec<f32>> {
        let mut f = vec![1.0f32; self.volume.voxel_count()];
        for subset in subsets {
            self.process_subset(subset, &mut f)?;
        }
        Ok(f)
    }

    /// Process one subset and return its virtual runtime in seconds.
    pub fn time_one_subset(&self, events: &[Event]) -> OclResult<(f64, Vec<f32>)> {
        let mut f = vec![1.0f32; self.volume.voxel_count()];
        let t0 = self.context.host_now();
        self.process_subset(events, &mut f)?;
        let t1 = self.context.host_now();
        Ok(((t1 - t0).as_secs_f64(), f))
    }

    /// The reconstruction configuration.
    pub fn config(&self) -> &ReconstructionConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    #[test]
    fn opencl_style_reconstruction_matches_sequential() {
        let config = ReconstructionConfig::test_scale();
        let subsets = sequential::generate_subsets(&config);
        let mut reference = vec![1.0f32; config.volume.voxel_count()];
        for s in &subsets {
            sequential::process_subset(&config, s, &mut reference);
        }
        for gpus in [1usize, 2, 4] {
            let osem = OpenClOsem::new(gpus, config.clone()).unwrap();
            let image = osem.reconstruct_subsets(&subsets).unwrap();
            for (i, (a, b)) in image.iter().zip(&reference).enumerate() {
                let denom = a.abs().max(b.abs()).max(1e-3);
                assert!(
                    (a - b).abs() / denom < 1e-3,
                    "gpus {gpus}, voxel {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn requesting_more_gpus_than_available_fails() {
        let config = ReconstructionConfig::test_scale();
        assert!(OpenClOsem::new(9, config).is_err());
    }

    #[test]
    fn device_memory_is_released_after_each_subset() {
        let config = ReconstructionConfig::test_scale();
        let subsets = sequential::generate_subsets(&config);
        let osem = OpenClOsem::new(2, config.clone()).unwrap();
        let mut f = vec![1.0f32; config.volume.voxel_count()];
        osem.process_subset(&subsets[0], &mut f).unwrap();
        for d in 0..2 {
            assert_eq!(osem.context().device(d).unwrap().allocated_bytes(), 0);
        }
    }
}
