//! # osem — the list-mode OSEM application study (paper, Section IV)
//!
//! List-mode Ordered Subset Expectation Maximization (list-mode OSEM) is the
//! paper's real-world case study: a PET image-reconstruction algorithm that
//! iterates over subsets of recorded events, computing an error image from
//! line-of-response paths (step 1) and multiplicatively updating the
//! reconstruction image (step 2).
//!
//! This crate contains everything the study needs:
//!
//! * [`geometry`], [`events`], [`siddon`] — the reconstruction volume,
//!   synthetic list-mode events (substituting the unavailable quadHIDAC data
//!   set) and the ray tracer that computes intersection paths,
//! * [`sequential`] — the reference implementation (Listing 2),
//! * [`skelcl_impl`] — the SkelCL host program (Listing 3),
//! * [`opencl_impl`] / [`cuda_impl`] — hand-written low-level host programs
//!   used as baselines,
//! * [`kernels`] — the device code shared by all three (as in the paper,
//!   where the kernel code is essentially identical),
//! * [`loc`] — the lines-of-code accounting behind Figure 4a.

pub mod config;
pub mod cuda_impl;
pub mod events;
pub mod geometry;
pub mod kernels;
pub mod loc;
pub mod opencl_impl;
pub mod sequential;
pub mod siddon;
pub mod skelcl_impl;

pub use config::ReconstructionConfig;
pub use cuda_impl::CudaOsem;
pub use events::{Event, EventGenerator, Phantom};
pub use geometry::Volume;
pub use loc::{figure_4a, loc_of, Implementation, LocBreakdown};
pub use opencl_impl::OpenClOsem;
pub use siddon::{compute_path, PathElement};
pub use skelcl_impl::{PhaseTiming, SkelclOsem};

/// Compare two reconstruction images with a relative tolerance; returns the
/// maximum relative difference. Used by tests and harnesses to confirm that
/// every implementation computes the same image.
pub fn max_relative_difference(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "images must have the same size");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-3))
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_relative_difference_behaviour() {
        assert_eq!(max_relative_difference(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let d = max_relative_difference(&[1.0, 2.0], &[1.0, 2.2]);
        assert!(d > 0.09 && d < 0.1);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_image_sizes_panic() {
        max_relative_difference(&[1.0], &[1.0, 2.0]);
    }
}
