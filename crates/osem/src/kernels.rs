//! The per-event and per-voxel computations shared by every parallel
//! implementation (the "GPU kernel" code of the paper's Figure 4a).
//!
//! In the paper, the kernel code of the CUDA, OpenCL and SkelCL versions is
//! essentially identical (about 200 lines each) — only the host programs
//! differ. This module is that shared kernel code: the SkelCL, OpenCL-style
//! and CUDA-style host programs all call into these functions from their
//! device kernels, so the lines-of-code comparison of Figure 4a measures the
//! host-side programming effort, exactly as in the paper.

use crate::events::Event;
use crate::geometry::Volume;
use crate::siddon::{compute_path_into, PathElement};

/// Per-event cost hint for the virtual-time model: dominated by the Siddon
/// traversal (a few operations per crossed voxel) and the two passes over the
/// path. The average path length is roughly the voxel count along one axis.
pub fn step1_cost(volume: &Volume) -> oclsim::CostHint {
    let avg_path = (volume.nx + volume.ny + volume.nz) as f64 / 1.5;
    oclsim::CostHint::new(20.0 * avg_path, 12.0 * avg_path)
}

/// Per-voxel cost hint of the image update (step 2).
pub fn step2_cost() -> oclsim::CostHint {
    oclsim::CostHint::new(2.0, 12.0)
}

/// Step 1, one event (lines 5–13 of Listing 2): compute the LOR path, the
/// forward projection `fp` over the current reconstruction image `f`, and
/// accumulate `len / fp` into the error image `c`.
///
/// `path` is a scratch buffer reused across events.
pub fn process_event(
    volume: &Volume,
    event: &Event,
    f: &[f32],
    c: &mut [f32],
    path: &mut Vec<PathElement>,
) {
    compute_path_into(volume, event, path);
    if path.is_empty() {
        return;
    }
    let mut fp = 0.0f32;
    for el in path.iter() {
        fp += f[el.coord] * el.len;
    }
    if fp <= 0.0 {
        return;
    }
    for el in path.iter() {
        c[el.coord] += el.len / fp;
    }
}

/// Step 2, one voxel (lines 15–17 of Listing 2): multiplicative update of the
/// reconstruction image.
pub fn update_voxel(f: f32, c: f32) -> f32 {
    if c > 0.0 {
        f * c
    } else {
        f
    }
}

/// Step 1 over a slice of events (the body of the per-device kernel used by
/// the low-level host programs).
pub fn compute_error_image(volume: &Volume, events: &[Event], f: &[f32], c: &mut [f32]) {
    let mut path = Vec::with_capacity(volume.nx + volume.ny + volume.nz);
    for event in events {
        process_event(volume, event, f, c, &mut path);
    }
}

/// Step 2 over a voxel range (the body of the per-device update kernel).
pub fn update_image(f: &mut [f32], c: &[f32]) {
    for (fv, cv) in f.iter_mut().zip(c) {
        *fv = update_voxel(*fv, *cv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventGenerator, Phantom};

    #[test]
    fn process_event_conserves_unit_backprojection() {
        // Σ_m len_m / fp with fp = Σ_m f*len_m and f ≡ 1 gives exactly 1.
        let vol = Volume::new(8, 8, 8, 1.0);
        let f = vec![1.0f32; vol.voxel_count()];
        let mut c = vec![0.0f32; vol.voxel_count()];
        let e = vol.extent();
        let event = Event {
            p1: [-e[0], 0.1, 0.1],
            p2: [e[0], 0.1, 0.1],
        };
        let mut path = Vec::new();
        process_event(&vol, &event, &f, &mut c, &mut path);
        let total: f32 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "total = {total}");
    }

    #[test]
    fn events_missing_the_volume_do_not_touch_the_error_image() {
        let vol = Volume::new(8, 8, 8, 1.0);
        let f = vec![1.0f32; vol.voxel_count()];
        let mut c = vec![0.0f32; vol.voxel_count()];
        let event = Event {
            p1: [100.0, 100.0, 100.0],
            p2: [200.0, 200.0, 200.0],
        };
        let mut path = Vec::new();
        process_event(&vol, &event, &f, &mut c, &mut path);
        assert!(c.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn update_voxel_only_scales_positive_corrections() {
        assert_eq!(update_voxel(2.0, 1.5), 3.0);
        assert_eq!(update_voxel(2.0, 0.0), 2.0);
        assert_eq!(update_voxel(2.0, -1.0), 2.0);
    }

    #[test]
    fn batch_helpers_match_per_element_functions() {
        let vol = Volume::test_scale();
        let ph = Phantom::default_for(&vol);
        let events = EventGenerator::new(vol, ph, 3).generate_subset(100);
        let f = vec![1.0f32; vol.voxel_count()];

        let mut c_batch = vec![0.0f32; vol.voxel_count()];
        compute_error_image(&vol, &events, &f, &mut c_batch);

        let mut c_single = vec![0.0f32; vol.voxel_count()];
        let mut path = Vec::new();
        for e in &events {
            process_event(&vol, e, &f, &mut c_single, &mut path);
        }
        assert_eq!(c_batch, c_single);

        let mut f1 = f.clone();
        update_image(&mut f1, &c_batch);
        let f2: Vec<f32> = f
            .iter()
            .zip(&c_batch)
            .map(|(a, b)| update_voxel(*a, *b))
            .collect();
        assert_eq!(f1, f2);
    }

    #[test]
    fn cost_hints_scale_with_volume() {
        let small = step1_cost(&Volume::new(8, 8, 8, 1.0));
        let large = step1_cost(&Volume::paper_scale());
        assert!(large.flops_per_item > small.flops_per_item);
        assert!(step2_cost().flops_per_item > 0.0);
    }
}
