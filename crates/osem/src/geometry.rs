//! Reconstruction volume geometry.

/// The reconstruction volume: a regular voxel grid centred at the origin.
///
/// The paper reconstructs an image of 150×150×280 voxels; tests and examples
/// use smaller grids with the same code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Volume {
    /// Number of voxels along x.
    pub nx: usize,
    /// Number of voxels along y.
    pub ny: usize,
    /// Number of voxels along z.
    pub nz: usize,
    /// Edge length of a voxel in millimetres (cubic voxels).
    pub voxel_size: f32,
}

impl Volume {
    /// Create a volume of `nx × ny × nz` voxels with the given voxel size.
    pub fn new(nx: usize, ny: usize, nz: usize, voxel_size: f32) -> Volume {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "volume dimensions must be positive"
        );
        assert!(voxel_size > 0.0, "voxel size must be positive");
        Volume {
            nx,
            ny,
            nz,
            voxel_size,
        }
    }

    /// The paper's full-scale volume (150 × 150 × 280 voxels).
    pub fn paper_scale() -> Volume {
        Volume::new(150, 150, 280, 1.0)
    }

    /// A small volume suitable for unit tests.
    pub fn test_scale() -> Volume {
        Volume::new(16, 16, 24, 2.0)
    }

    /// Total number of voxels.
    pub fn voxel_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Physical extent along each axis in millimetres.
    pub fn extent(&self) -> [f32; 3] {
        [
            self.nx as f32 * self.voxel_size,
            self.ny as f32 * self.voxel_size,
            self.nz as f32 * self.voxel_size,
        ]
    }

    /// Lower corner of the volume (the grid is centred at the origin).
    pub fn min_corner(&self) -> [f32; 3] {
        let e = self.extent();
        [-e[0] / 2.0, -e[1] / 2.0, -e[2] / 2.0]
    }

    /// Upper corner of the volume.
    pub fn max_corner(&self) -> [f32; 3] {
        let e = self.extent();
        [e[0] / 2.0, e[1] / 2.0, e[2] / 2.0]
    }

    /// Linear voxel index of integer coordinates (x fastest).
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// Integer coordinates of a linear index.
    pub fn coords(&self, index: usize) -> (usize, usize, usize) {
        let x = index % self.nx;
        let y = (index / self.nx) % self.ny;
        let z = index / (self.nx * self.ny);
        (x, y, z)
    }

    /// Whether a point (in millimetres) lies inside the volume.
    pub fn contains(&self, p: [f32; 3]) -> bool {
        let lo = self.min_corner();
        let hi = self.max_corner();
        (0..3).all(|i| p[i] >= lo[i] && p[i] <= hi[i])
    }

    /// Centre of the voxel with the given integer coordinates.
    pub fn voxel_center(&self, x: usize, y: usize, z: usize) -> [f32; 3] {
        let lo = self.min_corner();
        [
            lo[0] + (x as f32 + 0.5) * self.voxel_size,
            lo[1] + (y as f32 + 0.5) * self.voxel_size,
            lo[2] + (z as f32 + 0.5) * self.voxel_size,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let v = Volume::new(5, 7, 3, 1.0);
        assert_eq!(v.voxel_count(), 105);
        for idx in 0..v.voxel_count() {
            let (x, y, z) = v.coords(idx);
            assert_eq!(v.index(x, y, z), idx);
        }
    }

    #[test]
    fn geometry_is_centred() {
        let v = Volume::new(10, 10, 10, 2.0);
        assert_eq!(v.extent(), [20.0, 20.0, 20.0]);
        assert_eq!(v.min_corner(), [-10.0, -10.0, -10.0]);
        assert_eq!(v.max_corner(), [10.0, 10.0, 10.0]);
        assert!(v.contains([0.0, 0.0, 0.0]));
        assert!(v.contains([9.9, -9.9, 5.0]));
        assert!(!v.contains([10.5, 0.0, 0.0]));
    }

    #[test]
    fn voxel_centers_are_inside() {
        let v = Volume::test_scale();
        let c = v.voxel_center(0, 0, 0);
        assert!(v.contains(c));
        let c = v.voxel_center(v.nx - 1, v.ny - 1, v.nz - 1);
        assert!(v.contains(c));
    }

    #[test]
    fn paper_scale_matches_the_evaluation_volume() {
        let v = Volume::paper_scale();
        assert_eq!((v.nx, v.ny, v.nz), (150, 150, 280));
        assert_eq!(v.voxel_count(), 150 * 150 * 280);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_are_rejected() {
        Volume::new(0, 4, 4, 1.0);
    }
}
