//! Synthetic list-mode events.
//!
//! The paper reconstructs a real quadHIDAC PET data set of about 10⁸ events.
//! That data set is not available, so this module generates synthetic
//! list-mode events: lines of response (LORs) through the volume whose
//! density follows a simple activity phantom. The algorithmic structure that
//! the paper evaluates — per-event path computation, scattered accumulation
//! into the error image, the subset loop — is identical; only the source of
//! the events differs (see DESIGN.md, substitutions).

use oclsim::Pod;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geometry::Volume;

/// One list-mode event: a line of response between two detector points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Event {
    /// First endpoint of the LOR (millimetres).
    pub p1: [f32; 3],
    /// Second endpoint of the LOR (millimetres).
    pub p2: [f32; 3],
}

// SAFETY: `Event` is a plain `#[repr(C)]` aggregate of `f32` fields with no
// padding (24 bytes), no references and no interior mutability, and any byte
// pattern produced by a valid `Event` reads back as the same `Event`.
unsafe impl Pod for Event {}

/// A simple activity phantom: a set of spherical hot regions inside an
/// elliptical warm background, loosely modelled on the NEMA-style phantoms
/// used to validate PET reconstructions.
#[derive(Debug, Clone, PartialEq)]
pub struct Phantom {
    /// Background activity (relative units).
    pub background: f32,
    /// Hot spheres: centre (mm), radius (mm), activity.
    pub spheres: Vec<([f32; 3], f32, f32)>,
}

impl Phantom {
    /// The default phantom: warm background with three hot spheres of
    /// different sizes.
    pub fn default_for(volume: &Volume) -> Phantom {
        let e = volume.extent();
        let r = e[0].min(e[1]).min(e[2]);
        Phantom {
            background: 1.0,
            spheres: vec![
                ([0.0, 0.0, 0.0], r * 0.15, 8.0),
                ([e[0] * 0.2, 0.0, e[2] * 0.15], r * 0.10, 12.0),
                ([-e[0] * 0.15, -e[1] * 0.2, -e[2] * 0.1], r * 0.08, 16.0),
            ],
        }
    }

    /// Activity at a point.
    pub fn activity(&self, p: [f32; 3]) -> f32 {
        let mut a = self.background;
        for (c, r, act) in &self.spheres {
            let d2 = (0..3).map(|i| (p[i] - c[i]) * (p[i] - c[i])).sum::<f32>();
            if d2 <= r * r {
                a += act;
            }
        }
        a
    }

    /// Reference image of the phantom sampled at voxel centres (used to
    /// check that reconstructions recover the hot regions).
    pub fn reference_image(&self, volume: &Volume) -> Vec<f32> {
        let mut img = Vec::with_capacity(volume.voxel_count());
        for z in 0..volume.nz {
            for y in 0..volume.ny {
                for x in 0..volume.nx {
                    img.push(self.activity(volume.voxel_center(x, y, z)));
                }
            }
        }
        img
    }
}

/// Generator of synthetic list-mode events.
#[derive(Debug)]
pub struct EventGenerator {
    volume: Volume,
    phantom: Phantom,
    rng: StdRng,
}

impl EventGenerator {
    /// Create a generator with a fixed seed (experiments are reproducible).
    pub fn new(volume: Volume, phantom: Phantom, seed: u64) -> EventGenerator {
        EventGenerator {
            volume,
            phantom,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The volume events are generated for.
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    fn random_point_in_volume(&mut self) -> [f32; 3] {
        let lo = self.volume.min_corner();
        let hi = self.volume.max_corner();
        [
            self.rng.gen_range(lo[0]..hi[0]),
            self.rng.gen_range(lo[1]..hi[1]),
            self.rng.gen_range(lo[2]..hi[2]),
        ]
    }

    /// Generate one event: an emission point is sampled from the phantom
    /// activity (by rejection), a random direction is chosen, and the LOR
    /// endpoints are placed outside the volume along that direction.
    pub fn generate_event(&mut self) -> Event {
        // Rejection-sample an emission point proportional to activity.
        let max_activity: f32 =
            self.phantom.background + self.phantom.spheres.iter().map(|s| s.2).sum::<f32>();
        let emission = loop {
            let p = self.random_point_in_volume();
            let a = self.phantom.activity(p);
            if self.rng.gen_range(0.0..max_activity) < a {
                break p;
            }
        };
        // Random direction (uniform on the sphere via normal-ish sampling).
        let dir = loop {
            let d = [
                self.rng.gen_range(-1.0f32..1.0),
                self.rng.gen_range(-1.0f32..1.0),
                self.rng.gen_range(-1.0f32..1.0),
            ];
            let n2: f32 = d.iter().map(|x| x * x).sum();
            if n2 > 1e-4 && n2 <= 1.0 {
                let n = n2.sqrt();
                break [d[0] / n, d[1] / n, d[2] / n];
            }
        };
        // Place the endpoints just outside the volume along the direction.
        let e = self.volume.extent();
        let reach = e[0] + e[1] + e[2]; // longer than any chord
        Event {
            p1: [
                emission[0] + dir[0] * reach,
                emission[1] + dir[1] * reach,
                emission[2] + dir[2] * reach,
            ],
            p2: [
                emission[0] - dir[0] * reach,
                emission[1] - dir[1] * reach,
                emission[2] - dir[2] * reach,
            ],
        }
    }

    /// Generate a subset of `n` events (the unit the OSEM algorithm iterates
    /// over).
    pub fn generate_subset(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.generate_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_pod_sized_24_bytes() {
        assert_eq!(std::mem::size_of::<Event>(), 24);
        assert_eq!(std::mem::align_of::<Event>(), 4);
    }

    #[test]
    fn phantom_activity_is_higher_in_spheres() {
        let vol = Volume::test_scale();
        let ph = Phantom::default_for(&vol);
        assert!(ph.activity([0.0, 0.0, 0.0]) > ph.activity(vol.max_corner()));
        let img = ph.reference_image(&vol);
        assert_eq!(img.len(), vol.voxel_count());
        assert!(img.iter().all(|a| *a >= ph.background));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let vol = Volume::test_scale();
        let ph = Phantom::default_for(&vol);
        let a = EventGenerator::new(vol, ph.clone(), 42).generate_subset(50);
        let b = EventGenerator::new(vol, ph.clone(), 42).generate_subset(50);
        let c = EventGenerator::new(vol, ph, 43).generate_subset(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_lors_straddle_the_volume() {
        let vol = Volume::test_scale();
        let ph = Phantom::default_for(&vol);
        let events = EventGenerator::new(vol, ph, 7).generate_subset(100);
        for ev in &events {
            // Endpoints are outside, but the segment passes through the
            // volume (its midpoint region was sampled inside).
            assert!(!vol.contains(ev.p1) || !vol.contains(ev.p2));
            let mid = [
                (ev.p1[0] + ev.p2[0]) / 2.0,
                (ev.p1[1] + ev.p2[1]) / 2.0,
                (ev.p1[2] + ev.p2[2]) / 2.0,
            ];
            assert!(vol.contains(mid));
        }
    }
}
