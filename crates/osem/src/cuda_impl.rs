//! The CUDA-style host program for list-mode OSEM.
//!
//! CUDA's host API is more compact than OpenCL's: there is no platform /
//! device-selection ceremony and no runtime kernel compilation (kernels are
//! compiled offline by `nvcc`). This implementation therefore goes straight
//! from "number of GPUs" to contexts and launches, and registers its kernels
//! as natively-compiled code. It still has to do all the multi-GPU data
//! management by hand — splitting the events, copying the image to every
//! GPU, merging the error images, partitioning for step 2 — which is what
//! the paper counts as the extra multi-GPU lines of the CUDA version.
//!
//! Device-code (`crate::kernels`) is shared with the other implementations.

use oclsim::{ApiModel, Buffer, CommandQueue, Context, KernelArg, NativeKernelDef, Program};

use crate::config::ReconstructionConfig;
use crate::events::Event;
use crate::geometry::Volume;
use crate::kernels::{self, step1_cost, step2_cost};
use crate::opencl_impl::OclResult;

/// The CUDA-style implementation of list-mode OSEM.
pub struct CudaOsem {
    context: Context,
    queues: Vec<CommandQueue>,
    num_gpus: usize,
    volume: Volume,
    config: ReconstructionConfig,
    compute_c_kernel: oclsim::Kernel,
    update_kernel: oclsim::Kernel,
}

impl CudaOsem {
    /// Set up the CUDA-style reconstruction on `num_gpus` GPUs.
    pub fn new(num_gpus: usize, config: ReconstructionConfig) -> OclResult<CudaOsem> {
        // LOC: host-single begin
        // cudaSetDevice-style initialisation: one context over the GPUs, one
        // stream (queue) per GPU, under the CUDA cost model.
        let context = Context::with_gpus_api(num_gpus, ApiModel::cuda());
        let mut queues = Vec::with_capacity(num_gpus);
        for device in 0..context.device_count() {
            queues.push(context.queue(device)?);
        }
        // Kernels are compiled offline; register the (shared) kernel bodies.
        let volume = config.volume;
        let step1 = step1_cost(&volume);
        let compute_c_def = NativeKernelDef::new("computeC", step1, move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (events_view, rest) = views.split_first_mut().ok_or("missing events argument")?;
            let (f_view, rest) = rest.split_first_mut().ok_or("missing f argument")?;
            let (c_view, _) = rest.split_first_mut().ok_or("missing c argument")?;
            let events = events_view
                .as_slice::<Event>()
                .ok_or("events must be a buffer")?;
            let f = f_view.as_slice::<f32>().ok_or("f must be a buffer")?;
            let c = c_view.as_slice_mut::<f32>().ok_or("c must be a buffer")?;
            kernels::compute_error_image(&volume, &events[..n], f, c);
            Ok(())
        });
        let update_def = NativeKernelDef::new("updateImage", step2_cost(), move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (f_view, rest) = views.split_first_mut().ok_or("missing f argument")?;
            let (c_view, _) = rest.split_first_mut().ok_or("missing c argument")?;
            let f = f_view.as_slice_mut::<f32>().ok_or("f must be a buffer")?;
            let c = c_view.as_slice::<f32>().ok_or("c must be a buffer")?;
            kernels::update_image(&mut f[..n], &c[..n]);
            Ok(())
        });
        let program = Program::from_native([compute_c_def, update_def]);
        let compute_c_kernel = program.kernel("computeC")?;
        let update_kernel = program.kernel("updateImage")?;
        // LOC: host-single end
        Ok(CudaOsem {
            context,
            queues,
            num_gpus,
            volume,
            config,
            compute_c_kernel,
            update_kernel,
        })
    }

    /// The underlying context (used by harnesses to read the virtual clock).
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Process one subset, updating the host-resident reconstruction image.
    pub fn process_subset(&self, events: &[Event], f: &mut [f32]) -> OclResult<()> {
        let nvox = self.volume.voxel_count();
        // LOC: host-single begin
        // LOC: multi-gpu begin
        // Split events across GPUs (cudaMemcpyAsync per device in real CUDA).
        let per_gpu = events.len().div_ceil(self.num_gpus.max(1));
        let chunks: Vec<&[Event]> = (0..self.num_gpus)
            .map(|g| {
                let start = (g * per_gpu).min(events.len());
                let end = ((g + 1) * per_gpu).min(events.len());
                &events[start..end]
            })
            .collect();
        // LOC: multi-gpu end

        // Upload and launch step 1 on every GPU.
        let mut buffers: Vec<(Option<Buffer>, Buffer, Buffer)> = Vec::with_capacity(self.num_gpus);
        for gpu in 0..self.num_gpus {
            let queue = &self.queues[gpu];
            let f_buf = self.context.create_buffer::<f32>(gpu, nvox)?;
            queue.enqueue_write_buffer(&f_buf, f)?;
            let c_buf = self.context.create_buffer::<f32>(gpu, nvox)?;
            queue.enqueue_write_buffer(&c_buf, &vec![0.0f32; nvox])?;
            let ev_buf = if chunks[gpu].is_empty() {
                None
            } else {
                let b = self
                    .context
                    .create_buffer::<Event>(gpu, chunks[gpu].len())?;
                queue.enqueue_write_buffer(&b, chunks[gpu])?;
                Some(b)
            };
            if let Some(ev) = &ev_buf {
                queue.enqueue_kernel(
                    &self.compute_c_kernel,
                    chunks[gpu].len(),
                    &[
                        KernelArg::Buffer(ev.clone()),
                        KernelArg::Buffer(f_buf.clone()),
                        KernelArg::Buffer(c_buf.clone()),
                    ],
                )?;
            }
            buffers.push((ev_buf, f_buf, c_buf));
        }

        // LOC: multi-gpu begin
        // Merge the error images on the host, repartition for step 2.
        let mut c_merged = vec![0.0f32; nvox];
        let mut c_part = vec![0.0f32; nvox];
        for gpu in 0..self.num_gpus {
            self.queues[gpu].enqueue_read_buffer(&buffers[gpu].2, &mut c_part)?;
            for (acc, x) in c_merged.iter_mut().zip(&c_part) {
                *acc += *x;
            }
        }
        for (ev, f_buf, c_buf) in &buffers {
            if let Some(ev) = ev {
                self.context.release_buffer(ev)?;
            }
            self.context.release_buffer(f_buf)?;
            self.context.release_buffer(c_buf)?;
        }
        let per_gpu_vox = nvox.div_ceil(self.num_gpus.max(1));
        let ranges: Vec<std::ops::Range<usize>> = (0..self.num_gpus)
            .map(|g| (g * per_gpu_vox).min(nvox)..((g + 1) * per_gpu_vox).min(nvox))
            .collect();
        // LOC: multi-gpu end

        // Step 2: per-GPU update of the image parts, then gather.
        let mut part_buffers = Vec::with_capacity(self.num_gpus);
        for gpu in 0..self.num_gpus {
            let range = ranges[gpu].clone();
            if range.is_empty() {
                part_buffers.push(None);
                continue;
            }
            let queue = &self.queues[gpu];
            let f_buf = self.context.create_buffer::<f32>(gpu, range.len())?;
            queue.enqueue_write_buffer(&f_buf, &f[range.clone()])?;
            let c_buf = self.context.create_buffer::<f32>(gpu, range.len())?;
            queue.enqueue_write_buffer(&c_buf, &c_merged[range.clone()])?;
            queue.enqueue_kernel(
                &self.update_kernel,
                range.len(),
                &[
                    KernelArg::Buffer(f_buf.clone()),
                    KernelArg::Buffer(c_buf.clone()),
                ],
            )?;
            part_buffers.push(Some((f_buf, c_buf)));
        }
        // LOC: multi-gpu begin
        for gpu in 0..self.num_gpus {
            let Some((f_buf, c_buf)) = &part_buffers[gpu] else {
                continue;
            };
            let range = ranges[gpu].clone();
            self.queues[gpu].enqueue_read_buffer(f_buf, &mut f[range])?;
            self.context.release_buffer(f_buf)?;
            self.context.release_buffer(c_buf)?;
        }
        for queue in &self.queues {
            queue.finish();
        }
        // LOC: multi-gpu end
        // LOC: host-single end
        Ok(())
    }

    /// Run a reconstruction over pre-generated subsets.
    pub fn reconstruct_subsets(&self, subsets: &[Vec<Event>]) -> OclResult<Vec<f32>> {
        let mut f = vec![1.0f32; self.volume.voxel_count()];
        for subset in subsets {
            self.process_subset(subset, &mut f)?;
        }
        Ok(f)
    }

    /// Process one subset and return its virtual runtime in seconds.
    pub fn time_one_subset(&self, events: &[Event]) -> OclResult<(f64, Vec<f32>)> {
        let mut f = vec![1.0f32; self.volume.voxel_count()];
        let t0 = self.context.host_now();
        self.process_subset(events, &mut f)?;
        let t1 = self.context.host_now();
        Ok(((t1 - t0).as_secs_f64(), f))
    }

    /// The reconstruction configuration.
    pub fn config(&self) -> &ReconstructionConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    #[test]
    fn cuda_style_reconstruction_matches_sequential() {
        let config = ReconstructionConfig::test_scale();
        let subsets = sequential::generate_subsets(&config);
        let mut reference = vec![1.0f32; config.volume.voxel_count()];
        for s in &subsets {
            sequential::process_subset(&config, s, &mut reference);
        }
        for gpus in [1usize, 2, 4] {
            let osem = CudaOsem::new(gpus, config.clone()).unwrap();
            let image = osem.reconstruct_subsets(&subsets).unwrap();
            for (i, (a, b)) in image.iter().zip(&reference).enumerate() {
                let denom = a.abs().max(b.abs()).max(1e-3);
                assert!(
                    (a - b).abs() / denom < 1e-3,
                    "gpus {gpus}, voxel {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn cuda_runtime_is_faster_than_opencl_on_the_same_workload() {
        let config = ReconstructionConfig::test_scale().with_events_per_subset(2000);
        let subsets = sequential::generate_subsets(&config);
        let cuda = CudaOsem::new(2, config.clone()).unwrap();
        let opencl = crate::opencl_impl::OpenClOsem::new(2, config).unwrap();
        let (t_cuda, _) = cuda.time_one_subset(&subsets[0]).unwrap();
        let (t_ocl, _) = opencl.time_one_subset(&subsets[0]).unwrap();
        assert!(
            t_cuda < t_ocl,
            "CUDA ({t_cuda:.6} s) must be faster than OpenCL ({t_ocl:.6} s)"
        );
    }
}
