//! Reconstruction configuration shared by all implementations.

use crate::events::Phantom;
use crate::geometry::Volume;

/// Parameters of one list-mode OSEM reconstruction run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructionConfig {
    /// The reconstruction volume.
    pub volume: Volume,
    /// The synthetic activity phantom events are generated from.
    pub phantom: Phantom,
    /// Number of subsets the event stream is split into.
    pub num_subsets: usize,
    /// Number of events per subset.
    pub events_per_subset: usize,
    /// RNG seed for event generation (experiments are reproducible).
    pub seed: u64,
}

impl ReconstructionConfig {
    /// A configuration small enough for unit tests (sub-second sequential).
    pub fn test_scale() -> ReconstructionConfig {
        let volume = Volume::test_scale();
        let phantom = Phantom::default_for(&volume);
        ReconstructionConfig {
            volume,
            phantom,
            num_subsets: 2,
            events_per_subset: 400,
            seed: 20120521, // the paper's conference date
        }
    }

    /// The benchmark configuration used by the Figure 4b harness: a scaled
    /// down version of the paper's 150×150×280 volume / ~10⁶-events-per-
    /// subset workload that preserves the compute-to-transfer ratio.
    pub fn benchmark_scale() -> ReconstructionConfig {
        let volume = Volume::new(64, 64, 96, 1.0);
        let phantom = Phantom::default_for(&volume);
        ReconstructionConfig {
            volume,
            phantom,
            num_subsets: 1,
            events_per_subset: 20_000,
            seed: 20120521,
        }
    }

    /// The paper's full-scale configuration (not run by default — hours of
    /// simulated work — but expressible).
    pub fn paper_scale() -> ReconstructionConfig {
        let volume = Volume::paper_scale();
        let phantom = Phantom::default_for(&volume);
        ReconstructionConfig {
            volume,
            phantom,
            num_subsets: 100,
            events_per_subset: 1_000_000,
            seed: 20120521,
        }
    }

    /// Override the number of events per subset.
    pub fn with_events_per_subset(mut self, events: usize) -> Self {
        self.events_per_subset = events;
        self
    }

    /// Override the number of subsets.
    pub fn with_subsets(mut self, subsets: usize) -> Self {
        self.num_subsets = subsets;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let t = ReconstructionConfig::test_scale();
        let b = ReconstructionConfig::benchmark_scale();
        let p = ReconstructionConfig::paper_scale();
        assert!(t.volume.voxel_count() < b.volume.voxel_count());
        assert!(b.volume.voxel_count() < p.volume.voxel_count());
        assert!(t.events_per_subset < b.events_per_subset);
        assert_eq!(p.volume.voxel_count(), 150 * 150 * 280);
    }

    #[test]
    fn builders_override_fields() {
        let c = ReconstructionConfig::test_scale()
            .with_events_per_subset(7)
            .with_subsets(3);
        assert_eq!(c.events_per_subset, 7);
        assert_eq!(c.num_subsets, 3);
    }
}
