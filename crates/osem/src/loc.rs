//! Lines-of-code accounting for the Figure 4a programming-effort comparison.
//!
//! The paper compares the host-program sizes of the SkelCL, OpenCL and CUDA
//! implementations of list-mode OSEM, for the single-GPU and multi-GPU
//! versions, plus the (similar-sized) GPU kernel code. Here the three host
//! programs live in this crate as real, tested source files; this module
//! counts their lines the same way:
//!
//! * only lines inside `// LOC: host-single begin` / `end` regions count as
//!   host code (imports, struct plumbing and test modules are excluded so
//!   the numbers reflect the algorithmic host code like the paper's),
//! * lines inside `// LOC: multi-gpu begin` / `end` sub-regions are the
//!   *additional* lines required for multi-GPU support,
//! * blank lines and pure comment lines never count.

/// Lines-of-code breakdown of one implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocBreakdown {
    /// Host lines for the single-GPU version (total minus multi-GPU lines).
    pub host_single: usize,
    /// Additional host lines needed for the multi-GPU version.
    pub host_multi_extra: usize,
    /// Lines of device (kernel) code shared by the implementations.
    pub kernel: usize,
}

impl LocBreakdown {
    /// Host lines of the multi-GPU version.
    pub fn host_multi_total(&self) -> usize {
        self.host_single + self.host_multi_extra
    }
}

/// Which implementation to account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implementation {
    /// The SkelCL host program (Listing 3 analogue).
    SkelCl,
    /// The hand-written OpenCL-style host program.
    OpenCl,
    /// The hand-written CUDA-style host program.
    Cuda,
}

impl Implementation {
    /// All implementations in the order of Figure 4a.
    pub fn all() -> [Implementation; 3] {
        [
            Implementation::SkelCl,
            Implementation::OpenCl,
            Implementation::Cuda,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Implementation::SkelCl => "SkelCL",
            Implementation::OpenCl => "OpenCL",
            Implementation::Cuda => "CUDA",
        }
    }

    fn source(&self) -> &'static str {
        match self {
            Implementation::SkelCl => include_str!("skelcl_impl.rs"),
            Implementation::OpenCl => include_str!("opencl_impl.rs"),
            Implementation::Cuda => include_str!("cuda_impl.rs"),
        }
    }
}

/// Kernel (device) code shared by every implementation: the per-event /
/// per-voxel computations and the ray tracer.
fn kernel_loc() -> usize {
    count_code_lines(include_str!("kernels.rs")) + count_code_lines(include_str!("siddon.rs"))
}

fn is_code_line(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty() && !t.starts_with("//") && !t.starts_with("/*") && !t.starts_with('*')
}

/// Count non-blank, non-comment lines of a source string, excluding its test
/// module (everything from `#[cfg(test)]` on).
fn count_code_lines(source: &str) -> usize {
    source
        .lines()
        .take_while(|l| !l.trim_start().starts_with("#[cfg(test)]"))
        .filter(|l| is_code_line(l))
        .count()
}

/// Count host lines within the `LOC:` regions of a source string.
fn count_marked_regions(source: &str) -> (usize, usize) {
    let mut in_host = false;
    let mut in_multi = false;
    let mut host_total = 0usize;
    let mut multi = 0usize;
    for line in source.lines() {
        let t = line.trim();
        if t.starts_with("// LOC: host-single begin") {
            in_host = true;
            continue;
        }
        if t.starts_with("// LOC: host-single end") {
            in_host = false;
            continue;
        }
        if t.starts_with("// LOC: multi-gpu begin") {
            in_multi = true;
            continue;
        }
        if t.starts_with("// LOC: multi-gpu end") {
            in_multi = false;
            continue;
        }
        if !in_host || !is_code_line(line) {
            continue;
        }
        host_total += 1;
        if in_multi {
            multi += 1;
        }
    }
    (host_total, multi)
}

/// Lines-of-code breakdown of an implementation.
pub fn loc_of(implementation: Implementation) -> LocBreakdown {
    let (host_total, multi) = count_marked_regions(implementation.source());
    LocBreakdown {
        host_single: host_total - multi,
        host_multi_extra: multi,
        kernel: kernel_loc(),
    }
}

/// The full Figure 4a data set: one breakdown per implementation.
pub fn figure_4a() -> Vec<(Implementation, LocBreakdown)> {
    Implementation::all()
        .into_iter()
        .map(|i| (i, loc_of(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_line_classification() {
        assert!(is_code_line("let x = 1;"));
        assert!(!is_code_line("   // comment"));
        assert!(!is_code_line(""));
        assert!(!is_code_line("  * doc continuation"));
    }

    #[test]
    fn marked_region_counting() {
        let src = "\
// LOC: host-single begin
let a = 1;
// a comment
// LOC: multi-gpu begin
let b = 2;
let c = 3;
// LOC: multi-gpu end
let d = 4;
// LOC: host-single end
let outside = 5;
";
        let (host, multi) = count_marked_regions(src);
        assert_eq!(host, 4);
        assert_eq!(multi, 2);
    }

    #[test]
    fn figure_4a_reproduces_the_papers_ordering() {
        let rows = figure_4a();
        let get = |i: Implementation| rows.iter().find(|(im, _)| *im == i).unwrap().1;
        let skelcl = get(Implementation::SkelCl);
        let opencl = get(Implementation::OpenCl);
        let cuda = get(Implementation::Cuda);

        // The qualitative claims of Figure 4a / Section IV-B:
        // the SkelCL host program is by far the shortest;
        assert!(skelcl.host_single < cuda.host_single);
        assert!(skelcl.host_single < opencl.host_single);
        // the OpenCL host program is the longest (platform selection and
        // runtime compilation boilerplate);
        assert!(opencl.host_single > cuda.host_single);
        // multi-GPU support costs SkelCL only a handful of extra lines —
        // far fewer than either low-level version;
        assert!(skelcl.host_multi_extra < opencl.host_multi_extra);
        assert!(skelcl.host_multi_extra < cuda.host_multi_extra);
        assert!(skelcl.host_multi_extra <= 12);
        // and the kernel code is identical (shared) across implementations.
        assert_eq!(skelcl.kernel, opencl.kernel);
        assert_eq!(opencl.kernel, cuda.kernel);
        assert!(skelcl.kernel > 50);
    }

    #[test]
    fn multi_total_is_consistent() {
        for (_, loc) in figure_4a() {
            assert_eq!(
                loc.host_multi_total(),
                loc.host_single + loc.host_multi_extra
            );
        }
    }
}
