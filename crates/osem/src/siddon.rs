//! Siddon-style ray tracing: the intersection path of a line of response
//! (LOR) with the voxel grid.
//!
//! `compute_path` corresponds to the `compute_path(events[i])` call in
//! Listing 2 of the paper: for one event it returns the voxels the LOR
//! crosses together with the intersection length in each voxel.

use crate::events::Event;
use crate::geometry::Volume;

/// One element of an intersection path: a voxel and the length of the LOR
/// segment inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathElement {
    /// Linear voxel index.
    pub coord: usize,
    /// Intersection length in millimetres.
    pub len: f32,
}

/// Clip the parametric interval of the segment `p1 + t*(p2-p1)`, `t ∈ [0,1]`,
/// against the volume's bounding box. Returns `None` if the segment misses
/// the volume.
fn clip_to_volume(volume: &Volume, p1: [f32; 3], p2: [f32; 3]) -> Option<(f32, f32)> {
    let lo = volume.min_corner();
    let hi = volume.max_corner();
    let mut t_min = 0.0f32;
    let mut t_max = 1.0f32;
    for axis in 0..3 {
        let d = p2[axis] - p1[axis];
        if d.abs() < 1e-12 {
            if p1[axis] < lo[axis] || p1[axis] > hi[axis] {
                return None;
            }
            continue;
        }
        let mut t0 = (lo[axis] - p1[axis]) / d;
        let mut t1 = (hi[axis] - p1[axis]) / d;
        if t0 > t1 {
            std::mem::swap(&mut t0, &mut t1);
        }
        t_min = t_min.max(t0);
        t_max = t_max.min(t1);
        if t_min >= t_max {
            return None;
        }
    }
    Some((t_min, t_max))
}

/// Compute the intersection path of an event's LOR with the voxel grid,
/// appending the elements to `out` (cleared first). Using an out-parameter
/// lets callers reuse one allocation across the millions of events of a
/// reconstruction.
pub fn compute_path_into(volume: &Volume, event: &Event, out: &mut Vec<PathElement>) {
    out.clear();
    let p1 = event.p1;
    let p2 = event.p2;
    let Some((t_min, t_max)) = clip_to_volume(volume, p1, p2) else {
        return;
    };
    let seg_len = {
        let dx = p2[0] - p1[0];
        let dy = p2[1] - p1[1];
        let dz = p2[2] - p1[2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    };
    if seg_len <= 0.0 {
        return;
    }
    let lo = volume.min_corner();
    let vs = volume.voxel_size;
    let dims = [volume.nx, volume.ny, volume.nz];
    let dir = [p2[0] - p1[0], p2[1] - p1[1], p2[2] - p1[2]];

    // Entry point and integer voxel coordinates.
    let entry = [
        p1[0] + t_min * dir[0],
        p1[1] + t_min * dir[1],
        p1[2] + t_min * dir[2],
    ];
    let mut voxel = [0isize; 3];
    for axis in 0..3 {
        let v = ((entry[axis] - lo[axis]) / vs).floor() as isize;
        voxel[axis] = v.clamp(0, dims[axis] as isize - 1);
    }

    // Parametric step per voxel along each axis, and the parameter of the
    // next grid-plane crossing.
    let mut t_next = [f32::INFINITY; 3];
    let mut dt = [f32::INFINITY; 3];
    let mut step = [0isize; 3];
    for axis in 0..3 {
        if dir[axis].abs() < 1e-12 {
            continue;
        }
        step[axis] = if dir[axis] > 0.0 { 1 } else { -1 };
        dt[axis] = (vs / dir[axis]).abs();
        let next_plane = if dir[axis] > 0.0 {
            lo[axis] + (voxel[axis] + 1) as f32 * vs
        } else {
            lo[axis] + voxel[axis] as f32 * vs
        };
        t_next[axis] = (next_plane - p1[axis]) / dir[axis];
    }

    let mut t = t_min;
    let max_steps = dims[0] + dims[1] + dims[2] + 3;
    for _ in 0..max_steps {
        if t >= t_max {
            break;
        }
        // The axis whose grid plane is crossed next.
        let axis = (0..3)
            .min_by(|&a, &b| t_next[a].partial_cmp(&t_next[b]).expect("finite times"))
            .expect("three axes");
        let t_exit = t_next[axis].min(t_max);
        let len = (t_exit - t) * seg_len;
        if len > 0.0 {
            let coord = volume.index(voxel[0] as usize, voxel[1] as usize, voxel[2] as usize);
            out.push(PathElement { coord, len });
        }
        t = t_exit;
        voxel[axis] += step[axis];
        if voxel[axis] < 0 || voxel[axis] >= dims[axis] as isize {
            break;
        }
        t_next[axis] += dt[axis];
    }
}

/// Convenience wrapper returning a fresh path vector.
pub fn compute_path(volume: &Volume, event: &Event) -> Vec<PathElement> {
    let mut out = Vec::new();
    compute_path_into(volume, event, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_event(volume: &Volume) -> Event {
        // A LOR straight through the volume centre along x.
        let e = volume.extent();
        Event {
            p1: [-e[0], 0.1, 0.1],
            p2: [e[0], 0.1, 0.1],
        }
    }

    #[test]
    fn axis_aligned_ray_crosses_every_x_voxel_once() {
        let vol = Volume::new(8, 8, 8, 1.0);
        let path = compute_path(&vol, &axis_event(&vol));
        assert_eq!(path.len(), 8);
        // Each crossed voxel contributes exactly one voxel edge length.
        for el in &path {
            assert!((el.len - vol.voxel_size).abs() < 1e-4, "len = {}", el.len);
        }
        // All in the same y/z row, consecutive in x.
        let coords: Vec<_> = path.iter().map(|e| vol.coords(e.coord)).collect();
        for w in coords.windows(2) {
            assert_eq!(w[0].1, w[1].1);
            assert_eq!(w[0].2, w[1].2);
            assert_eq!(w[0].0 + 1, w[1].0);
        }
    }

    #[test]
    fn total_path_length_equals_chord_length() {
        let vol = Volume::new(16, 16, 16, 1.5);
        let e = vol.extent();
        // A diagonal LOR through the whole volume.
        let event = Event {
            p1: [-e[0], -e[1], -e[2]],
            p2: [e[0], e[1], e[2]],
        };
        let path = compute_path(&vol, &event);
        let total: f32 = path.iter().map(|p| p.len).sum();
        // The chord across the cube's diagonal has length sqrt(3) * extent.
        let expected = (3.0f32).sqrt() * e[0];
        assert!(
            (total - expected).abs() / expected < 0.01,
            "total {total}, expected {expected}"
        );
    }

    #[test]
    fn rays_missing_the_volume_produce_empty_paths() {
        let vol = Volume::new(8, 8, 8, 1.0);
        let e = vol.extent();
        let event = Event {
            p1: [-e[0], e[1] * 2.0, 0.0],
            p2: [e[0], e[1] * 2.0, 0.0],
        };
        assert!(compute_path(&vol, &event).is_empty());
        // Degenerate (zero-length) events also produce no path.
        let degenerate = Event {
            p1: [0.0, 0.0, 0.0],
            p2: [0.0, 0.0, 0.0],
        };
        assert!(compute_path(&vol, &degenerate).is_empty());
    }

    #[test]
    fn all_path_coords_are_valid_and_lengths_positive() {
        let vol = Volume::test_scale();
        let ph = crate::events::Phantom::default_for(&vol);
        let events = crate::events::EventGenerator::new(vol, ph, 11).generate_subset(200);
        let mut path = Vec::new();
        for ev in &events {
            compute_path_into(&vol, ev, &mut path);
            assert!(!path.is_empty(), "every generated LOR crosses the volume");
            for el in &path {
                assert!(el.coord < vol.voxel_count());
                assert!(el.len > 0.0);
                assert!(el.len <= vol.voxel_size * (3.0f32).sqrt() + 1e-3);
            }
        }
    }

    #[test]
    fn path_buffer_reuse_clears_previous_contents() {
        let vol = Volume::new(4, 4, 4, 1.0);
        let mut path = vec![PathElement {
            coord: 999,
            len: 1.0,
        }];
        compute_path_into(&vol, &axis_event(&vol), &mut path);
        assert!(path.iter().all(|e| e.coord < vol.voxel_count()));
    }
}
