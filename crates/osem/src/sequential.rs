//! The sequential reference implementation of list-mode OSEM (Listing 2 of
//! the paper). All parallel implementations are validated against it.

use crate::config::ReconstructionConfig;
use crate::events::{Event, EventGenerator};
use crate::kernels::{compute_error_image, update_image};

/// Run the full sequential reconstruction: all subsets, one pass.
///
/// Returns the reconstruction image `f`.
pub fn reconstruct(config: &ReconstructionConfig) -> Vec<f32> {
    let mut generator = EventGenerator::new(config.volume, config.phantom.clone(), config.seed);
    let mut f = vec![1.0f32; config.volume.voxel_count()];
    for _ in 0..config.num_subsets {
        // "read subset from file" in Listing 2 — here: generate it.
        let events = generator.generate_subset(config.events_per_subset);
        process_subset(config, &events, &mut f);
    }
    f
}

/// Process one subset: step 1 (error image) and step 2 (image update).
pub fn process_subset(config: &ReconstructionConfig, events: &[Event], f: &mut [f32]) {
    let mut c = vec![0.0f32; config.volume.voxel_count()];
    compute_error_image(&config.volume, events, f, &mut c);
    update_image(f, &c);
}

/// Generate the subsets of a reconstruction up front (used by the parallel
/// implementations and benchmarks so every implementation processes exactly
/// the same events).
pub fn generate_subsets(config: &ReconstructionConfig) -> Vec<Vec<Event>> {
    let mut generator = EventGenerator::new(config.volume, config.phantom.clone(), config.seed);
    (0..config.num_subsets)
        .map(|_| generator.generate_subset(config.events_per_subset))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_improves_towards_the_phantom() {
        // After a few subsets, voxels inside the hot spheres should on
        // average be brighter than background voxels.
        let config = ReconstructionConfig::test_scale().with_subsets(4);
        let f = reconstruct(&config);
        let reference = config.phantom.reference_image(&config.volume);
        let hot_threshold = config.phantom.background * 4.0;

        let (mut hot_sum, mut hot_n, mut bg_sum, mut bg_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for (fv, rv) in f.iter().zip(&reference) {
            if *rv > hot_threshold {
                hot_sum += *fv as f64;
                hot_n += 1;
            } else {
                bg_sum += *fv as f64;
                bg_n += 1;
            }
        }
        assert!(hot_n > 0 && bg_n > 0);
        let hot_mean = hot_sum / hot_n as f64;
        let bg_mean = bg_sum / bg_n as f64;
        assert!(
            hot_mean > bg_mean * 1.5,
            "hot mean {hot_mean} should exceed background mean {bg_mean}"
        );
    }

    #[test]
    fn image_stays_finite_and_non_negative() {
        let config = ReconstructionConfig::test_scale();
        let f = reconstruct(&config);
        assert_eq!(f.len(), config.volume.voxel_count());
        assert!(f.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn generate_subsets_is_deterministic_and_matches_reconstruct() {
        let config = ReconstructionConfig::test_scale();
        let subsets_a = generate_subsets(&config);
        let subsets_b = generate_subsets(&config);
        assert_eq!(subsets_a, subsets_b);
        assert_eq!(subsets_a.len(), config.num_subsets);
        assert!(subsets_a
            .iter()
            .all(|s| s.len() == config.events_per_subset));

        // Reconstructing from the pre-generated subsets gives the same image.
        let mut f = vec![1.0f32; config.volume.voxel_count()];
        for s in &subsets_a {
            process_subset(&config, s, &mut f);
        }
        assert_eq!(f, reconstruct(&config));
    }
}
