//! Property-based tests of the OSEM substrate: the Siddon-style ray tracer
//! respects geometric invariants for arbitrary lines of response, event
//! generation is reproducible and well-formed, and the sequential
//! reconstruction of Listing 2 behaves sanely for degenerate inputs.

use proptest::prelude::*;

use osem::{compute_path, Event, EventGenerator, Phantom, ReconstructionConfig, Volume};

fn segment_length(e: &Event) -> f32 {
    let dx = e.p2[0] - e.p1[0];
    let dy = e.p2[1] - e.p1[1];
    let dz = e.p2[2] - e.p1[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn path_lengths_are_nonnegative_and_bounded_by_the_segment(
        p1 in prop::array::uniform3(-60.0f32..60.0),
        p2 in prop::array::uniform3(-60.0f32..60.0),
    ) {
        let volume = Volume::test_scale();
        let event = Event { p1, p2 };
        let path = compute_path(&volume, &event);
        let total: f32 = path.iter().map(|el| el.len).sum();
        for el in &path {
            prop_assert!(el.len >= 0.0, "negative intersection length");
            prop_assert!(el.coord < volume.voxel_count(), "voxel index out of range");
        }
        // The traced length can never exceed the LOR segment itself (small
        // epsilon for the floating-point clipping arithmetic).
        prop_assert!(total <= segment_length(&event) * 1.0001 + 1e-3,
            "traced {total} exceeds segment {}", segment_length(&event));
    }

    #[test]
    fn paths_never_visit_the_same_voxel_twice(
        p1 in prop::array::uniform3(-60.0f32..60.0),
        p2 in prop::array::uniform3(-60.0f32..60.0),
    ) {
        let volume = Volume::test_scale();
        let path = compute_path(&volume, &Event { p1, p2 });
        let mut seen = std::collections::HashSet::new();
        for el in &path {
            prop_assert!(seen.insert(el.coord), "voxel {} visited twice", el.coord);
        }
    }

    #[test]
    fn lines_through_the_centre_cross_a_full_chord(
        angle in 0.0f32..std::f32::consts::PI,
    ) {
        // A LOR through the volume centre, entering and leaving well outside
        // the volume, must accumulate a path roughly as long as the volume
        // extent along that direction (within a voxel of slack at each end).
        let volume = Volume::test_scale();
        let extent = volume.extent();
        let r = extent[0].max(extent[1]) * 2.0;
        let centre = [
            (volume.min_corner()[0] + volume.max_corner()[0]) / 2.0,
            (volume.min_corner()[1] + volume.max_corner()[1]) / 2.0,
            (volume.min_corner()[2] + volume.max_corner()[2]) / 2.0,
        ];
        let dir = [angle.cos(), angle.sin(), 0.0];
        let event = Event {
            p1: [centre[0] - dir[0] * r, centre[1] - dir[1] * r, centre[2]],
            p2: [centre[0] + dir[0] * r, centre[1] + dir[1] * r, centre[2]],
        };
        let total: f32 = compute_path(&volume, &event).iter().map(|el| el.len).sum();
        // Minimum chord through the centre of a box is its smallest XY side.
        let min_side = extent[0].min(extent[1]);
        prop_assert!(total >= min_side * 0.8, "chord {total} too short for extent {extent:?}");
    }

    #[test]
    fn events_entirely_outside_the_volume_produce_empty_paths(
        offset in 100.0f32..500.0,
        delta in prop::array::uniform3(-20.0f32..20.0),
    ) {
        let volume = Volume::test_scale();
        let far = volume.max_corner()[0] + offset;
        let event = Event {
            p1: [far, far, far],
            p2: [far + delta[0], far + delta[1], far + delta[2]],
        };
        prop_assert!(compute_path(&volume, &event).is_empty());
    }

    #[test]
    fn event_generation_is_reproducible_and_well_formed(
        seed in 0u64..10_000,
        n in 1usize..200,
    ) {
        let volume = Volume::test_scale();
        let phantom = Phantom::default_for(&volume);
        let mut gen_a = EventGenerator::new(volume, phantom.clone(), seed);
        let mut gen_b = EventGenerator::new(Volume::test_scale(), phantom, seed);
        let a = gen_a.generate_subset(n);
        let b = gen_b.generate_subset(n);
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(&a, &b, "same seed must give the same events");
        for e in &a {
            prop_assert!(e.p1.iter().all(|v| v.is_finite()));
            prop_assert!(e.p2.iter().all(|v| v.is_finite()));
            prop_assert!(segment_length(e) > 0.0, "degenerate LOR");
        }
    }

    #[test]
    fn max_relative_difference_behaves_like_a_distance(
        data in prop::collection::vec(0.01f32..100.0, 1..200),
        noise in 0.0f32..0.5,
    ) {
        let identical = osem::max_relative_difference(&data, &data);
        prop_assert!(identical == 0.0);

        let perturbed: Vec<f32> = data.iter().map(|x| x * (1.0 + noise)).collect();
        let d = osem::max_relative_difference(&data, &perturbed);
        prop_assert!(d >= 0.0);
        if noise > 1e-3 {
            prop_assert!(d > 0.0, "a perturbation must be detected");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sequential_reconstruction_keeps_the_image_finite_and_nonnegative(
        events_per_subset in 50usize..500,
        seed in 0u64..1_000,
    ) {
        let mut config = ReconstructionConfig::test_scale();
        config.events_per_subset = events_per_subset;
        config.seed = seed;
        let image = osem::sequential::reconstruct(&config);
        prop_assert_eq!(image.len(), config.volume.voxel_count());
        for v in &image {
            prop_assert!(v.is_finite() && *v >= 0.0, "voxel value {v}");
        }
    }
}

#[test]
fn an_empty_subset_leaves_the_reconstruction_image_unchanged() {
    let config = ReconstructionConfig::test_scale();
    let mut image = vec![1.0f32; config.volume.voxel_count()];
    osem::sequential::process_subset(&config, &[], &mut image);
    assert_eq!(image, vec![1.0f32; config.volume.voxel_count()]);
}

#[test]
fn phantom_reference_image_is_hotter_inside_the_spheres() {
    let volume = Volume::test_scale();
    let phantom = Phantom::default_for(&volume);
    let reference = phantom.reference_image(&volume);
    let max = reference.iter().cloned().fold(f32::MIN, f32::max);
    let min = reference.iter().cloned().fold(f32::MAX, f32::min);
    assert!(max > min, "the phantom must have contrast");
    assert!(min >= 0.0);
}
