//! Tree-walking interpreter that executes one work-item of a kernel.
//!
//! The interpreter binds kernel parameters to [`ArgBinding`]s: scalars bind to
//! a [`Value`], buffers bind to a mutable typed slice view. The `oclsim`
//! device simulator owns the buffer storage and constructs the bindings for
//! every launch.

use std::collections::HashMap;

use crate::ast::*;
use crate::builtins::{stencil, Builtin};
use crate::diag::KernelError;
use crate::types::{ScalarType, Type};
use crate::value::Value;

/// The work-item context: the values returned by `get_global_id` and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Global work-item index (dimension 0).
    pub global_id: usize,
    /// Total number of work-items (dimension 0).
    pub global_size: usize,
    /// Index within the work-group.
    pub local_id: usize,
    /// Work-group size.
    pub local_size: usize,
    /// Work-group index.
    pub group_id: usize,
}

impl WorkItem {
    /// A 1-D work item with trivial (single) work-group structure.
    pub fn linear(global_id: usize, global_size: usize) -> Self {
        WorkItem {
            global_id,
            global_size,
            local_id: global_id,
            local_size: global_size.max(1),
            group_id: 0,
        }
    }
}

/// A mutable view over a typed global-memory buffer.
#[derive(Debug)]
pub enum BufferView<'a> {
    /// `__global float*`
    F32(&'a mut [f32]),
    /// `__global double*`
    F64(&'a mut [f64]),
    /// `__global int*`
    I32(&'a mut [i32]),
    /// `__global uint*`
    U32(&'a mut [u32]),
}

impl<'a> BufferView<'a> {
    /// Element type of the view.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            BufferView::F32(_) => ScalarType::Float,
            BufferView::F64(_) => ScalarType::Double,
            BufferView::I32(_) => ScalarType::Int,
            BufferView::U32(_) => ScalarType::Uint,
        }
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        match self {
            BufferView::F32(s) => s.len(),
            BufferView::F64(s) => s.len(),
            BufferView::I32(s) => s.len(),
            BufferView::U32(s) => s.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn load(&self, idx: usize) -> Option<Value> {
        match self {
            BufferView::F32(s) => s.get(idx).map(|v| Value::Float(*v)),
            BufferView::F64(s) => s.get(idx).map(|v| Value::Double(*v)),
            BufferView::I32(s) => s.get(idx).map(|v| Value::Int(*v)),
            BufferView::U32(s) => s.get(idx).map(|v| Value::Uint(*v)),
        }
    }

    /// Write back a value previously read with [`BufferView::load`] without
    /// any conversion, bit-exactly — the undo path of the batched VM's
    /// rollback. A variant mismatch or out-of-range index is a logic error
    /// (the undo log only ever holds values loaded from this view).
    pub(crate) fn restore(&mut self, idx: usize, value: Value) {
        match (self, value) {
            (BufferView::F32(s), Value::Float(v)) => s[idx] = v,
            (BufferView::F64(s), Value::Double(v)) => s[idx] = v,
            (BufferView::I32(s), Value::Int(v)) => s[idx] = v,
            (BufferView::U32(s), Value::Uint(v)) => s[idx] = v,
            _ => unreachable!("undo log holds values loaded from the same view"),
        }
    }

    pub(crate) fn store(&mut self, idx: usize, value: Value) -> bool {
        match self {
            BufferView::F32(s) => {
                if let Some(slot) = s.get_mut(idx) {
                    *slot = value.as_f64() as f32;
                    return true;
                }
            }
            BufferView::F64(s) => {
                if let Some(slot) = s.get_mut(idx) {
                    *slot = value.as_f64();
                    return true;
                }
            }
            BufferView::I32(s) => {
                if let Some(slot) = s.get_mut(idx) {
                    *slot = value.as_i64() as i32;
                    return true;
                }
            }
            BufferView::U32(s) => {
                if let Some(slot) = s.get_mut(idx) {
                    *slot = value.as_i64() as u32;
                    return true;
                }
            }
        }
        false
    }
}

/// A binding of one kernel argument.
#[derive(Debug)]
pub enum ArgBinding<'a> {
    /// A scalar argument.
    Scalar(Value),
    /// A global buffer argument.
    Buffer(BufferView<'a>),
}

impl<'a> ArgBinding<'a> {
    /// Convenience constructor for an `f32` buffer binding.
    pub fn buffer_f32(data: &'a mut [f32]) -> Self {
        ArgBinding::Buffer(BufferView::F32(data))
    }

    /// Convenience constructor for an `i32` buffer binding.
    pub fn buffer_i32(data: &'a mut [i32]) -> Self {
        ArgBinding::Buffer(BufferView::I32(data))
    }

    /// Convenience constructor for a `u32` buffer binding.
    pub fn buffer_u32(data: &'a mut [u32]) -> Self {
        ArgBinding::Buffer(BufferView::U32(data))
    }

    /// Convenience constructor for an `f64` buffer binding.
    pub fn buffer_f64(data: &'a mut [f64]) -> Self {
        ArgBinding::Buffer(BufferView::F64(data))
    }
}

/// Per-launch context of the stencil neighbour-access builtin
/// `get(dx, dy)`, detected from the reserved parameter names of the kernel
/// signature (see [`crate::builtins::stencil`]). Shared by the interpreter
/// and the bytecode VM so both engines resolve `get` identically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StencilCtx {
    /// Kernel argument slot of the stencil input buffer.
    pub in_slot: usize,
    /// Row width (columns) of the matrix part.
    pub width: i64,
    /// Halo rows padded above and below the part's core rows.
    pub halo: i64,
    /// Column out-of-bound policy (clamp / wrap / constant).
    pub policy: i32,
    /// Value returned for out-of-range columns under the constant policy.
    pub oob: f32,
}

impl StencilCtx {
    /// Detect the stencil context of a launch: `Ok(None)` when the kernel
    /// declares no stencil parameters, `Ok(Some(..))` when all of them are
    /// present and valid, an error for a partial or ill-typed set.
    pub(crate) fn detect<'n>(
        params: impl Iterator<Item = &'n str>,
        args: &[ArgBinding<'_>],
    ) -> Result<Option<StencilCtx>, KernelError> {
        let mut slots: [Option<usize>; 5] = [None; 5];
        const NAMES: [&str; 5] = [
            stencil::IN_PARAM,
            stencil::WIDTH_PARAM,
            stencil::HALO_PARAM,
            stencil::POLICY_PARAM,
            stencil::OOB_PARAM,
        ];
        for (i, name) in params.enumerate() {
            if let Some(k) = NAMES.iter().position(|n| *n == name) {
                slots[k] = Some(i);
            }
        }
        if slots.iter().all(Option::is_none) {
            return Ok(None);
        }
        if slots.iter().any(Option::is_none) {
            return Err(KernelError::run(
                "incomplete stencil context: a stencil kernel must declare all \
                 skelcl_stencil_* parameters",
            ));
        }
        let scalar = |slot: usize, name: &str| -> Result<Value, KernelError> {
            match &args[slot] {
                ArgBinding::Scalar(v) => Ok(*v),
                ArgBinding::Buffer(_) => Err(KernelError::run(format!(
                    "stencil parameter `{name}` must be bound to a scalar"
                ))),
            }
        };
        let in_slot = slots[0].expect("checked above");
        match &args[in_slot] {
            ArgBinding::Buffer(view) if view.scalar_type() == ScalarType::Float => {}
            _ => {
                return Err(KernelError::run(format!(
                    "stencil input `{}` must be bound to a float buffer",
                    stencil::IN_PARAM
                )))
            }
        }
        let width = scalar(slots[1].expect("checked above"), stencil::WIDTH_PARAM)?.as_i64();
        let halo = scalar(slots[2].expect("checked above"), stencil::HALO_PARAM)?.as_i64();
        let policy = scalar(slots[3].expect("checked above"), stencil::POLICY_PARAM)?.as_i64();
        let oob = scalar(slots[4].expect("checked above"), stencil::OOB_PARAM)?.as_f64() as f32;
        if width <= 0 {
            return Err(KernelError::run(format!(
                "stencil width must be positive, got {width}"
            )));
        }
        if halo < 0 {
            return Err(KernelError::run(format!(
                "stencil halo must be non-negative, got {halo}"
            )));
        }
        if !(stencil::POLICY_CLAMP as i64..=stencil::POLICY_CONSTANT as i64).contains(&policy) {
            return Err(KernelError::run(format!(
                "unknown stencil boundary policy {policy}"
            )));
        }
        Ok(Some(StencilCtx {
            in_slot,
            width,
            halo,
            policy: policy as i32,
            oob,
        }))
    }
}

/// Evaluate `get(dx, dy)` for the work-item `gid` under a stencil context:
/// rows resolve directly into the halo-padded input part (row out-of-bound
/// handling happened when the halo was filled), columns apply the configured
/// policy. Shared verbatim by both execution engines; the cost accounting
/// (one global load plus address arithmetic) is done by each engine's own
/// counting mechanism *before* this call, so error paths charge identically.
pub(crate) fn stencil_get(
    ctx: StencilCtx,
    args: &[ArgBinding<'_>],
    gid: usize,
    dx: i64,
    dy: i64,
) -> Result<Value, KernelError> {
    if dy < -ctx.halo || dy > ctx.halo {
        return Err(KernelError::run(format!(
            "stencil access dy={dy} exceeds the declared halo of {} row(s)",
            ctx.halo
        )));
    }
    let w = ctx.width;
    let row = gid as i64 / w;
    let col = gid as i64 % w;
    let mut c = col + dx;
    if c < 0 || c >= w {
        c = match ctx.policy {
            stencil::POLICY_CLAMP => c.clamp(0, w - 1),
            stencil::POLICY_WRAP => c.rem_euclid(w),
            stencil::POLICY_CONSTANT => return Ok(Value::Float(ctx.oob)),
            other => unreachable!("policy {other} rejected at context detection"),
        };
    }
    let idx = ((row + ctx.halo + dy) * w + c) as usize;
    match &args[ctx.in_slot] {
        ArgBinding::Buffer(view) => view.load(idx).ok_or_else(|| {
            KernelError::run(format!(
                "stencil access ({dx}, {dy}) at index {idx} is out of bounds for the \
                 stencil input (len {})",
                view.len()
            ))
        }),
        ArgBinding::Scalar(_) => unreachable!("buffer binding validated at context detection"),
    }
}

/// The error reported when `get` is called outside a stencil kernel; one
/// string so both engines agree verbatim.
pub(crate) const NO_STENCIL_CONTEXT: &str =
    "`get` requires a stencil (MapOverlap) kernel: no stencil context parameters are bound";

/// Control-flow signal produced by statement execution.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
}

/// Variable environment: a stack of scopes.
#[derive(Default)]
struct Env {
    scopes: Vec<HashMap<String, Value>>,
}

impl Env {
    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("environment always has a scope")
            .insert(name.to_string(), value);
    }

    fn get(&self, name: &str) -> Option<Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn set(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                // Keep the declared type of the variable.
                *slot = value.convert_to(slot.scalar_type());
                return true;
            }
        }
        false
    }
}

/// Dynamic execution statistics accumulated while interpreting kernel code.
///
/// Unlike the *static* estimate of [`crate::cost`] (which the paper's static
/// scheduler uses as a prediction), these are the operations the kernel
/// actually executed, so data-dependent loops (e.g. the Mandelbrot escape
/// loop) are accounted for exactly. The device simulator charges virtual
/// time from these measured counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes of global-memory (buffer) traffic: loads + stores.
    pub global_bytes: f64,
    /// Statements and expressions evaluated (a proxy for integer and
    /// control-flow work).
    pub ops: f64,
}

impl ExecStats {
    /// Average per-work-item statistics over `items` work-items.
    pub fn per_item(&self, items: usize) -> ExecStats {
        let n = items.max(1) as f64;
        ExecStats {
            flops: self.flops / n,
            global_bytes: self.global_bytes / n,
            ops: self.ops / n,
        }
    }
}

/// The kernel interpreter. One instance may be reused across work-items of
/// the same launch.
pub struct Interpreter<'u> {
    unit: &'u TranslationUnit,
    /// Hard cap on loop iterations per work-item, to turn accidental infinite
    /// loops in user code into errors instead of hangs.
    pub max_loop_iterations: u64,
    stats: std::cell::Cell<ExecStats>,
}

/// Buffer bindings are identified by the parameter index of the *kernel*
/// entry point; helper functions only receive scalar values (enforced by the
/// checker), so the buffers stay attached to their kernel parameter names.
struct KernelFrame<'a, 'b> {
    /// Maps a kernel parameter name to an index into `args`.
    buffer_params: HashMap<String, usize>,
    args: &'a mut [ArgBinding<'b>],
    item: WorkItem,
    /// Stencil context of the launch, when the kernel declares the reserved
    /// `skelcl_stencil_*` parameters (enables the `get(dx, dy)` builtin).
    stencil: Option<StencilCtx>,
}

impl<'u> Interpreter<'u> {
    /// Create an interpreter for a checked translation unit.
    pub fn new(unit: &'u TranslationUnit) -> Self {
        Interpreter {
            unit,
            max_loop_iterations: 100_000_000,
            stats: std::cell::Cell::new(ExecStats::default()),
        }
    }

    /// The execution statistics accumulated since construction (or the last
    /// [`Interpreter::reset_stats`]).
    pub fn stats(&self) -> ExecStats {
        self.stats.get()
    }

    /// Reset the accumulated execution statistics to zero.
    pub fn reset_stats(&self) {
        self.stats.set(ExecStats::default());
    }

    #[inline]
    fn count_flops(&self, flops: f64) {
        let mut s = self.stats.get();
        s.flops += flops;
        s.ops += 1.0;
        self.stats.set(s);
    }

    #[inline]
    fn count_op(&self) {
        let mut s = self.stats.get();
        s.ops += 1.0;
        self.stats.set(s);
    }

    #[inline]
    fn count_bytes(&self, bytes: f64) {
        let mut s = self.stats.get();
        s.global_bytes += bytes;
        s.ops += 1.0;
        self.stats.set(s);
    }

    /// Run the kernel with function index `kernel_index` for one work-item.
    pub fn run_kernel(
        &mut self,
        kernel_index: usize,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let func = &self.unit.functions[kernel_index];
        if args.len() != func.params.len() {
            return Err(KernelError::run(format!(
                "kernel `{}` expects {} arguments, {} bound",
                func.name,
                func.params.len(),
                args.len()
            )));
        }

        let mut env = Env::default();
        env.push();
        let mut buffer_params = HashMap::new();
        for (i, (param, arg)) in func.params.iter().zip(args.iter()).enumerate() {
            match (&param.ty, arg) {
                (Type::GlobalPtr(want), ArgBinding::Buffer(view)) => {
                    let got = view.scalar_type();
                    if *want != got {
                        return Err(KernelError::run(format!(
                            "argument `{}` of kernel `{}`: expected __global {want}*, bound {got} buffer",
                            param.name, func.name
                        )));
                    }
                    buffer_params.insert(param.name.clone(), i);
                }
                (Type::Scalar(want), ArgBinding::Scalar(v)) => {
                    env.declare(&param.name, v.convert_to(*want));
                }
                (Type::GlobalPtr(_), ArgBinding::Scalar(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a buffer but a scalar was bound",
                        param.name, func.name
                    )));
                }
                (Type::Scalar(_), ArgBinding::Buffer(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a scalar but a buffer was bound",
                        param.name, func.name
                    )));
                }
                (Type::Void, _) => unreachable!("void parameters rejected by the parser"),
            }
        }

        let stencil = StencilCtx::detect(func.params.iter().map(|p| p.name.as_str()), args)?;
        let mut frame = KernelFrame {
            buffer_params,
            args,
            item,
            stencil,
        };
        self.exec_block(&func.body, &mut env, &mut frame)?;
        Ok(())
    }

    fn call_function(
        &self,
        func: &Function,
        arg_values: Vec<Value>,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<Value, KernelError> {
        let mut env = Env::default();
        env.push();
        for (param, value) in func.params.iter().zip(arg_values) {
            env.declare(&param.name, value.convert_to(param.ty.scalar()));
        }
        match self.exec_block(&func.body, &mut env, frame)? {
            Flow::Return(Some(v)) => Ok(v.convert_to(func.return_type.scalar())),
            Flow::Return(None) | Flow::Normal => {
                if func.return_type.is_void() {
                    Ok(Value::Int(0))
                } else {
                    Err(KernelError::run(format!(
                        "non-void function `{}` finished without returning a value",
                        func.name
                    )))
                }
            }
            Flow::Break | Flow::Continue => Err(KernelError::run(
                "break/continue outside of a loop".to_string(),
            )),
        }
    }

    fn exec_block(
        &self,
        block: &Block,
        env: &mut Env,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<Flow, KernelError> {
        env.push();
        for stmt in &block.stmts {
            match self.exec_stmt(stmt, env, frame)? {
                Flow::Normal => {}
                other => {
                    env.pop();
                    return Ok(other);
                }
            }
        }
        env.pop();
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        env: &mut Env,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<Flow, KernelError> {
        self.count_op();
        match stmt {
            Stmt::Decl { ty, name, init, .. } => {
                let value = match init {
                    Some(e) => self.eval(e, env, frame)?.convert_to(*ty),
                    None => Value::zero(*ty),
                };
                env.declare(name, value);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, env, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.eval(cond, env, frame)?.as_bool() {
                    self.exec_block(then_block, env, frame)
                } else {
                    self.exec_block(else_block, env, frame)
                }
            }
            Stmt::While { cond, body } => {
                let mut iterations = 0u64;
                loop {
                    if !self.eval(cond, env, frame)?.as_bool() {
                        break;
                    }
                    match self.exec_block(body, env, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    iterations += 1;
                    if iterations > self.max_loop_iterations {
                        return Err(KernelError::run("loop iteration limit exceeded"));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                env.push();
                if let Some(init) = init {
                    self.exec_stmt(init, env, frame)?;
                }
                let mut iterations = 0u64;
                loop {
                    let keep_going = match cond {
                        Some(c) => self.eval(c, env, frame)?.as_bool(),
                        None => true,
                    };
                    if !keep_going {
                        break;
                    }
                    match self.exec_block(body, env, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            env.pop();
                            return Ok(Flow::Return(v));
                        }
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(step) = step {
                        self.eval(step, env, frame)?;
                    }
                    iterations += 1;
                    if iterations > self.max_loop_iterations {
                        env.pop();
                        return Err(KernelError::run("loop iteration limit exceeded"));
                    }
                }
                env.pop();
                Ok(Flow::Normal)
            }
            Stmt::Return(expr, _) => {
                let v = match expr {
                    Some(e) => Some(self.eval(e, env, frame)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b, env, frame),
        }
    }

    fn read_lvalue(
        &self,
        lv: &LValue,
        env: &mut Env,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<Value, KernelError> {
        match lv {
            LValue::Var(name, _) => env
                .get(name)
                .ok_or_else(|| KernelError::run(format!("variable `{name}` is not bound"))),
            LValue::Index { base, index, .. } => {
                let idx = self.eval(index, env, frame)?.as_i64();
                self.buffer_load(base, idx, frame)
            }
        }
    }

    fn write_lvalue(
        &self,
        lv: &LValue,
        value: Value,
        env: &mut Env,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<(), KernelError> {
        match lv {
            LValue::Var(name, _) => {
                if env.set(name, value) {
                    Ok(())
                } else {
                    Err(KernelError::run(format!("variable `{name}` is not bound")))
                }
            }
            LValue::Index { base, index, .. } => {
                let idx = self.eval(index, env, frame)?.as_i64();
                self.buffer_store(base, idx, value, frame)
            }
        }
    }

    fn buffer_arg_index(
        &self,
        name: &str,
        frame: &KernelFrame<'_, '_>,
    ) -> Result<usize, KernelError> {
        frame
            .buffer_params
            .get(name)
            .copied()
            .ok_or_else(|| KernelError::run(format!("`{name}` is not a buffer parameter")))
    }

    fn buffer_load(
        &self,
        name: &str,
        idx: i64,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<Value, KernelError> {
        if idx < 0 {
            return Err(KernelError::run(format!(
                "negative index {idx} into buffer `{name}`"
            )));
        }
        let arg = self.buffer_arg_index(name, frame)?;
        match &frame.args[arg] {
            ArgBinding::Buffer(view) => {
                self.count_bytes(view.scalar_type().size_bytes() as f64);
                view.load(idx as usize).ok_or_else(|| {
                    KernelError::run(format!(
                        "index {idx} out of bounds for buffer `{name}` (len {})",
                        view.len()
                    ))
                })
            }
            ArgBinding::Scalar(_) => Err(KernelError::run(format!(
                "`{name}` is bound to a scalar but used as a buffer"
            ))),
        }
    }

    fn buffer_store(
        &self,
        name: &str,
        idx: i64,
        value: Value,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<(), KernelError> {
        if idx < 0 {
            return Err(KernelError::run(format!(
                "negative index {idx} into buffer `{name}`"
            )));
        }
        let arg = self.buffer_arg_index(name, frame)?;
        match &mut frame.args[arg] {
            ArgBinding::Buffer(view) => {
                self.count_bytes(view.scalar_type().size_bytes() as f64);
                let len = view.len();
                if view.store(idx as usize, value) {
                    Ok(())
                } else {
                    Err(KernelError::run(format!(
                        "index {idx} out of bounds for buffer `{name}` (len {len})"
                    )))
                }
            }
            ArgBinding::Scalar(_) => Err(KernelError::run(format!(
                "`{name}` is bound to a scalar but used as a buffer"
            ))),
        }
    }

    fn eval(
        &self,
        expr: &Expr,
        env: &mut Env,
        frame: &mut KernelFrame<'_, '_>,
    ) -> Result<Value, KernelError> {
        match expr {
            Expr::IntLit(v, _) => Ok(Value::Int(*v as i32)),
            Expr::FloatLit(v, _) => Ok(Value::Float(*v as f32)),
            Expr::BoolLit(v, _) => Ok(Value::Bool(*v)),
            Expr::Var(name, _) => env
                .get(name)
                .ok_or_else(|| KernelError::run(format!("variable `{name}` is not bound"))),
            Expr::Index { base, index, .. } => {
                let idx = self.eval(index, env, frame)?.as_i64();
                self.buffer_load(base, idx, frame)
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.eval(operand, env, frame)?;
                self.count_flops(1.0);
                Ok(match op {
                    UnOp::Neg => match v {
                        Value::Float(x) => Value::Float(-x),
                        Value::Double(x) => Value::Double(-x),
                        // Wrapping, like every other integer op of the
                        // language (and the VM): -INT_MIN is INT_MIN.
                        Value::Int(x) => Value::Int(x.wrapping_neg()),
                        Value::Uint(x) => Value::Int(-(x as i64) as i32),
                        Value::Bool(_) => unreachable!("checker rejects bool negation"),
                    },
                    UnOp::Not => Value::Bool(!v.as_bool()),
                })
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    let l = self.eval(lhs, env, frame)?;
                    self.count_op();
                    if !l.as_bool() {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(self.eval(rhs, env, frame)?.as_bool()));
                }
                if *op == BinOp::Or {
                    let l = self.eval(lhs, env, frame)?;
                    self.count_op();
                    if l.as_bool() {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(self.eval(rhs, env, frame)?.as_bool()));
                }
                let l = self.eval(lhs, env, frame)?;
                let r = self.eval(rhs, env, frame)?;
                self.count_flops(if op.is_comparison() { 0.5 } else { 1.0 });
                eval_binary(*op, l, r)
            }
            Expr::Call { callee, args, .. } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, env, frame)?);
                }
                if let Some(b) = Builtin::from_name(callee) {
                    if b.is_work_item_fn() {
                        let item = frame.item;
                        let v = match b {
                            Builtin::GetGlobalId => item.global_id,
                            Builtin::GetLocalId => item.local_id,
                            Builtin::GetGroupId => item.group_id,
                            Builtin::GetGlobalSize => item.global_size,
                            Builtin::GetLocalSize => item.local_size,
                            Builtin::GetNumGroups => {
                                item.global_size.div_ceil(item.local_size.max(1))
                            }
                            _ => unreachable!(),
                        };
                        self.count_op();
                        return Ok(Value::Int(v as i32));
                    }
                    if b.is_stencil_fn() {
                        // Costed like any other load: the address arithmetic
                        // as flops, the element read as global bytes —
                        // charged before evaluation so error paths count the
                        // same work in both engines.
                        self.count_flops(b.flop_cost());
                        self.count_bytes(ScalarType::Float.size_bytes() as f64);
                        let ctx = frame
                            .stencil
                            .ok_or_else(|| KernelError::run(NO_STENCIL_CONTEXT))?;
                        let (dx, dy) = (values[0].as_i64(), values[1].as_i64());
                        return stencil_get(ctx, frame.args, frame.item.global_id, dx, dy);
                    }
                    self.count_flops(b.flop_cost());
                    return Ok(b.eval_math(&values));
                }
                let func = self
                    .unit
                    .function(callee)
                    .ok_or_else(|| KernelError::run(format!("unknown function `{callee}`")))?;
                self.call_function(func, values, frame)
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                if self.eval(cond, env, frame)?.as_bool() {
                    self.eval(then_expr, env, frame)
                } else {
                    self.eval(else_expr, env, frame)
                }
            }
            Expr::Assign {
                op, target, value, ..
            } => {
                let rhs = self.eval(value, env, frame)?;
                let new = match op {
                    AssignOp::Assign => rhs,
                    _ => {
                        let old = self.read_lvalue(target, env, frame)?;
                        let bin = match op {
                            AssignOp::AddAssign => BinOp::Add,
                            AssignOp::SubAssign => BinOp::Sub,
                            AssignOp::MulAssign => BinOp::Mul,
                            AssignOp::DivAssign => BinOp::Div,
                            AssignOp::Assign => unreachable!(),
                        };
                        eval_binary(bin, old, rhs)?
                    }
                };
                self.write_lvalue(target, new, env, frame)?;
                Ok(new)
            }
            Expr::IncDec {
                target,
                delta,
                prefix,
                ..
            } => {
                let old = self.read_lvalue(target, env, frame)?;
                self.count_flops(1.0);
                let new = eval_binary(BinOp::Add, old, Value::Int(*delta))?;
                self.write_lvalue(target, new, env, frame)?;
                Ok(if *prefix { new } else { old })
            }
            Expr::Cast { ty, operand, .. } => Ok(self.eval(operand, env, frame)?.convert_to(*ty)),
        }
    }
}

/// Evaluate a (non-short-circuit) binary operator with C-style usual
/// arithmetic conversions. Shared with the bytecode VM ([`crate::vm`]) so
/// both engines have identical arithmetic semantics by construction.
pub(crate) fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, KernelError> {
    use BinOp::*;
    let unified = l.scalar_type().unify(r.scalar_type());
    if unified.is_float() {
        let (a, b) = (l.as_f64(), r.as_f64());
        let result = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => a / b,
            Rem => return Err(KernelError::run("`%` on float operands")),
            Eq => return Ok(Value::Bool(a == b)),
            Ne => return Ok(Value::Bool(a != b)),
            Lt => return Ok(Value::Bool(a < b)),
            Le => return Ok(Value::Bool(a <= b)),
            Gt => return Ok(Value::Bool(a > b)),
            Ge => return Ok(Value::Bool(a >= b)),
            And => return Ok(Value::Bool(l.as_bool() && r.as_bool())),
            Or => return Ok(Value::Bool(l.as_bool() || r.as_bool())),
        };
        Ok(match unified {
            ScalarType::Double => Value::Double(result),
            _ => Value::Float(result as f32),
        })
    } else {
        let (a, b) = (l.as_i64(), r.as_i64());
        let result = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return Err(KernelError::run("integer division by zero"));
                }
                a / b
            }
            Rem => {
                if b == 0 {
                    return Err(KernelError::run("integer remainder by zero"));
                }
                a % b
            }
            Eq => return Ok(Value::Bool(a == b)),
            Ne => return Ok(Value::Bool(a != b)),
            Lt => return Ok(Value::Bool(a < b)),
            Le => return Ok(Value::Bool(a <= b)),
            Gt => return Ok(Value::Bool(a > b)),
            Ge => return Ok(Value::Bool(a >= b)),
            And => return Ok(Value::Bool(l.as_bool() && r.as_bool())),
            Or => return Ok(Value::Bool(l.as_bool() || r.as_bool())),
        };
        Ok(match unified {
            ScalarType::Uint => Value::Uint(result as u32),
            ScalarType::Bool => Value::Bool(result != 0),
            _ => Value::Int(result as i32),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn run_map_kernel(src: &str, kernel: &str, data: &mut [f32]) {
        let p = Program::build(src).unwrap();
        let k = p.kernel(kernel).unwrap();
        let n = data.len();
        let mut args = vec![
            ArgBinding::buffer_f32(data),
            ArgBinding::Scalar(Value::Int(n as i32)),
        ];
        p.run_ndrange(&k, n, &mut args).unwrap();
    }

    #[test]
    fn loops_and_accumulation() {
        let src = r#"
            __kernel void sums(__global float* v, int n) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i <= gid; i++) { acc += 1.0f; }
                v[gid] = acc;
            }
        "#;
        let mut data = vec![0.0f32; 5];
        run_map_kernel(src, "sums", &mut data);
        assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn while_break_continue() {
        let src = r#"
            __kernel void evens(__global float* v, int n) {
                int gid = get_global_id(0);
                int i = 0;
                float acc = 0.0f;
                while (true) {
                    i = i + 1;
                    if (i > n) { break; }
                    if (i % 2 == 1) { continue; }
                    acc += i;
                }
                v[gid] = acc;
            }
        "#;
        let mut data = vec![0.0f32; 1];
        run_map_kernel(src, "evens", &mut data);
        // 2 + 4 ... but n == 1, so no even numbers <= 1 -> 0
        assert_eq!(data[0], 0.0);
        let mut data = vec![0.0f32; 6];
        run_map_kernel(src, "evens", &mut data);
        // n == 6: 2 + 4 + 6 = 12
        assert_eq!(data[0], 12.0);
    }

    #[test]
    fn measured_stats_count_executed_work() {
        // Each work-item gid runs gid+1 loop iterations, so the measured
        // flops must be data-dependent (triangular), unlike the static
        // estimate which assumes a fixed trip count.
        let src = r#"
            __kernel void sums(__global float* v, int n) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i <= gid; i++) { acc += 1.0f; }
                v[gid] = acc;
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("sums").unwrap();
        let mut small = vec![0.0f32; 2];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut small),
            ArgBinding::Scalar(Value::Int(2)),
        ];
        let stats_small = p.run_ndrange_measured(&k, 2, &mut args).unwrap();
        let mut big = vec![0.0f32; 8];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut big),
            ArgBinding::Scalar(Value::Int(8)),
        ];
        let stats_big = p.run_ndrange_measured(&k, 8, &mut args).unwrap();
        assert!(stats_small.flops > 0.0);
        assert!(stats_big.flops > stats_small.flops);
        // Per-item cost grows with gid, so it is larger for the bigger range.
        assert!(stats_big.per_item(8).flops > stats_small.per_item(2).flops);
        // One 4-byte store per work-item at least.
        assert!(stats_big.global_bytes >= 8.0 * 4.0);
        assert!(stats_big.ops > 0.0);
    }

    #[test]
    fn measured_stats_include_builtin_flop_costs() {
        let cheap = r#"
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                v[gid] = v[gid] + 1.0f;
            }
        "#;
        let pricey = r#"
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                v[gid] = exp(v[gid]) + sqrt(v[gid]);
            }
        "#;
        let run = |src: &str| {
            let p = Program::build(src).unwrap();
            let k = p.kernel("k").unwrap();
            let mut data = vec![1.0f32; 4];
            let mut args = vec![
                ArgBinding::buffer_f32(&mut data),
                ArgBinding::Scalar(Value::Int(4)),
            ];
            p.run_ndrange_measured(&k, 4, &mut args).unwrap()
        };
        assert!(run(pricey).flops > run(cheap).flops);
    }

    #[test]
    fn helper_function_calls_and_recursion_free_math() {
        let src = r#"
            float square(float x) { return x * x; }
            float hypot2(float a, float b) { return square(a) + square(b); }
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                v[gid] = sqrt(hypot2(v[gid], 3.0f));
            }
        "#;
        let mut data = vec![4.0f32];
        run_map_kernel(src, "k", &mut data);
        assert_eq!(data[0], 5.0);
    }

    #[test]
    fn out_of_bounds_is_an_error_not_ub() {
        let src = r#"
            __kernel void k(__global float* v, int n) {
                v[n + 10] = 1.0f;
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 4];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(4)),
        ];
        let err = p.run_ndrange(&k, 1, &mut args).unwrap_err();
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let src = r#"
            __kernel void k(__global int* v, int n) {
                v[0] = 1 / n;
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0i32; 1];
        let mut args = vec![
            ArgBinding::buffer_i32(&mut data),
            ArgBinding::Scalar(Value::Int(0)),
        ];
        assert!(p.run_ndrange(&k, 1, &mut args).is_err());
    }

    #[test]
    fn argument_binding_type_mismatch_is_reported() {
        let src = "__kernel void k(__global float* v, int n) { v[0] = n; }";
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut wrong = vec![0i32; 1];
        let mut args = vec![
            ArgBinding::buffer_i32(&mut wrong),
            ArgBinding::Scalar(Value::Int(1)),
        ];
        let err = p.run_ndrange(&k, 1, &mut args).unwrap_err();
        assert!(err.message.contains("expected __global float*"));
    }

    #[test]
    fn work_item_functions_report_ids() {
        let src = r#"
            __kernel void ids(__global int* gid, __global int* size, int n) {
                int i = get_global_id(0);
                gid[i] = i;
                size[i] = get_global_size(0);
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("ids").unwrap();
        let mut gids = vec![0i32; 4];
        let mut sizes = vec![0i32; 4];
        let mut args = vec![
            ArgBinding::buffer_i32(&mut gids),
            ArgBinding::buffer_i32(&mut sizes),
            ArgBinding::Scalar(Value::Int(4)),
        ];
        p.run_ndrange(&k, 4, &mut args).unwrap();
        assert_eq!(gids, vec![0, 1, 2, 3]);
        assert_eq!(sizes, vec![4, 4, 4, 4]);
    }

    #[test]
    fn ternary_and_compound_assignment() {
        let src = r#"
            __kernel void k(__global float* v, int n) {
                int i = get_global_id(0);
                v[i] *= 2.0f;
                v[i] = v[i] > 4.0f ? 4.0f : v[i];
            }
        "#;
        let mut data = vec![1.0f32, 2.0, 3.0];
        run_map_kernel(src, "k", &mut data);
        assert_eq!(data, vec![2.0, 4.0, 4.0]);
    }

    #[test]
    fn prefix_and_postfix_increment_values() {
        let src = r#"
            __kernel void k(__global float* v, int n) {
                int i = 0;
                v[0] = i++;
                v[1] = i;
                v[2] = ++i;
            }
        "#;
        let mut data = vec![0.0f32; 3];
        run_map_kernel(src, "k", &mut data);
        assert_eq!(data, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn loop_iteration_limit_guards_against_hangs() {
        let src = "__kernel void k(__global float* v, int n) { while (true) { v[0] = 1.0f; } }";
        let p = Program::build(src).unwrap();
        let mut data = vec![0.0f32; 1];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(1)),
        ];
        let mut interp = Interpreter::new(p.unit());
        interp.max_loop_iterations = 100;
        let err = interp
            .run_kernel(0, WorkItem::linear(0, 1), &mut args)
            .unwrap_err();
        assert!(err.message.contains("iteration limit"));
    }
}
