//! Builtin functions available inside kernels: OpenCL work-item functions and
//! a subset of the OpenCL math library.

use crate::types::ScalarType;
use crate::value::Value;

/// Reserved parameter names through which a generated stencil (`MapOverlap`)
/// kernel provides the execution context of the [`Builtin::StencilGet`]
/// builtin. Both execution engines (interpreter and VM) recognise these names
/// in the *kernel* signature at launch-bind time; `get(dx, dy)` called from
/// any function of the unit then resolves against this per-launch context.
pub mod stencil {
    /// The stencil input buffer (a `__global float*`): the device's part of
    /// the matrix, padded with `halo` rows above and below the core rows.
    pub const IN_PARAM: &str = "skelcl_stencil_in";
    /// Row width (number of columns) of the matrix part (`int`).
    pub const WIDTH_PARAM: &str = "skelcl_stencil_w";
    /// Halo width in rows (`int`): the input buffer holds this many extra
    /// rows above and below the rows the launch computes.
    pub const HALO_PARAM: &str = "skelcl_stencil_halo";
    /// Column out-of-bound policy (`int`): see [`POLICY_CLAMP`] and friends.
    pub const POLICY_PARAM: &str = "skelcl_stencil_policy";
    /// The value `get` returns for out-of-range columns under the constant
    /// policy (`float`).
    pub const OOB_PARAM: &str = "skelcl_stencil_oob";

    /// Column accesses past the edge clamp to the nearest valid column.
    pub const POLICY_CLAMP: i32 = 0;
    /// Column accesses wrap around (modulo the width).
    pub const POLICY_WRAP: i32 = 1;
    /// Column accesses past the edge yield the constant `oob` value.
    pub const POLICY_CONSTANT: i32 = 2;
}

/// Identifies a builtin function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    // Work-item functions
    GetGlobalId,
    GetLocalId,
    GetGroupId,
    GetGlobalSize,
    GetLocalSize,
    GetNumGroups,
    // Math, unary
    Sqrt,
    Fabs,
    Exp,
    Log,
    Sin,
    Cos,
    Floor,
    Ceil,
    // Math, binary
    Pow,
    Fmin,
    Fmax,
    Min,
    Max,
    Atan2,
    // Math, ternary
    Fma,
    Clamp,
    /// Indexed neighbour access `get(dx, dy)` inside a stencil (`MapOverlap`)
    /// kernel: reads the stencil input at column offset `dx` and row offset
    /// `dy` from the current work-item's element. Requires the stencil
    /// context parameters (see [`stencil`]) on the enclosing kernel; costed
    /// like any other global load plus the address arithmetic.
    StencilGet,
}

impl Builtin {
    /// Look up a builtin by source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "get_global_id" => Builtin::GetGlobalId,
            "get_local_id" => Builtin::GetLocalId,
            "get_group_id" => Builtin::GetGroupId,
            "get_global_size" => Builtin::GetGlobalSize,
            "get_local_size" => Builtin::GetLocalSize,
            "get_num_groups" => Builtin::GetNumGroups,
            "sqrt" | "native_sqrt" => Builtin::Sqrt,
            "fabs" => Builtin::Fabs,
            "exp" | "native_exp" => Builtin::Exp,
            "log" | "native_log" => Builtin::Log,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "pow" => Builtin::Pow,
            "fmin" => Builtin::Fmin,
            "fmax" => Builtin::Fmax,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "atan2" => Builtin::Atan2,
            "fma" | "mad" => Builtin::Fma,
            "clamp" => Builtin::Clamp,
            "get" => Builtin::StencilGet,
            _ => return None,
        })
    }

    /// Whether this is a work-item index function (takes a dimension index
    /// argument and returns `uint`).
    pub fn is_work_item_fn(self) -> bool {
        matches!(
            self,
            Builtin::GetGlobalId
                | Builtin::GetLocalId
                | Builtin::GetGroupId
                | Builtin::GetGlobalSize
                | Builtin::GetLocalSize
                | Builtin::GetNumGroups
        )
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::GetGlobalId
            | Builtin::GetLocalId
            | Builtin::GetGroupId
            | Builtin::GetGlobalSize
            | Builtin::GetLocalSize
            | Builtin::GetNumGroups => 1,
            Builtin::Sqrt
            | Builtin::Fabs
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Sin
            | Builtin::Cos
            | Builtin::Floor
            | Builtin::Ceil => 1,
            Builtin::Pow
            | Builtin::Fmin
            | Builtin::Fmax
            | Builtin::Min
            | Builtin::Max
            | Builtin::Atan2 => 2,
            Builtin::StencilGet => 2,
            Builtin::Fma | Builtin::Clamp => 3,
        }
    }

    /// Whether this is the stencil neighbour access `get(dx, dy)`, which
    /// needs the per-launch stencil context (it is neither a pure math
    /// builtin nor a work-item query).
    pub fn is_stencil_fn(self) -> bool {
        matches!(self, Builtin::StencilGet)
    }

    /// The scalar type this builtin returns, given its argument types.
    pub fn result_type(self, args: &[ScalarType]) -> ScalarType {
        if self.is_work_item_fn() {
            return ScalarType::Int;
        }
        match self {
            // The stencil input buffer is always a float buffer, so `get`
            // always yields float, independent of its (integer) offsets.
            Builtin::StencilGet => ScalarType::Float,
            Builtin::Min | Builtin::Max | Builtin::Clamp => args
                .iter()
                .copied()
                .reduce(ScalarType::unify)
                .unwrap_or(ScalarType::Float),
            _ => {
                // Math builtins return float unless any argument is double.
                if args.contains(&ScalarType::Double) {
                    ScalarType::Double
                } else {
                    ScalarType::Float
                }
            }
        }
    }

    /// Evaluate a math builtin (work-item functions are handled by the
    /// interpreter because they need the work-item context).
    pub fn eval_math(self, args: &[Value]) -> Value {
        debug_assert!(!self.is_work_item_fn());
        debug_assert!(
            !self.is_stencil_fn(),
            "get() needs the stencil context and is evaluated by the engines"
        );
        let f = |i: usize| args[i].as_f64();
        let result_ty = self.result_type(&args.iter().map(|v| v.scalar_type()).collect::<Vec<_>>());
        let r = match self {
            Builtin::Sqrt => f(0).sqrt(),
            Builtin::Fabs => f(0).abs(),
            Builtin::Exp => f(0).exp(),
            Builtin::Log => f(0).ln(),
            Builtin::Sin => f(0).sin(),
            Builtin::Cos => f(0).cos(),
            Builtin::Floor => f(0).floor(),
            Builtin::Ceil => f(0).ceil(),
            Builtin::Pow => f(0).powf(f(1)),
            Builtin::Fmin => f(0).min(f(1)),
            Builtin::Fmax => f(0).max(f(1)),
            Builtin::Atan2 => f(0).atan2(f(1)),
            Builtin::Fma => f(0).mul_add(f(1), f(2)),
            Builtin::Min => {
                return match result_ty {
                    t if t.is_float() => Value::Float(f(0).min(f(1)) as f32).convert_to(t),
                    t => Value::Int(args[0].as_i64().min(args[1].as_i64()) as i32).convert_to(t),
                }
            }
            Builtin::Max => {
                return match result_ty {
                    t if t.is_float() => Value::Float(f(0).max(f(1)) as f32).convert_to(t),
                    t => Value::Int(args[0].as_i64().max(args[1].as_i64()) as i32).convert_to(t),
                }
            }
            Builtin::Clamp => f(0).clamp(f(1), f(2)),
            _ => unreachable!("work-item builtin passed to eval_math"),
        };
        match result_ty {
            ScalarType::Double => Value::Double(r),
            _ => Value::Float(r as f32),
        }
    }

    /// Approximate cost in floating-point operations, used by the static
    /// cost estimator.
    pub fn flop_cost(self) -> f64 {
        match self {
            b if b.is_work_item_fn() => 0.0,
            Builtin::Fabs | Builtin::Floor | Builtin::Ceil | Builtin::Min | Builtin::Max => 1.0,
            Builtin::Fmin | Builtin::Fmax | Builtin::Clamp => 1.0,
            Builtin::Fma => 2.0,
            // Address arithmetic of the indexed neighbour access (the global
            // load itself is charged in bytes, like any other load).
            Builtin::StencilGet => 4.0,
            Builtin::Sqrt => 4.0,
            Builtin::Sin | Builtin::Cos => 8.0,
            Builtin::Exp | Builtin::Log | Builtin::Pow | Builtin::Atan2 => 10.0,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            Builtin::from_name("get_global_id"),
            Some(Builtin::GetGlobalId)
        );
        assert_eq!(Builtin::from_name("sqrt"), Some(Builtin::Sqrt));
        assert_eq!(Builtin::from_name("mad"), Some(Builtin::Fma));
        assert_eq!(Builtin::from_name("unknown_fn"), None);
    }

    #[test]
    fn arities() {
        assert_eq!(Builtin::GetGlobalId.arity(), 1);
        assert_eq!(Builtin::Sqrt.arity(), 1);
        assert_eq!(Builtin::Pow.arity(), 2);
        assert_eq!(Builtin::Fma.arity(), 3);
    }

    #[test]
    fn math_evaluation() {
        assert_eq!(
            Builtin::Sqrt.eval_math(&[Value::Float(9.0)]),
            Value::Float(3.0)
        );
        assert_eq!(
            Builtin::Fma.eval_math(&[Value::Float(2.0), Value::Float(3.0), Value::Float(4.0)]),
            Value::Float(10.0)
        );
        assert_eq!(
            Builtin::Min.eval_math(&[Value::Int(3), Value::Int(5)]),
            Value::Int(3)
        );
        assert_eq!(
            Builtin::Max.eval_math(&[Value::Float(3.0), Value::Float(5.0)]),
            Value::Float(5.0)
        );
        assert_eq!(
            Builtin::Clamp.eval_math(&[Value::Float(7.0), Value::Float(0.0), Value::Float(1.0)]),
            Value::Float(1.0)
        );
    }

    #[test]
    fn double_arguments_produce_double_results() {
        let r = Builtin::Sqrt.eval_math(&[Value::Double(2.0)]);
        assert_eq!(r.scalar_type(), ScalarType::Double);
    }

    #[test]
    fn flop_costs_are_positive_for_math() {
        assert!(Builtin::Exp.flop_cost() > Builtin::Fabs.flop_cost());
        assert_eq!(Builtin::GetGlobalId.flop_cost(), 0.0);
    }
}
