//! The (very small) type system of the kernel language.

use std::fmt;

/// Scalar types supported by the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit IEEE float (`float`).
    Float,
    /// 64-bit IEEE float (`double`).
    Double,
    /// 32-bit signed integer (`int`).
    Int,
    /// 32-bit unsigned integer (`uint`, `size_t`).
    Uint,
    /// Boolean (`bool`).
    Bool,
}

impl ScalarType {
    /// Size of one element of this type in bytes (as stored in a global
    /// buffer).
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarType::Float | ScalarType::Int | ScalarType::Uint => 4,
            ScalarType::Double => 8,
            ScalarType::Bool => 1,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float | ScalarType::Double)
    }

    /// Whether the type is an integer type (`int` or `uint`).
    pub fn is_integer(self) -> bool {
        matches!(self, ScalarType::Int | ScalarType::Uint)
    }

    /// The "wider" of two scalar types for the purposes of usual arithmetic
    /// conversions: float beats int, double beats float, uint and int unify
    /// to int (we do not model C's unsigned promotion subtleties).
    pub fn unify(self, other: ScalarType) -> ScalarType {
        use ScalarType::*;
        match (self, other) {
            (Double, _) | (_, Double) => Double,
            (Float, _) | (_, Float) => Float,
            (Uint, Uint) => Uint,
            (Bool, Bool) => Bool,
            _ => Int,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Float => "float",
            ScalarType::Double => "double",
            ScalarType::Int => "int",
            ScalarType::Uint => "uint",
            ScalarType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A full type: either a scalar value, a pointer to global memory holding
/// scalars, or `void` (function return only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar value.
    Scalar(ScalarType),
    /// A pointer into global memory (`__global T*`).
    GlobalPtr(ScalarType),
    /// No value; only valid as a function return type.
    Void,
}

impl Type {
    /// Whether the type is a global pointer.
    pub fn is_pointer(self) -> bool {
        matches!(self, Type::GlobalPtr(_))
    }

    /// Whether the type is `void`.
    pub fn is_void(self) -> bool {
        matches!(self, Type::Void)
    }

    /// The scalar component of the type (the pointee for pointers).
    ///
    /// For `void` this returns `Int` as an arbitrary placeholder; callers
    /// check [`Type::is_void`] first.
    pub fn scalar(self) -> ScalarType {
        match self {
            Type::Scalar(s) | Type::GlobalPtr(s) => s,
            Type::Void => ScalarType::Int,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::GlobalPtr(s) => write!(f, "__global {s}*"),
            Type::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(ScalarType::Float.size_bytes(), 4);
        assert_eq!(ScalarType::Double.size_bytes(), 8);
        assert_eq!(ScalarType::Int.size_bytes(), 4);
        assert_eq!(ScalarType::Bool.size_bytes(), 1);
    }

    #[test]
    fn unification_prefers_floats() {
        assert_eq!(ScalarType::Int.unify(ScalarType::Float), ScalarType::Float);
        assert_eq!(
            ScalarType::Float.unify(ScalarType::Double),
            ScalarType::Double
        );
        assert_eq!(ScalarType::Uint.unify(ScalarType::Int), ScalarType::Int);
        assert_eq!(ScalarType::Uint.unify(ScalarType::Uint), ScalarType::Uint);
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Scalar(ScalarType::Float).to_string(), "float");
        assert_eq!(
            Type::GlobalPtr(ScalarType::Int).to_string(),
            "__global int*"
        );
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn pointer_predicates() {
        assert!(Type::GlobalPtr(ScalarType::Float).is_pointer());
        assert!(!Type::Scalar(ScalarType::Float).is_pointer());
        assert!(Type::Void.is_void());
        assert_eq!(Type::GlobalPtr(ScalarType::Uint).scalar(), ScalarType::Uint);
    }
}
