//! Static per-work-item cost estimation.
//!
//! The device simulator (`oclsim`) and SkelCL's static scheduler (paper,
//! Section V) need an *analytical* model of how expensive one work-item of a
//! kernel is. SkelCL's advantage over raw OpenCL — as argued in the paper —
//! is that the skeleton structure is known, so only the user-defined function
//! needs to be analysed. This module walks a function's AST and counts
//!
//! * floating point operations (`flops`),
//! * global-memory traffic in bytes (`global_bytes`),
//! * an estimate of executed statements (`ops`), used as a proxy for integer
//!   and control-flow work.
//!
//! Branches are averaged (both sides weighted 0.5); loops with a
//! statically-recognisable trip count of the form `for (i = 0; i < N; i++)`
//! where `N` is a literal are multiplied out, otherwise a default trip count
//! is assumed. This is deliberately simple — it is a *prediction* model, and
//! its accuracy is evaluated against measured virtual time in the scheduler
//! benchmarks.

use crate::ast::*;
use crate::builtins::Builtin;
use crate::diag::KernelError;

/// Default assumed trip count for loops whose bounds are not literal.
pub const DEFAULT_TRIP_COUNT: f64 = 16.0;

/// Estimated per-work-item cost of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Floating-point operations per work-item.
    pub flops: f64,
    /// Bytes of global memory traffic (reads + writes) per work-item.
    pub global_bytes: f64,
    /// Total expression/statement evaluations (a proxy for "other work").
    pub ops: f64,
}

impl CostEstimate {
    /// Sum of two estimates.
    pub fn add(self, other: CostEstimate) -> CostEstimate {
        CostEstimate {
            flops: self.flops + other.flops,
            global_bytes: self.global_bytes + other.global_bytes,
            ops: self.ops + other.ops,
        }
    }

    /// Scale an estimate by a factor (used for loops and branch averaging).
    pub fn scale(self, factor: f64) -> CostEstimate {
        CostEstimate {
            flops: self.flops * factor,
            global_bytes: self.global_bytes * factor,
            ops: self.ops * factor,
        }
    }
}

/// Estimate the per-invocation cost of `func` within `unit` (callees are
/// resolved within the same unit; recursion is cut off at depth 8).
pub fn estimate_function(unit: &TranslationUnit, func: &Function) -> CostEstimate {
    let mut est = Estimator { unit, depth: 0 };
    est.block(&func.body)
}

struct Estimator<'u> {
    unit: &'u TranslationUnit,
    depth: usize,
}

impl<'u> Estimator<'u> {
    fn block(&mut self, block: &Block) -> CostEstimate {
        block
            .stmts
            .iter()
            .map(|s| self.stmt(s))
            .fold(CostEstimate::default(), CostEstimate::add)
    }

    fn stmt(&mut self, stmt: &Stmt) -> CostEstimate {
        let base = CostEstimate {
            ops: 1.0,
            ..Default::default()
        };
        match stmt {
            Stmt::Decl { init, .. } => match init {
                Some(e) => base.add(self.expr(e)),
                None => base,
            },
            Stmt::Expr(e) => base.add(self.expr(e)),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => base
                .add(self.expr(cond))
                .add(self.block(then_block).scale(0.5))
                .add(self.block(else_block).scale(0.5)),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let trips = cond
                    .as_ref()
                    .and_then(literal_trip_count)
                    .unwrap_or(DEFAULT_TRIP_COUNT);
                let mut per_iter = self.block(body);
                if let Some(c) = cond {
                    per_iter = per_iter.add(self.expr(c));
                }
                if let Some(s) = step {
                    per_iter = per_iter.add(self.expr(s));
                }
                let init_cost = init.as_ref().map(|s| self.stmt(s)).unwrap_or_default();
                base.add(init_cost).add(per_iter.scale(trips))
            }
            Stmt::While { cond, body } => {
                let per_iter = self.block(body).add(self.expr(cond));
                base.add(per_iter.scale(DEFAULT_TRIP_COUNT))
            }
            Stmt::Return(Some(e), _) => base.add(self.expr(e)),
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => base,
            Stmt::Block(b) => base.add(self.block(b)),
        }
    }

    fn expr(&mut self, expr: &Expr) -> CostEstimate {
        let one_op = CostEstimate {
            ops: 1.0,
            ..Default::default()
        };
        match expr {
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::BoolLit(..) | Expr::Var(..) => {
                CostEstimate::default()
            }
            Expr::Index { index, .. } => {
                // One global-memory read of 4 bytes (all supported scalar
                // buffer element types are 4 bytes except double, which we
                // cannot distinguish here without a symbol table; 4 is a fair
                // lower bound for the model).
                self.expr(index).add(CostEstimate {
                    global_bytes: 4.0,
                    ops: 1.0,
                    ..Default::default()
                })
            }
            Expr::Unary { operand, .. } => self.expr(operand).add(CostEstimate {
                flops: 1.0,
                ops: 1.0,
                ..Default::default()
            }),
            Expr::Binary { op, lhs, rhs, .. } => {
                let flops = if op.is_comparison() { 0.5 } else { 1.0 };
                self.expr(lhs).add(self.expr(rhs)).add(CostEstimate {
                    flops,
                    ops: 1.0,
                    ..Default::default()
                })
            }
            Expr::Call { callee, args, .. } => {
                let args_cost = args
                    .iter()
                    .map(|a| self.expr(a))
                    .fold(CostEstimate::default(), CostEstimate::add);
                if let Some(b) = Builtin::from_name(callee) {
                    // The stencil neighbour access is a global load of one
                    // 4-byte element plus its address arithmetic.
                    let (global_bytes, ops) = if b.is_stencil_fn() {
                        (4.0, 2.0)
                    } else {
                        (0.0, 1.0)
                    };
                    return args_cost.add(CostEstimate {
                        flops: b.flop_cost(),
                        global_bytes,
                        ops,
                    });
                }
                if self.depth >= 8 {
                    return args_cost.add(one_op);
                }
                match self.unit.function(callee) {
                    Some(f) => {
                        self.depth += 1;
                        let inner = self.block(&f.body);
                        self.depth -= 1;
                        args_cost.add(inner).add(one_op)
                    }
                    None => args_cost.add(one_op),
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => self
                .expr(cond)
                .add(self.expr(then_expr).scale(0.5))
                .add(self.expr(else_expr).scale(0.5))
                .add(one_op),
            Expr::Assign { target, value, .. } => {
                let write = match target {
                    LValue::Index { index, .. } => self.expr(index).add(CostEstimate {
                        global_bytes: 4.0,
                        ops: 1.0,
                        ..Default::default()
                    }),
                    LValue::Var(..) => one_op,
                };
                self.expr(value).add(write)
            }
            Expr::IncDec { target, .. } => match target {
                LValue::Index { index, .. } => self.expr(index).add(CostEstimate {
                    global_bytes: 8.0,
                    flops: 1.0,
                    ops: 1.0,
                }),
                LValue::Var(..) => CostEstimate {
                    flops: 1.0,
                    ops: 1.0,
                    ..Default::default()
                },
            },
            Expr::Cast { operand, .. } => self.expr(operand).add(one_op),
        }
    }
}

/// Recognise conditions of the form `i < N` / `i <= N` with a literal `N`
/// and return the implied trip count.
fn literal_trip_count(cond: &Expr) -> Option<f64> {
    if let Expr::Binary { op, rhs, .. } = cond {
        let bound = match rhs.as_ref() {
            Expr::IntLit(v, _) => *v as f64,
            Expr::FloatLit(v, _) => *v,
            _ => return None,
        };
        return match op {
            BinOp::Lt => Some(bound.max(0.0)),
            BinOp::Le => Some((bound + 1.0).max(0.0)),
            _ => None,
        };
    }
    None
}

/// Estimate the cost of the function named `name` inside a parsed unit;
/// convenience wrapper used by SkelCL to analyse user-defined functions
/// (not whole kernels), mirroring the paper's statement that performance
/// prediction "is only used for the user-defined functions rather than the
/// whole program code".
pub fn estimate_named(unit: &TranslationUnit, name: &str) -> Option<CostEstimate> {
    unit.function(name).map(|f| estimate_function(unit, f))
}

/// Estimate the per-invocation cost of function `name` directly from source,
/// without the caller holding a parsed unit. Returns `Ok(None)` when the
/// source parses but defines no function called `name`.
///
/// This is the convenience surface the skeleton library's fusion cost model
/// uses: it needs per-stage figures for UDF fragments that are never built
/// into a standalone program.
pub fn estimate_source(source: &str, name: &str) -> Result<Option<CostEstimate>, KernelError> {
    let tokens = crate::lexer::lex(source)?;
    let unit = crate::parser::parse(&tokens, source)?;
    Ok(estimate_named(&unit, name))
}

impl CostEstimate {
    /// Collapse the estimate to a single FLOP-equivalent figure, weighting
    /// non-floating-point statement work (`ops`) at a quarter FLOP each —
    /// the same weighting the simulated OpenCL runtime uses when it turns
    /// estimates and measured statement counts into a per-item cost hint.
    /// Used to compare fused vs split pipeline stages on one axis.
    pub fn flops_equivalent(&self) -> f64 {
        self.flops + 0.25 * self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::check;

    fn unit(src: &str) -> TranslationUnit {
        check(parse(&lex(src).unwrap(), src).unwrap()).unwrap()
    }

    #[test]
    fn saxpy_udf_costs_two_flops() {
        let u = unit("float func(float x, float y, float a) { return a * x + y; }");
        let c = estimate_named(&u, "func").unwrap();
        assert!((c.flops - 2.0).abs() < 1e-9, "flops = {}", c.flops);
        assert_eq!(c.global_bytes, 0.0);
    }

    #[test]
    fn literal_for_loops_multiply_out() {
        let u = unit(
            r#"
            float f(float x) {
                float acc = 0.0f;
                for (int i = 0; i < 100; i++) { acc += x * x; }
                return acc;
            }
        "#,
        );
        let c = estimate_named(&u, "f").unwrap();
        // Each iteration has at least 2 flops (mul + add-assign contributes
        // via the binary op inside), times 100 iterations.
        assert!(c.flops >= 150.0, "flops = {}", c.flops);
    }

    #[test]
    fn unknown_loop_bounds_use_default_trip_count() {
        let u = unit(
            r#"
            float f(float x, int n) {
                float acc = 0.0f;
                int i = 0;
                while (i < n) { acc += x; i++; }
                return acc;
            }
        "#,
        );
        let c = estimate_named(&u, "f").unwrap();
        assert!(c.flops >= DEFAULT_TRIP_COUNT);
    }

    #[test]
    fn global_memory_traffic_is_counted() {
        let u = unit(
            r#"
            __kernel void copy(__global float* a, __global float* b, int n) {
                int i = get_global_id(0);
                if (i < n) { b[i] = a[i]; }
            }
        "#,
        );
        let f = u.function("copy").unwrap();
        let c = estimate_function(&u, f);
        // One read + one write, branch-averaged at 0.5 each -> 4 bytes total.
        assert!(c.global_bytes >= 4.0 - 1e-9, "bytes = {}", c.global_bytes);
    }

    #[test]
    fn builtin_costs_flow_through_calls() {
        let u = unit("float f(float x) { return exp(x) + sqrt(x); }");
        let c = estimate_named(&u, "f").unwrap();
        assert!(c.flops >= 14.0);
    }

    #[test]
    fn callee_costs_are_inlined() {
        let u = unit(
            r#"
            float square(float x) { return x * x; }
            float f(float x) { return square(x) + square(x); }
        "#,
        );
        let inner = estimate_named(&u, "square").unwrap();
        let outer = estimate_named(&u, "f").unwrap();
        assert!(outer.flops >= 2.0 * inner.flops);
    }
}
