//! Runtime values of the kernel interpreter.

use std::fmt;

use crate::types::ScalarType;

/// A runtime scalar value.
///
/// The interpreter performs the usual arithmetic conversions of the source
/// language: integer values are promoted to floats when combined with float
/// operands, and booleans promote to `int` in arithmetic contexts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `float` value (stored as `f32`).
    Float(f32),
    /// `double` value.
    Double(f64),
    /// `int` value.
    Int(i32),
    /// `uint` value.
    Uint(u32),
    /// `bool` value.
    Bool(bool),
}

impl Value {
    /// The scalar type of the value.
    pub fn scalar_type(self) -> ScalarType {
        match self {
            Value::Float(_) => ScalarType::Float,
            Value::Double(_) => ScalarType::Double,
            Value::Int(_) => ScalarType::Int,
            Value::Uint(_) => ScalarType::Uint,
            Value::Bool(_) => ScalarType::Bool,
        }
    }

    /// Interpret the value as an `f64` (used for all float arithmetic).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Float(v) => v as f64,
            Value::Double(v) => v,
            Value::Int(v) => v as f64,
            Value::Uint(v) => v as f64,
            Value::Bool(v) => {
                if v {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Interpret the value as an `i64` (used for all integer arithmetic and
    /// for buffer indexing).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Float(v) => v as i64,
            Value::Double(v) => v as i64,
            Value::Int(v) => v as i64,
            Value::Uint(v) => v as i64,
            Value::Bool(v) => i64::from(v),
        }
    }

    /// Interpret the value as a boolean (C semantics: non-zero is true).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            Value::Int(v) => v != 0,
            Value::Uint(v) => v != 0,
            Value::Float(v) => v != 0.0,
            Value::Double(v) => v != 0.0,
        }
    }

    /// Convert (possibly lossily, with C semantics) to the given scalar type.
    pub fn convert_to(self, ty: ScalarType) -> Value {
        match ty {
            ScalarType::Float => Value::Float(self.as_f64() as f32),
            ScalarType::Double => Value::Double(self.as_f64()),
            ScalarType::Int => Value::Int(self.as_i64() as i32),
            ScalarType::Uint => Value::Uint(self.as_i64() as u32),
            ScalarType::Bool => Value::Bool(self.as_bool()),
        }
    }

    /// The zero value of a scalar type (used to initialise declarations
    /// without an initialiser).
    pub fn zero(ty: ScalarType) -> Value {
        match ty {
            ScalarType::Float => Value::Float(0.0),
            ScalarType::Double => Value::Double(0.0),
            ScalarType::Int => Value::Int(0),
            ScalarType::Uint => Value::Uint(0),
            ScalarType::Bool => Value::Bool(false),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Uint(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Uint(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_follow_c_semantics() {
        assert_eq!(Value::Float(3.7).as_i64(), 3);
        assert_eq!(Value::Int(-2).as_f64(), -2.0);
        assert!(Value::Int(5).as_bool());
        assert!(!Value::Float(0.0).as_bool());
        assert_eq!(
            Value::Double(1.5).convert_to(ScalarType::Int),
            Value::Int(1)
        );
        assert_eq!(
            Value::Int(7).convert_to(ScalarType::Float),
            Value::Float(7.0)
        );
        assert_eq!(
            Value::Uint(3).convert_to(ScalarType::Bool),
            Value::Bool(true)
        );
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(ScalarType::Float), Value::Float(0.0));
        assert_eq!(Value::zero(ScalarType::Int), Value::Int(0));
        assert_eq!(Value::zero(ScalarType::Bool), Value::Bool(false));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1.0f32), Value::Float(1.0));
        assert_eq!(Value::from(2i32), Value::Int(2));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
