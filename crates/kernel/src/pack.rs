//! Packing many small jobs into one NDRange launch.
//!
//! The serving layer coalesces same-kernel jobs from many tenants into a
//! single launch: each job's elements are laid out back to back in one
//! buffer per kernel argument, the kernel runs once over the combined
//! element count, and each job's result is sliced back out of the packed
//! output by its element span. [`JobSpans`] is the bookkeeping for that
//! layout: it records where each job starts in the packed range and how
//! many elements it owns.
//!
//! The payoff is the same one the lane-batched VM gets from
//! [`crate::vm::BATCH_LANES`]-wide execution: launching one kernel over
//! `total` elements fills whole lanes, while launching each small job on
//! its own pays per-launch overhead and leaves lanes idle.
//! [`JobSpans::batches_packed`] / [`JobSpans::batches_separate`] quantify
//! exactly that difference in units of VM batches.

use crate::vm::BATCH_LANES;

/// Element layout of jobs packed back to back into one NDRange.
///
/// Built by pushing each job's element count in submission order; the span
/// of job `i` is `[offset(i), offset(i) + len(i))` within the packed range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobSpans {
    offsets: Vec<usize>,
    lens: Vec<usize>,
    total: usize,
}

impl JobSpans {
    /// An empty layout.
    pub fn new() -> Self {
        JobSpans::default()
    }

    /// Build a layout from per-job element counts, in submission order.
    pub fn from_lens(lens: impl IntoIterator<Item = usize>) -> Self {
        let mut spans = JobSpans::new();
        for len in lens {
            spans.push(len);
        }
        spans
    }

    /// Append a job of `len` elements; returns its element offset within
    /// the packed range.
    pub fn push(&mut self, len: usize) -> usize {
        let offset = self.total;
        self.offsets.push(offset);
        self.lens.push(len);
        self.total += len;
        offset
    }

    /// Number of jobs in the layout.
    pub fn jobs(&self) -> usize {
        self.lens.len()
    }

    /// Whether the layout holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Total packed element count — the NDRange global size of the one
    /// coalesced launch.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The element span `(offset, len)` of job `index`.
    pub fn span(&self, index: usize) -> (usize, usize) {
        (self.offsets[index], self.lens[index])
    }

    /// Slice job `index`'s elements out of the packed output.
    pub fn slice<'a, T>(&self, index: usize, packed: &'a [T]) -> &'a [T] {
        let (offset, len) = self.span(index);
        &packed[offset..offset + len]
    }

    /// Split the packed output into one owned `Vec` per job, in job order.
    /// Consumes the packed buffer; panics if its length is not
    /// [`JobSpans::total`].
    pub fn unpack<T: Clone>(&self, packed: Vec<T>) -> Vec<Vec<T>> {
        assert_eq!(
            packed.len(),
            self.total,
            "packed output length must equal the layout total"
        );
        (0..self.jobs())
            .map(|i| self.slice(i, &packed).to_vec())
            .collect()
    }

    /// VM batches needed to execute the jobs as ONE packed launch:
    /// `ceil(total / BATCH_LANES)`.
    pub fn batches_packed(&self) -> usize {
        self.total.div_ceil(BATCH_LANES)
    }

    /// VM batches needed to execute each job as its OWN launch:
    /// `sum(ceil(len_i / BATCH_LANES))`. Each separate launch rounds its
    /// tail batch up on its own, so this is never smaller than
    /// [`JobSpans::batches_packed`].
    pub fn batches_separate(&self) -> usize {
        self.lens.iter().map(|&len| len.div_ceil(BATCH_LANES)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_contiguous_and_in_order() {
        let spans = JobSpans::from_lens([3, 5, 2]);
        assert_eq!(spans.jobs(), 3);
        assert_eq!(spans.total(), 10);
        assert_eq!(spans.span(0), (0, 3));
        assert_eq!(spans.span(1), (3, 5));
        assert_eq!(spans.span(2), (8, 2));
    }

    #[test]
    fn slicing_recovers_each_jobs_elements() {
        let spans = JobSpans::from_lens([2, 3]);
        let packed = vec![10, 11, 20, 21, 22];
        assert_eq!(spans.slice(0, &packed), &[10, 11]);
        assert_eq!(spans.slice(1, &packed), &[20, 21, 22]);
        assert_eq!(spans.unpack(packed), vec![vec![10, 11], vec![20, 21, 22]]);
    }

    #[test]
    fn packed_launch_needs_no_more_batches_than_separate_ones() {
        // 64 one-element jobs: packed they fill exactly one lane batch,
        // separate each pays a whole batch of its own.
        let spans = JobSpans::from_lens(vec![1; BATCH_LANES]);
        assert_eq!(spans.batches_packed(), 1);
        assert_eq!(spans.batches_separate(), BATCH_LANES);

        // Mixed sizes: packed rounds up once, separate rounds up per job.
        let spans = JobSpans::from_lens([BATCH_LANES / 2, BATCH_LANES / 2, 1]);
        assert_eq!(spans.batches_packed(), 2);
        assert_eq!(spans.batches_separate(), 3);
    }

    #[test]
    fn empty_layout_is_well_formed() {
        let spans = JobSpans::new();
        assert!(spans.is_empty());
        assert_eq!(spans.total(), 0);
        assert_eq!(spans.batches_packed(), 0);
        assert_eq!(spans.batches_separate(), 0);
        assert_eq!(spans.unpack(Vec::<i32>::new()), Vec::<Vec<i32>>::new());
    }

    #[test]
    fn push_returns_the_jobs_offset() {
        let mut spans = JobSpans::new();
        assert_eq!(spans.push(4), 0);
        assert_eq!(spans.push(2), 4);
        assert_eq!(spans.push(7), 6);
    }
}
