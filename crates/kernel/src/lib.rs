//! # skelcl-kernel — an OpenCL-C-subset kernel language
//!
//! SkelCL (Steuwer, Kegel, Gorlatch; IPDPSW 2012) customises its algorithmic
//! skeletons with *user-defined functions passed as plain source strings*.
//! The library merges the user function with pre-implemented skeleton code,
//! producing a valid OpenCL kernel which is compiled at runtime by the OpenCL
//! implementation.
//!
//! This crate reproduces that mechanism without a GPU: it implements a small
//! OpenCL-C-like language — enough for the kernels that appear in the paper
//! (SAXPY, element-wise updates, reductions, scans, Mandelbrot) — consisting
//! of
//!
//! * a [`lexer`] and [`parser`] producing an [`ast`],
//! * a [`sema`] pass (symbol resolution and type checking),
//! * a [`compile`] stage lowering the checked AST into flat, register-based
//!   bytecode — names resolved to numbered slots, control flow lowered to
//!   jumps, FLOP/byte costs attributed per instruction at compile time,
//! * a [`vm`] (register-based bytecode VM) that executes a kernel for one
//!   work-item at a time against argument [`value::Value`]s and buffer views
//!   — the fast engine behind every launch,
//! * an [`interp`] (tree-walking interpreter) retained as the
//!   differential-testing oracle for the VM,
//! * a static [`cost`] estimator that counts floating-point and memory
//!   operations per work-item, used by the simulator's analytical cost model,
//! * a [`compose`] module with token-level identifier renaming and
//!   definition listing, the substrate for cross-stage UDF fusion in the
//!   skeleton library's lazy `plan` subsystem.
//!
//! The entry point is [`Program::build`], mirroring `clBuildProgram`: it
//! parses, checks and **compiles to bytecode once**, returning the compiled
//! program from which [`KernelHandle`]s can be looked up by name; every
//! launch then runs flat bytecode instead of re-walking the AST.
//!
//! ```
//! use skelcl_kernel::{Program, value::Value, interp::ArgBinding};
//!
//! let src = r#"
//!     float func(float x, float y, float a) { return a * x + y; }
//!     __kernel void SKELCL_ZIP(__global float* left, __global float* right,
//!                              __global float* out, int n, float a) {
//!         int gid = get_global_id(0);
//!         if (gid < n) { out[gid] = func(left[gid], right[gid], a); }
//!     }
//! "#;
//! let program = Program::build(src).unwrap();
//! let kernel = program.kernel("SKELCL_ZIP").unwrap();
//!
//! let mut left = vec![1.0f32, 2.0, 3.0];
//! let mut right = vec![10.0f32, 20.0, 30.0];
//! let mut out = vec![0.0f32; 3];
//! let mut args = vec![
//!     ArgBinding::buffer_f32(&mut left),
//!     ArgBinding::buffer_f32(&mut right),
//!     ArgBinding::buffer_f32(&mut out),
//!     ArgBinding::Scalar(Value::Int(3)),
//!     ArgBinding::Scalar(Value::Float(2.0)),
//! ];
//! program.run_ndrange(&kernel, 3, &mut args).unwrap();
//! assert_eq!(out, vec![12.0, 24.0, 36.0]);
//! ```

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod compose;
pub mod cost;
pub mod diag;
pub mod interp;
pub mod lexer;
pub mod native;
pub mod pack;
pub mod parser;
pub mod sema;
pub mod token;
pub mod types;
pub mod value;
pub mod vm;

use std::sync::Arc;

use crate::ast::TranslationUnit;
use crate::compile::CompiledUnit;
use crate::diag::KernelError;
use crate::interp::{ArgBinding, Interpreter, WorkItem};
use crate::vm::Vm;

pub use crate::native::Tier;

/// A compiled kernel program: the checked AST of a translation unit plus its
/// bytecode lowering and the list of `__kernel` entry points.
///
/// This is the analogue of an OpenCL `cl_program` after `clBuildProgram`:
/// the bytecode is produced once at build time and shared (via `Arc`) by
/// every clone of the program, so repeated launches pay no per-call
/// compilation or name-resolution cost.
#[derive(Debug, Clone)]
pub struct Program {
    unit: Arc<TranslationUnit>,
    compiled: Arc<CompiledUnit>,
    source: Arc<str>,
    native: Arc<native::NativeState>,
}

/// Per-launch execution telemetry returned by
/// [`Program::run_ndrange_traced`]: which tier actually ran and what the
/// native tier did, feeding the simulator's per-device counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchTrace {
    /// The tier that executed the launch (never [`Tier::Auto`]: the
    /// heuristic's decision is resolved before running).
    pub tier: Tier,
    /// Whether this launch performed the kernel's native compilation (at
    /// most one launch per kernel reports `true`).
    pub native_compiled: bool,
    /// Wall-clock nanoseconds of the native compilation, reported on every
    /// native launch of the kernel (the artifact is cached).
    pub native_compile_ns: u64,
    /// Lane batches completed by the native tier.
    pub native_batches: u64,
    /// Lane batches the native tier aborted and replayed through the scalar
    /// VM (divergence, hazards, or runtime errors).
    pub replayed_batches: u64,
    /// Why the kernel fell back to the batched VM despite a native request
    /// (the bytecode shape is ineligible), if it did.
    pub fallback: Option<String>,
}

/// A handle to a `__kernel` entry point inside a [`Program`]
/// (the analogue of a `cl_kernel`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelHandle {
    /// Name of the kernel function.
    pub name: String,
    /// Index of the function in the translation unit.
    pub(crate) index: usize,
    /// Parameter signature (for argument validation by callers).
    pub params: Vec<KernelParam>,
}

impl KernelHandle {
    /// Index of the kernel's function in the translation unit (also valid
    /// into [`compile::CompiledUnit::functions`]), for callers driving the
    /// [`vm::Vm`] or [`interp::Interpreter`] directly.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Description of one kernel parameter, exposed so that runtimes can validate
/// argument bindings before launching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelParam {
    /// Parameter name as written in the source.
    pub name: String,
    /// `true` if the parameter is a global-memory pointer (a buffer).
    pub is_buffer: bool,
    /// Scalar element type of the parameter (the pointee type for buffers).
    pub ty: types::ScalarType,
}

impl Program {
    /// Parse, resolve and type-check `source`, producing a runnable program.
    ///
    /// Mirrors `clCreateProgramWithSource` + `clBuildProgram`.
    pub fn build(source: &str) -> Result<Self, KernelError> {
        let tokens = lexer::lex(source)?;
        let unit = parser::parse(&tokens, source)?;
        let unit = sema::check(unit)?;
        let compiled = compile::compile(&unit)?;
        let initial = match std::env::var("SKELCL_KERNEL_TIER") {
            Ok(s) => Some(
                Tier::parse(&s)
                    .map_err(|e| KernelError::run(format!("SKELCL_KERNEL_TIER: {}", e.message)))?,
            ),
            Err(_) => None,
        };
        let num_functions = unit.functions.len();
        Ok(Program {
            unit: Arc::new(unit),
            compiled: Arc::new(compiled),
            source: Arc::from(source),
            native: Arc::new(native::NativeState::new(num_functions, initial)),
        })
    }

    /// Select the execution [`Tier`] for every subsequent launch of this
    /// program (shared across clones). [`Tier::Auto`] — the default — lets
    /// the per-kernel heuristic decide.
    pub fn set_tier(&self, tier: Tier) {
        self.native.set_tier(tier);
    }

    /// The currently selected execution [`Tier`].
    pub fn tier(&self) -> Tier {
        self.native.tier()
    }

    /// Compile (or fetch the cached) native-tier artifact for `kernel`,
    /// exposing the closure listing or the ineligibility reason. Used by
    /// tooling (`examples/dump_bytecode.rs`); launches call this lazily.
    pub fn native_outcome(&self, kernel: &KernelHandle) -> &native::CompileOutcome {
        self.native
            .kernel(kernel.index)
            .get_or_compile(&self.compiled, kernel.index)
            .0
    }

    /// The original source code the program was built from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The checked translation unit.
    pub fn unit(&self) -> &TranslationUnit {
        &self.unit
    }

    /// The bytecode lowering of the translation unit.
    pub fn compiled(&self) -> &CompiledUnit {
        &self.compiled
    }

    /// Names of all `__kernel` entry points, in declaration order.
    pub fn kernel_names(&self) -> Vec<String> {
        self.unit
            .functions
            .iter()
            .filter(|f| f.is_kernel)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Look up a kernel entry point by name.
    pub fn kernel(&self, name: &str) -> Result<KernelHandle, KernelError> {
        let (index, func) = self
            .unit
            .functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.is_kernel && f.name == name)
            .ok_or_else(|| KernelError::no_such_kernel(name))?;
        let params = func
            .params
            .iter()
            .map(|p| KernelParam {
                name: p.name.clone(),
                is_buffer: p.ty.is_pointer(),
                ty: p.ty.scalar(),
            })
            .collect();
        Ok(KernelHandle {
            name: name.to_string(),
            index,
            params,
        })
    }

    /// Estimate the per-work-item cost of a kernel (floating point operations
    /// and bytes of global memory traffic). Used by the simulator's
    /// analytical device model and by SkelCL's scheduler (paper, Section V).
    pub fn cost_estimate(&self, kernel: &KernelHandle) -> cost::CostEstimate {
        cost::estimate_function(&self.unit, &self.unit.functions[kernel.index])
    }

    /// Execute `kernel` for a single work-item (through the bytecode VM).
    ///
    /// `args` must match the kernel signature (validated). The bindings are
    /// read and written in place.
    pub fn run_work_item(
        &self,
        kernel: &KernelHandle,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let mut vm = Vm::new(&self.compiled);
        vm.run_kernel(kernel.index, item, args)
    }

    /// Execute `kernel` over a one-dimensional NDRange of `global_size`
    /// work-items, sequentially through the bytecode VM. This is the
    /// execution path used by the device simulator (`oclsim`), which models
    /// hardware parallelism in virtual time rather than in host threads.
    pub fn run_ndrange(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        self.run_ndrange_measured(kernel, global_size, args)
            .map(|_| ())
    }

    /// Execute `kernel` over a one-dimensional NDRange like
    /// [`Program::run_ndrange`], and additionally return the *measured*
    /// execution statistics (flops, global-memory bytes, statement count)
    /// summed over all work-items. The device simulator uses these measured
    /// counts — rather than the static [`Program::cost_estimate`] — to charge
    /// virtual time, so data-dependent loops are accounted for exactly.
    ///
    /// Work-items run through the bytecode VM in lane batches of
    /// [`vm::BATCH_LANES`] (see the [`vm`] module docs — batching is
    /// semantically invisible: results, stats and errors are identical to
    /// the one-item-at-a-time loop); argument validation happens once per
    /// launch instead of once per item.
    pub fn run_ndrange_measured(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<interp::ExecStats, KernelError> {
        self.run_ndrange_traced(kernel, global_size, args)
            .map(|(stats, _)| stats)
    }

    /// Tier-dispatching twin of [`Program::run_ndrange_measured`] that also
    /// returns a [`LaunchTrace`] describing which engine ran and what the
    /// native tier did. The simulator uses the trace to feed per-device tier
    /// counters; results, stats and errors are identical across tiers.
    pub fn run_ndrange_traced(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(interp::ExecStats, LaunchTrace), KernelError> {
        let prior = self.native.kernel(kernel.index).note_launch();
        let tier = self.native.tier();
        let mut trace = LaunchTrace {
            tier,
            ..LaunchTrace::default()
        };
        let stats = match tier {
            Tier::Interp => self.run_ndrange_measured_interp(kernel, global_size, args)?,
            Tier::Scalar => self.run_ndrange_measured_scalar(kernel, global_size, args)?,
            Tier::Batched => self.run_ndrange_measured_batched(kernel, global_size, args)?,
            Tier::Native => self.run_ndrange_native(kernel, global_size, args, &mut trace)?,
            Tier::Auto => {
                if native::auto_graduates(prior, global_size) {
                    self.run_ndrange_native(kernel, global_size, args, &mut trace)?
                } else {
                    trace.tier = Tier::Batched;
                    self.run_ndrange_measured_batched(kernel, global_size, args)?
                }
            }
        };
        Ok((stats, trace))
    }

    /// Execute a launch on the batched VM unconditionally (the pre-native
    /// default path), bypassing tier selection. Benchmarks and differential
    /// suites use this to pin the batched engine specifically.
    pub fn run_ndrange_measured_batched(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<interp::ExecStats, KernelError> {
        let mut vm = Vm::new(&self.compiled);
        vm.bind_kernel(kernel.index, args)?;
        let mut items = [WorkItem::linear(0, global_size); vm::BATCH_LANES];
        let mut gid = 0;
        while gid < global_size {
            let n = (global_size - gid).min(vm::BATCH_LANES);
            for (k, slot) in items.iter_mut().enumerate().take(n) {
                *slot = WorkItem::linear(gid + k, global_size);
            }
            vm.run_batch(&items[..n], args)?;
            gid += n;
        }
        Ok(vm.stats())
    }

    /// Run a launch on the native tier, falling back to the batched VM when
    /// the kernel's bytecode is ineligible (recorded in `trace.fallback`).
    /// Aborted batches (divergence, hazards, runtime errors) are rolled back
    /// and replayed through the scalar VM, which is authoritative for
    /// results, stats and error messages.
    fn run_ndrange_native(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
        trace: &mut LaunchTrace,
    ) -> Result<interp::ExecStats, KernelError> {
        let (outcome, first) = self
            .native
            .kernel(kernel.index)
            .get_or_compile(&self.compiled, kernel.index);
        trace.native_compiled = first;
        trace.native_compile_ns = outcome.compile_ns;
        let nk = match &outcome.result {
            Ok(nk) => Arc::clone(nk),
            Err(reason) => {
                trace.fallback = Some(reason.clone());
                trace.tier = Tier::Batched;
                return self.run_ndrange_measured_batched(kernel, global_size, args);
            }
        };
        trace.tier = Tier::Native;
        let mut vm = Vm::new(&self.compiled);
        vm.bind_kernel(kernel.index, args)?;
        let stencil = vm.stencil();
        let mut exec = native::NativeExec::new(nk);
        let mut native_stats = interp::ExecStats::default();
        let mut items = [WorkItem::linear(0, global_size); vm::BATCH_LANES];
        let mut gid = 0;
        let mut bailed = false;
        while gid < global_size {
            let n = (global_size - gid).min(vm::BATCH_LANES);
            for (k, slot) in items.iter_mut().enumerate().take(n) {
                *slot = WorkItem::linear(gid + k, global_size);
            }
            if bailed {
                vm.run_batch(&items[..n], args)?;
            } else {
                match exec.execute_batch(
                    &items[..n],
                    args,
                    stencil,
                    vm.max_loop_iterations,
                    &mut native_stats,
                ) {
                    Ok(()) => trace.native_batches += 1,
                    Err(abort) => {
                        exec.rollback(args);
                        trace.replayed_batches += 1;
                        for item in &items[..n] {
                            vm.run_item(*item, args)?;
                        }
                        if abort == native::NativeAbort::Bail {
                            // Cross-lane hazard or unsupported divergence:
                            // this kernel shape won't batch; finish the
                            // launch on the VM (which has its own finer
                            // rollback machinery).
                            bailed = true;
                        }
                    }
                }
            }
            gid += n;
        }
        // Both accumulators hold sums of dyadic per-instruction costs well
        // below 2^53, so adding them is exact regardless of order.
        let mut stats = vm.stats();
        stats.flops += native_stats.flops;
        stats.global_bytes += native_stats.global_bytes;
        stats.ops += native_stats.ops;
        Ok(stats)
    }

    /// Scalar (one-work-item-at-a-time) twin of
    /// [`Program::run_ndrange_measured`]. Semantically identical — the lane
    /// batching of the default path is invisible — and kept as a public
    /// entry point so benchmarks can quantify the batching win and the
    /// differential suites can pin both paths against the oracle.
    pub fn run_ndrange_measured_scalar(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<interp::ExecStats, KernelError> {
        let mut vm = Vm::new(&self.compiled);
        vm.bind_kernel(kernel.index, args)?;
        for gid in 0..global_size {
            vm.run_item(WorkItem::linear(gid, global_size), args)?;
        }
        Ok(vm.stats())
    }

    /// Execute `kernel` over an NDRange through the tree-walking
    /// interpreter. The interpreter is the differential-testing oracle for
    /// the bytecode VM — slower, but semantically authoritative; the
    /// property suite asserts both engines produce identical results and
    /// [`interp::ExecStats`].
    pub fn run_ndrange_interp(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        self.run_ndrange_measured_interp(kernel, global_size, args)
            .map(|_| ())
    }

    /// Run a *single* work-item of a larger NDRange through the interpreter
    /// oracle and return just that item's measured stats. The differential
    /// suites use this to rebuild a launch's totals strictly per item and
    /// assert the batched VM's per-batch accumulation equals the sum.
    pub fn run_ndrange_measured_interp_item(
        &self,
        kernel: &KernelHandle,
        global_id: usize,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<interp::ExecStats, KernelError> {
        let mut interp = Interpreter::new(&self.unit);
        interp.run_kernel(kernel.index, WorkItem::linear(global_id, global_size), args)?;
        Ok(interp.stats())
    }

    /// Oracle twin of [`Program::run_ndrange_measured`]: runs every
    /// work-item through the AST interpreter and returns its measured stats.
    pub fn run_ndrange_measured_interp(
        &self,
        kernel: &KernelHandle,
        global_size: usize,
        args: &mut [ArgBinding<'_>],
    ) -> Result<interp::ExecStats, KernelError> {
        let mut interp = Interpreter::new(&self.unit);
        for gid in 0..global_size {
            let item = WorkItem {
                global_id: gid,
                global_size,
                local_id: gid,
                local_size: global_size,
                group_id: 0,
            };
            interp.run_kernel(kernel.index, item, args)?;
        }
        Ok(interp.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn build_and_list_kernels() {
        let src = r#"
            float helper(float x) { return x + 1.0f; }
            __kernel void a(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = helper(v[i]); }
            }
            __kernel void b(__global int* v) {
                int i = get_global_id(0);
                v[i] = i;
            }
        "#;
        let p = Program::build(src).unwrap();
        assert_eq!(p.kernel_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(p.kernel("a").is_ok());
        assert!(p.kernel("helper").is_err());
        assert!(p.kernel("missing").is_err());
    }

    #[test]
    fn saxpy_end_to_end() {
        let src = r#"
            float func(float x, float y, float a) { return a * x + y; }
            __kernel void zip(__global float* xs, __global float* ys,
                              __global float* out, int n, float a) {
                int gid = get_global_id(0);
                if (gid < n) { out[gid] = func(xs[gid], ys[gid], a); }
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("zip").unwrap();
        assert_eq!(k.params.len(), 5);
        assert!(k.params[0].is_buffer);
        assert!(!k.params[3].is_buffer);

        let mut xs = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut ys = vec![5.0f32, 6.0, 7.0, 8.0];
        let mut out = vec![0.0f32; 4];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut xs),
            ArgBinding::buffer_f32(&mut ys),
            ArgBinding::buffer_f32(&mut out),
            ArgBinding::Scalar(Value::Int(4)),
            ArgBinding::Scalar(Value::Float(3.0)),
        ];
        p.run_ndrange(&k, 4, &mut args).unwrap();
        assert_eq!(out, vec![8.0, 12.0, 16.0, 20.0]);
    }

    #[test]
    fn cost_estimate_nonzero_for_arithmetic_kernel() {
        let src = r#"
            __kernel void scale(__global float* v, int n, float a) {
                int gid = get_global_id(0);
                if (gid < n) { v[gid] = v[gid] * a + 1.0f; }
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("scale").unwrap();
        let c = p.cost_estimate(&k);
        // The `if` branch is weighted 0.5 by the estimator, so the two flops
        // and two 4-byte accesses inside it count half.
        assert!(c.flops >= 1.0);
        assert!(c.global_bytes >= 4.0);
    }
}
