//! Abstract syntax tree of the kernel language.

use crate::token::Span;
use crate::types::{ScalarType, Type};

/// A whole translation unit: a list of function definitions, where at least
/// one is usually a `__kernel` entry point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// All function definitions in declaration order.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Find a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// `true` if declared with the `__kernel` qualifier.
    pub is_kernel: bool,
    /// Declared return type.
    pub return_type: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Block,
    /// Source location of the function header.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements of the block, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local variable declaration: `float x = e;` (initialiser optional).
    Decl {
        /// Declared scalar type.
        ty: ScalarType,
        /// Variable name.
        name: String,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// An expression statement (assignment, call, increment, ...).
    Expr(Expr),
    /// `if (cond) then else alt`.
    If {
        /// Condition.
        cond: Expr,
        /// Taken when the condition is true.
        then_block: Block,
        /// Taken when the condition is false (may be empty).
        else_block: Block,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Loop initialiser (declaration or expression); may be absent.
        init: Option<Box<Stmt>>,
        /// Loop condition; absent means "true".
        cond: Option<Expr>,
        /// Step expression run after each iteration.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return e;` (expression absent for `void` functions).
    Return(Option<Expr>, Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// A nested block.
    Block(Block),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Whether this operator produces a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
}

/// Assignment flavours (`=`, `+=`, `-=`, `*=`, `/=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
}

/// The target of an assignment or increment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A named local variable or scalar parameter.
    Var(String, Span),
    /// An indexed global buffer: `buf[idx]`.
    Index {
        /// Buffer (pointer parameter) name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl LValue {
    /// Source location of the lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, s) => *s,
            LValue::Index { span, .. } => *span,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Span),
    /// Float literal.
    FloatLit(f64, Span),
    /// Boolean literal.
    BoolLit(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// Buffer element read: `buf[idx]`.
    Index {
        /// Buffer (pointer parameter) name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Ternary conditional `c ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Assignment (also usable as an expression, value is the stored value).
    Assign {
        /// Assignment flavour.
        op: AssignOp,
        /// Target.
        target: LValue,
        /// Right-hand side.
        value: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Pre/post increment or decrement (`++i`, `i++`, `--i`, `i--`).
    IncDec {
        /// Target.
        target: LValue,
        /// +1 or -1.
        delta: i32,
        /// `true` for prefix form (value is the updated value).
        prefix: bool,
        /// Source location.
        span: Span,
    },
    /// Explicit cast `(float) x`.
    Cast {
        /// Target scalar type.
        ty: ScalarType,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// Source location of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s) | Expr::FloatLit(_, s) | Expr::BoolLit(_, s) | Expr::Var(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Call { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::IncDec { span, .. }
            | Expr::Cast { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_comparison_predicate() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Rem.is_comparison());
    }

    #[test]
    fn unit_function_lookup() {
        let f = Function {
            name: "f".into(),
            is_kernel: true,
            return_type: Type::Void,
            params: vec![],
            body: Block::default(),
            span: Span::default(),
        };
        let unit = TranslationUnit { functions: vec![f] };
        assert!(unit.function("f").is_some());
        assert_eq!(unit.function_index("f"), Some(0));
        assert!(unit.function("g").is_none());
    }
}
