//! Native execution tier: bytecode closure-compiled into pre-linked basic
//! blocks over a typed, struct-of-arrays register file.
//!
//! The batched VM ([`crate::vm::Vm::run_batch`]) already amortises
//! instruction *dispatch* over the 64 lanes of a batch, but every lane
//! operation still goes through the dynamically-typed [`Value`] enum: a
//! discriminant match per lane per instruction, and results that cannot be
//! auto-vectorised. This module removes that last interpretation layer:
//!
//! * a **dataflow typing pass** runs over the basic blocks of the flat
//!   bytecode and assigns every register *at every program point* one of
//!   four concrete kinds (`f32`, `f64`, `i32`, `bool`) — flow-sensitively,
//!   because the compiler freely reuses temporary registers across types;
//! * each instruction is then compiled to a **monomorphized closure** over a
//!   plain struct-of-arrays register file (`Vec<f32>` / `Vec<f64>` /
//!   `Vec<i32>` / `Vec<bool>`, 64 lanes per register row). Straight-line
//!   f32/i32 arithmetic becomes tight chunked loops over local fixed-size
//!   arrays that LLVM auto-vectorises; buffer accesses whose index is the
//!   work-item's global id (tracked as an *iota* kind) become bounds-checked
//!   block copies;
//! * basic blocks are **pre-linked**: jump targets are resolved to block
//!   indices at compile time and each block's instruction costs are
//!   pre-summed, charged `cost × active_lanes` once per block entry.
//!
//! Execution stays bit-identical to the interpreter oracle. Any shape the
//! native model cannot reproduce exactly is either rejected at native
//! compile time (the kernel permanently falls back to the batched VM, with
//! a human-readable reason) or aborts the batch at runtime exactly like the
//! batched VM does: every buffer store is rolled back through an undo log
//! and the batch is replayed through the scalar engine, which is the
//! authoritative semantics — results, [`crate::interp::ExecStats`] and error
//! messages included. Single-lane batches skip the cross-lane hazard
//! discipline entirely (sequential order is trivially preserved), which
//! makes single-work-item reduce/scan loops native-eligible with arbitrary
//! addresses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use crate::ast::BinOp;
use crate::builtins::Builtin;
use crate::compile::{CompiledUnit, Op};
use crate::diag::KernelError;
use crate::interp::{stencil_get, ArgBinding, BufferView, ExecStats, StencilCtx, WorkItem};
use crate::types::{ScalarType, Type};
use crate::value::Value;
use crate::vm::{exit_chain_cost, vm_eval_binary, BATCH_LANES};

/// Which execution engine runs kernel launches. Settable per program via
/// [`crate::Program::set_tier`] or globally via the `SKELCL_KERNEL_TIER`
/// environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The tree-walking interpreter (the bit-exact oracle; slowest).
    Interp,
    /// The scalar register VM, one work-item at a time.
    Scalar,
    /// The 64-lane lockstep batched VM.
    Batched,
    /// The closure-compiled native tier (this module).
    Native,
    /// Heuristic per-kernel selection: large or hot kernels graduate to the
    /// native tier, one-shot small kernels stay on the batched VM.
    #[default]
    Auto,
}

/// Valid tier names, for error messages.
pub const TIER_NAMES: &str = "interp, scalar, batched, native, auto";

impl Tier {
    /// Parse a tier name (as accepted by `SKELCL_KERNEL_TIER`).
    pub fn parse(s: &str) -> Result<Tier, KernelError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Ok(Tier::Interp),
            "scalar" => Ok(Tier::Scalar),
            "batched" | "vm" => Ok(Tier::Batched),
            "native" => Ok(Tier::Native),
            "auto" => Ok(Tier::Auto),
            other => Err(KernelError::run(format!(
                "unknown kernel tier `{other}`: expected one of {TIER_NAMES}"
            ))),
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Tier::Interp => 0,
            Tier::Scalar => 1,
            Tier::Batched => 2,
            Tier::Native => 3,
            Tier::Auto => 4,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Tier> {
        Some(match v {
            0 => Tier::Interp,
            1 => Tier::Scalar,
            2 => Tier::Batched,
            3 => Tier::Native,
            4 => Tier::Auto,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Interp => "interp",
            Tier::Scalar => "scalar",
            Tier::Batched => "batched",
            Tier::Native => "native",
            Tier::Auto => "auto",
        })
    }
}

impl std::str::FromStr for Tier {
    type Err = KernelError;
    fn from_str(s: &str) -> Result<Tier, KernelError> {
        Tier::parse(s)
    }
}

/// Launches at or above this global size graduate to the native tier
/// immediately under [`Tier::Auto`]: one launch already amortises the
/// closure-compilation cost.
pub const AUTO_SIZE_IMMEDIATE: usize = 8192;
/// Under [`Tier::Auto`], smaller kernels graduate after this many launches…
pub const AUTO_MIN_LAUNCHES: u64 = 16;
/// …provided each launch covers at least this many work-items.
pub const AUTO_MIN_SIZE: usize = 128;

/// The [`Tier::Auto`] gating heuristic: whether a kernel that has already
/// launched `prior_launches` times graduates to the native tier for a launch
/// of `global_size` work-items.
pub fn auto_graduates(prior_launches: u64, global_size: usize) -> bool {
    global_size >= AUTO_SIZE_IMMEDIATE
        || (prior_launches >= AUTO_MIN_LAUNCHES && global_size >= AUTO_MIN_SIZE)
}

/// Per-[`crate::Program`] native-tier state, shared across clones of the
/// program (and across the simulator's per-device worker threads).
pub(crate) struct NativeState {
    /// Selected [`Tier`] as `u8`; `u8::MAX` means "unset" (= [`Tier::Auto`]).
    tier: AtomicU8,
    kernels: Vec<KernelNativeState>,
}

impl std::fmt::Debug for NativeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeState")
            .field("tier", &self.tier())
            .field("kernels", &self.kernels.len())
            .finish()
    }
}

impl NativeState {
    pub(crate) fn new(num_functions: usize, initial: Option<Tier>) -> NativeState {
        NativeState {
            tier: AtomicU8::new(initial.map_or(u8::MAX, Tier::as_u8)),
            kernels: (0..num_functions)
                .map(|_| KernelNativeState::default())
                .collect(),
        }
    }

    pub(crate) fn tier(&self) -> Tier {
        Tier::from_u8(self.tier.load(Ordering::Relaxed)).unwrap_or(Tier::Auto)
    }

    pub(crate) fn set_tier(&self, tier: Tier) {
        self.tier.store(tier.as_u8(), Ordering::Relaxed);
    }

    pub(crate) fn kernel(&self, index: usize) -> &KernelNativeState {
        &self.kernels[index]
    }
}

/// Per-kernel launch counter and cached native compilation result.
#[derive(Default)]
pub(crate) struct KernelNativeState {
    launches: AtomicU64,
    compiled: OnceLock<CompileOutcome>,
}

/// The cached outcome of one native compilation attempt.
pub struct CompileOutcome {
    /// The compiled kernel, or the human-readable ineligibility reason.
    pub result: Result<Arc<NativeKernel>, String>,
    /// Wall-clock nanoseconds the compilation took.
    pub compile_ns: u64,
}

impl KernelNativeState {
    /// Count a launch; returns the number of launches *before* this one.
    pub(crate) fn note_launch(&self) -> u64 {
        self.launches.fetch_add(1, Ordering::Relaxed)
    }

    /// The compiled artifact (compiling on first use), plus whether this
    /// call performed the compilation.
    pub(crate) fn get_or_compile(
        &self,
        unit: &CompiledUnit,
        index: usize,
    ) -> (&CompileOutcome, bool) {
        let mut first = false;
        let out = self.compiled.get_or_init(|| {
            first = true;
            let t0 = std::time::Instant::now();
            let result = compile_kernel(unit, index).map(Arc::new);
            CompileOutcome {
                result,
                compile_ns: t0.elapsed().as_nanos() as u64,
            }
        });
        (out, first)
    }
}

// ---------------------------------------------------------------------------
// Typed register kinds and the dataflow lattice
// ---------------------------------------------------------------------------

/// The concrete storage kind of a register at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NKind {
    F32,
    F64,
    I32,
    Bool,
}

impl NKind {
    fn of(s: ScalarType) -> Option<NKind> {
        match s {
            ScalarType::Float => Some(NKind::F32),
            ScalarType::Double => Some(NKind::F64),
            ScalarType::Int => Some(NKind::I32),
            ScalarType::Bool => Some(NKind::Bool),
            ScalarType::Uint => None,
        }
    }

    fn scalar(self) -> ScalarType {
        match self {
            NKind::F32 => ScalarType::Float,
            NKind::F64 => ScalarType::Double,
            NKind::I32 => ScalarType::Int,
            NKind::Bool => ScalarType::Bool,
        }
    }
}

/// One lattice cell of the flow-sensitive typing pass. `iota` marks an `i32`
/// register known to hold `first_global_id + lane` in every lane (the value
/// of `get_global_id(0)` under linear launches), which unlocks contiguous
/// buffer fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    /// Not written on any path seen so far (the lattice bottom; the compiler
    /// guarantees every *executed* read is dominated by a write).
    Unset,
    /// Holds this kind on every path.
    Known { kind: NKind, iota: bool },
    /// Holds differently-typed values on merging paths (the lattice top).
    Conflict,
}

impl Cell {
    fn known(kind: NKind) -> Cell {
        Cell::Known { kind, iota: false }
    }

    fn merge(a: Cell, b: Cell) -> Cell {
        match (a, b) {
            (Cell::Unset, x) | (x, Cell::Unset) => x,
            (Cell::Known { kind: k1, iota: i1 }, Cell::Known { kind: k2, iota: i2 })
                if k1 == k2 =>
            {
                Cell::Known {
                    kind: k1,
                    iota: i1 && i2,
                }
            }
            _ => Cell::Conflict,
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime state: register file, undo log, execution context
// ---------------------------------------------------------------------------

/// Struct-of-arrays register file: four parallel arrays, each holding
/// `BATCH_LANES` values per register row. A register's value lives in the
/// array of its current kind (the dataflow pass guarantees reader and writer
/// agree at every program point).
pub(crate) struct RegFile {
    f32s: Vec<f32>,
    f64s: Vec<f64>,
    i32s: Vec<i32>,
    bools: Vec<bool>,
}

impl RegFile {
    fn new(rows: usize) -> RegFile {
        let n = rows * BATCH_LANES;
        RegFile {
            f32s: vec![0.0; n],
            f64s: vec![0.0; n],
            i32s: vec![0; n],
            bools: vec![false; n],
        }
    }
}

/// Ordered log of buffer mutations, for exact rollback on batch abort.
/// Contiguous f32 stores log a span backed by a flat arena; everything else
/// logs per-element [`Value`]s restored bit-exactly via
/// [`BufferView::restore`]. Entries are undone strictly newest-first.
#[derive(Default)]
pub(crate) struct UndoLog {
    entries: Vec<UndoEntry>,
    arena: Vec<f32>,
}

enum UndoEntry {
    Span {
        slot: u16,
        start: usize,
        arena_off: usize,
        len: usize,
    },
    Elem {
        slot: u16,
        idx: usize,
        old: Value,
    },
}

impl UndoLog {
    fn clear(&mut self) {
        self.entries.clear();
        self.arena.clear();
    }

    fn push_span(&mut self, slot: u16, start: usize, old: &[f32]) {
        let arena_off = self.arena.len();
        self.arena.extend_from_slice(old);
        self.entries.push(UndoEntry::Span {
            slot,
            start,
            arena_off,
            len: old.len(),
        });
    }

    fn push_elem(&mut self, slot: u16, idx: usize, old: Value) {
        self.entries.push(UndoEntry::Elem { slot, idx, old });
    }

    /// Restore every logged mutation, newest first.
    fn rollback(&mut self, args: &mut [ArgBinding<'_>]) {
        while let Some(entry) = self.entries.pop() {
            match entry {
                UndoEntry::Span {
                    slot,
                    start,
                    arena_off,
                    len,
                } => {
                    if let ArgBinding::Buffer(BufferView::F32(buf)) = &mut args[slot as usize] {
                        buf[start..start + len]
                            .copy_from_slice(&self.arena[arena_off..arena_off + len]);
                    }
                    self.arena.truncate(arena_off);
                }
                UndoEntry::Elem { slot, idx, old } => {
                    if let ArgBinding::Buffer(view) = &mut args[slot as usize] {
                        view.restore(idx, old);
                    }
                }
            }
        }
        self.arena.clear();
    }
}

/// Why a native batch could not complete. Mirrors the batched VM's abort
/// protocol: the caller rolls back the undo log and replays the batch
/// through the scalar engine (authoritative for results, stats and errors);
/// `Bail` additionally retires the native tier for the launch remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NativeAbort {
    /// A lane hit a runtime error; the replay reproduces it verbatim.
    Error,
    /// Divergence or a cross-lane hazard the native model does not order.
    Bail,
}

/// Mutable execution state threaded through every step closure.
pub(crate) struct ExecCtx<'a, 'b> {
    regs: &'a mut RegFile,
    items: &'a [WorkItem],
    /// Active lanes are the dense prefix `0..n_active` (suffix-only
    /// retirement keeps them contiguous for the vectorized loops).
    n_active: usize,
    args: &'a mut [ArgBinding<'b>],
    stencil: Option<StencilCtx>,
    undo: &'a mut UndoLog,
    slot_stored: &'a mut [bool],
    slot_foreign_load: &'a mut [bool],
    /// Cross-lane hazard checks; off for single-lane batches, whose
    /// sequential order is trivially preserved.
    hazards: bool,
}

type StepFn =
    Box<dyn for<'a, 'b> Fn(&mut ExecCtx<'a, 'b>) -> Result<(), NativeAbort> + Send + Sync>;

/// Identity helper that pins the closure to the higher-ranked `Fn` bound.
fn step<F>(f: F) -> StepFn
where
    F: for<'a, 'b> Fn(&mut ExecCtx<'a, 'b>) -> Result<(), NativeAbort> + Send + Sync + 'static,
{
    Box::new(f)
}

#[inline(always)]
fn read_value(regs: &RegFile, kind: NKind, row: usize, lane: usize) -> Value {
    match kind {
        NKind::F32 => Value::Float(regs.f32s[row + lane]),
        NKind::F64 => Value::Double(regs.f64s[row + lane]),
        NKind::I32 => Value::Int(regs.i32s[row + lane]),
        NKind::Bool => Value::Bool(regs.bools[row + lane]),
    }
}

#[inline(always)]
fn write_value(regs: &mut RegFile, kind: NKind, row: usize, lane: usize, v: Value) {
    match kind {
        NKind::F32 => {
            regs.f32s[row + lane] = match v {
                Value::Float(x) => x,
                other => other.as_f64() as f32,
            }
        }
        NKind::F64 => regs.f64s[row + lane] = v.as_f64(),
        NKind::I32 => {
            regs.i32s[row + lane] = match v {
                Value::Int(x) => x,
                other => other.as_i64() as i32,
            }
        }
        NKind::Bool => regs.bools[row + lane] = v.as_bool(),
    }
}

/// The buffer address held in `row` at `lane` (exactly `Value::as_i64` of
/// the register's typed value).
#[inline(always)]
fn addr_of(regs: &RegFile, kind: NKind, row: usize, lane: usize) -> i64 {
    match kind {
        NKind::F32 => regs.f32s[row + lane] as i64,
        NKind::F64 => regs.f64s[row + lane] as i64,
        NKind::I32 => regs.i32s[row + lane] as i64,
        NKind::Bool => i64::from(regs.bools[row + lane]),
    }
}

fn broadcast(regs: &mut RegFile, row: usize, v: Value) {
    match v {
        Value::Float(x) => regs.f32s[row..row + BATCH_LANES].fill(x),
        Value::Double(x) => regs.f64s[row..row + BATCH_LANES].fill(x),
        Value::Int(x) => regs.i32s[row..row + BATCH_LANES].fill(x),
        Value::Bool(x) => regs.bools[row..row + BATCH_LANES].fill(x),
        Value::Uint(_) => unreachable!("uint values are native-ineligible"),
    }
}

// ---------------------------------------------------------------------------
// Compiled artifact
// ---------------------------------------------------------------------------

/// How a basic block transfers control. Targets are pre-resolved block
/// indices, so runtime dispatch is a direct index.
enum Term {
    /// Unconditional transfer; back edges count against the loop budget.
    Jump { target: usize, back_edge: bool },
    /// Conditional transfer on the scratch bool row written by the block's
    /// final condition step. A divergent outcome retires the jumping lanes
    /// when they form a suffix of the active prefix and the target is a
    /// trivial exit chain (pre-summed cost); anything else bails.
    Branch {
        jump_when: bool,
        taken: usize,
        taken_back_edge: bool,
        exit_chain: Option<(f64, f64, f64)>,
        fall: usize,
    },
    /// All active lanes return from the kernel: the batch is complete.
    Ret,
    /// An unconditional runtime error (missing return, orphan break, …); the
    /// scalar replay reproduces the exact message.
    Abort,
}

struct Block {
    steps: Vec<StepFn>,
    /// Pre-summed `(flops, bytes, ops)` of every instruction in the block,
    /// terminator included; charged `× n_active` at block entry. Exact
    /// because `n_active` only changes at terminators and any mid-block
    /// abort discards the whole batch accumulator.
    cost: (f64, f64, f64),
    term: Term,
}

/// A kernel compiled to closure-threaded native blocks. Immutable and
/// shared; per-launch mutable state lives in the (private) executor.
pub struct NativeKernel {
    blocks: Vec<Block>,
    num_regs: usize,
    /// Whether any step uses the iota fast paths, which require contiguous
    /// global ids with `local_id == global_id` and ids within `i32` range
    /// (verified per batch; violations bail to the VM).
    uses_iota: bool,
    /// Constant pool broadcast once per launch (pool rows are never written
    /// by compiled code).
    pool: Vec<(u16, Value)>,
    /// Scalar parameters `(arg slot == register row, declared type)`,
    /// re-broadcast every batch (parameters are mutable locals).
    scalar_params: Vec<(usize, ScalarType)>,
    listing: String,
}

impl std::fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeKernel")
            .field("blocks", &self.blocks.len())
            .field("num_regs", &self.num_regs)
            .field("uses_iota", &self.uses_iota)
            .finish()
    }
}

impl NativeKernel {
    /// Human-readable block/closure listing (for `dump_bytecode`).
    pub fn listing(&self) -> &str {
        &self.listing
    }

    /// Number of native basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

// ---------------------------------------------------------------------------
// Per-launch executor
// ---------------------------------------------------------------------------

/// Mutable per-launch state for one [`NativeKernel`]: the register file, the
/// undo log and the hazard flags. Created once per launch so the constant
/// pool broadcast is paid once.
pub(crate) struct NativeExec {
    kernel: Arc<NativeKernel>,
    regs: RegFile,
    undo: UndoLog,
    slot_stored: Vec<bool>,
    slot_foreign_load: Vec<bool>,
}

impl NativeExec {
    pub(crate) fn new(kernel: Arc<NativeKernel>) -> NativeExec {
        let mut regs = RegFile::new(kernel.num_regs + 1);
        for &(reg, v) in &kernel.pool {
            broadcast(&mut regs, reg as usize * BATCH_LANES, v);
        }
        NativeExec {
            kernel,
            regs,
            undo: UndoLog::default(),
            slot_stored: Vec::new(),
            slot_foreign_load: Vec::new(),
        }
    }

    /// Execute one batch of work-items. On `Ok`, results are committed and
    /// the batch's exact cost has been added to `stats`. On `Err`, the
    /// caller must call [`NativeExec::rollback`] and replay the batch
    /// through the scalar engine.
    pub(crate) fn execute_batch(
        &mut self,
        items: &[WorkItem],
        args: &mut [ArgBinding<'_>],
        stencil: Option<StencilCtx>,
        budget_limit: u64,
        stats: &mut ExecStats,
    ) -> Result<(), NativeAbort> {
        let lanes = items.len();
        debug_assert!((1..=BATCH_LANES).contains(&lanes));
        let kernel = Arc::clone(&self.kernel);
        if kernel.uses_iota {
            let gid0 = items[0].global_id;
            let ok = items
                .iter()
                .enumerate()
                .all(|(l, it)| it.global_id == gid0 + l && it.local_id == it.global_id)
                && items[lanes - 1].global_id <= i32::MAX as usize;
            if !ok {
                return Err(NativeAbort::Bail);
            }
        }
        self.undo.clear();
        self.slot_stored.clear();
        self.slot_stored.resize(args.len(), false);
        self.slot_foreign_load.clear();
        self.slot_foreign_load.resize(args.len(), false);
        for &(slot, declared) in &kernel.scalar_params {
            if let ArgBinding::Scalar(v) = &args[slot] {
                broadcast(&mut self.regs, slot * BATCH_LANES, v.convert_to(declared));
            }
        }

        let scratch = kernel.num_regs * BATCH_LANES;
        let mut acc = (0.0f64, 0.0f64, 0.0f64);
        let mut budget = budget_limit;
        let mut block = 0usize;
        // One context for the whole batch (rebuilding it per block costs real
        // time on single-lane sequential kernels); `n_active` shrinks in
        // place when a lane suffix retires.
        let mut cx = ExecCtx {
            regs: &mut self.regs,
            items,
            n_active: lanes,
            args,
            stencil,
            undo: &mut self.undo,
            slot_stored: &mut self.slot_stored,
            slot_foreign_load: &mut self.slot_foreign_load,
            hazards: lanes >= 2,
        };
        loop {
            let b = &kernel.blocks[block];
            let na = cx.n_active as f64;
            acc.0 += b.cost.0 * na;
            acc.1 += b.cost.1 * na;
            acc.2 += b.cost.2 * na;
            for s in &b.steps {
                s(&mut cx)?;
            }
            match &b.term {
                Term::Jump { target, back_edge } => {
                    if *back_edge {
                        budget = budget.checked_sub(1).ok_or(NativeAbort::Error)?;
                    }
                    block = *target;
                }
                Term::Ret => break,
                Term::Abort => return Err(NativeAbort::Error),
                Term::Branch {
                    jump_when,
                    taken,
                    taken_back_edge,
                    exit_chain,
                    fall,
                } => {
                    let n_active = cx.n_active;
                    let sb = &cx.regs.bools[scratch..scratch + n_active];
                    let jumpers = sb.iter().filter(|b| **b == *jump_when).count();
                    if jumpers == n_active {
                        if *taken_back_edge {
                            budget = budget.checked_sub(1).ok_or(NativeAbort::Error)?;
                        }
                        block = *taken;
                    } else if jumpers == 0 {
                        block = *fall;
                    } else {
                        // Divergent: only "a suffix of the lanes leaves
                        // through a trivial exit chain" keeps the active
                        // prefix dense; everything else replays.
                        if *taken_back_edge {
                            return Err(NativeAbort::Bail);
                        }
                        let Some(chain) = exit_chain else {
                            return Err(NativeAbort::Bail);
                        };
                        if sb[..n_active - jumpers].contains(jump_when) {
                            return Err(NativeAbort::Bail);
                        }
                        acc.0 += chain.0 * jumpers as f64;
                        acc.1 += chain.1 * jumpers as f64;
                        acc.2 += chain.2 * jumpers as f64;
                        cx.n_active = n_active - jumpers;
                        block = *fall;
                    }
                }
            }
        }
        stats.flops += acc.0;
        stats.global_bytes += acc.1;
        stats.ops += acc.2;
        Ok(())
    }

    /// Undo every buffer store of an aborted batch (newest first).
    pub(crate) fn rollback(&mut self, args: &mut [ArgBinding<'_>]) {
        self.undo.rollback(args);
    }
}

// ---------------------------------------------------------------------------
// Native compilation: eligibility, dataflow typing, block assembly
// ---------------------------------------------------------------------------

use crate::compile::Reg;

/// The storage kind of a literal value (`None` for `uint`, which the native
/// tier does not model).
fn kind_of_value(v: Value) -> Option<NKind> {
    match v {
        Value::Float(_) => Some(NKind::F32),
        Value::Double(_) => Some(NKind::F64),
        Value::Int(_) => Some(NKind::I32),
        Value::Bool(_) => Some(NKind::Bool),
        Value::Uint(_) => None,
    }
}

/// Buffer parameters of the kernel: interned name id → (argument slot,
/// pointee type).
type BufferMap = HashMap<u16, (u16, ScalarType)>;

/// Resolve a register read at a program point: its concrete kind, or the
/// human-readable reason the kernel is native-ineligible.
fn read_kind(st: &[Cell], reg: Reg) -> Result<(NKind, bool), String> {
    match st[reg as usize] {
        Cell::Known { kind, iota } => Ok((kind, iota)),
        Cell::Unset => Err(format!(
            "register r{reg} is read before any write on some path"
        )),
        Cell::Conflict => Err(format!(
            "register r{reg} holds differently-typed values on merging paths"
        )),
    }
}

/// The abstract write effect of one instruction on the typing state. Reads
/// are not validated here (the fixpoint visits blocks whose inputs are still
/// improving); the build pass validates them against the fixed entry states.
fn transfer(st: &mut [Cell], op: &Op, buffers: &BufferMap) {
    match op {
        Op::Const { dst, value } => {
            st[*dst as usize] =
                Cell::known(kind_of_value(*value).expect("uint constants are pre-rejected"));
        }
        Op::Mov { dst, src } => st[*dst as usize] = st[*src as usize],
        Op::Cast { dst, src, ty } => {
            let kind = NKind::of(*ty).expect("uint casts are pre-rejected");
            let iota = *ty == ScalarType::Int
                && matches!(
                    st[*src as usize],
                    Cell::Known {
                        kind: NKind::I32,
                        iota: true
                    }
                );
            st[*dst as usize] = Cell::Known { kind, iota };
        }
        Op::Bin { op, dst, lhs, rhs } => {
            st[*dst as usize] = if op.is_comparison() {
                Cell::known(NKind::Bool)
            } else {
                match (st[*lhs as usize], st[*rhs as usize]) {
                    (Cell::Conflict, _) | (_, Cell::Conflict) => Cell::Conflict,
                    (Cell::Unset, _) | (_, Cell::Unset) => Cell::Unset,
                    (Cell::Known { kind: a, .. }, Cell::Known { kind: b, .. }) => Cell::known(
                        NKind::of(a.scalar().unify(b.scalar()))
                            .expect("unifying non-uint kinds never yields uint"),
                    ),
                }
            };
        }
        Op::Neg { dst, src } => {
            st[*dst as usize] = match st[*src as usize] {
                Cell::Known { kind, .. } => Cell::known(kind),
                other => other,
            };
        }
        Op::Not { dst, .. } => st[*dst as usize] = Cell::known(NKind::Bool),
        Op::BufLoad { dst, name, .. } => {
            let (_, pointee) = buffers[name];
            st[*dst as usize] =
                Cell::known(NKind::of(pointee).expect("uint buffers are pre-rejected"));
        }
        Op::StencilGet { dst, .. } => st[*dst as usize] = Cell::known(NKind::F32),
        Op::CallBuiltin {
            builtin,
            dst,
            args,
            nargs,
        } => {
            let mut tys = Vec::with_capacity(*nargs as usize);
            let mut poison = None;
            for k in 0..*nargs as usize {
                match st[*args as usize + k] {
                    Cell::Known { kind, .. } => tys.push(kind.scalar()),
                    other => {
                        poison = Some(other);
                        break;
                    }
                }
            }
            st[*dst as usize] = poison.unwrap_or_else(|| {
                Cell::known(
                    NKind::of(builtin.result_type(&tys))
                        .expect("math builtins never return uint without uint arguments"),
                )
            });
        }
        Op::WorkItem { dst, builtin } => {
            // `get_global_id`/`get_local_id` hold `first_gid + lane` in every
            // lane of an iota-verified batch (the per-batch check asserts
            // `local_id == global_id`).
            st[*dst as usize] = Cell::Known {
                kind: NKind::I32,
                iota: matches!(builtin, Builtin::GetGlobalId | Builtin::GetLocalId),
            };
        }
        Op::BufStore { .. }
        | Op::Jump { .. }
        | Op::JumpIfFalse { .. }
        | Op::BinJumpIfFalse { .. }
        | Op::JumpIfTrue { .. }
        | Op::Call { .. }
        | Op::Return { .. }
        | Op::ReturnVoid
        | Op::MissingReturn { .. }
        | Op::OrphanFlow
        | Op::FailUnbound { .. }
        | Op::Nop => {}
    }
}

/// Reject shapes the native model cannot reproduce bit-exactly, before any
/// per-block work. The returned string is the (cached) ineligibility reason;
/// the kernel permanently falls back to the batched VM.
fn check_eligible(
    unit: &CompiledUnit,
    func: &crate::compile::CompiledFunction,
    buffers: &BufferMap,
) -> Result<(), String> {
    for op in &func.code {
        match op {
            Op::Const {
                value: Value::Uint(_),
                ..
            } => return Err("uses a uint literal".to_string()),
            Op::Cast {
                ty: ScalarType::Uint,
                ..
            } => return Err("casts to uint".to_string()),
            Op::Bin {
                op: BinOp::And | BinOp::Or,
                ..
            } => return Err("carries a non-lowered logical operator".to_string()),
            Op::BufLoad { name, .. } | Op::BufStore { name, .. } if !buffers.contains_key(name) => {
                return Err(format!(
                    "buffer `{}` is resolved dynamically at runtime",
                    unit.buffer_names[*name as usize]
                ));
            }
            Op::Call { func: callee, .. } => {
                return Err(format!(
                    "calls function `{}` through a VM frame",
                    unit.functions[*callee as usize].name
                ));
            }
            Op::CallBuiltin { builtin, .. }
                if builtin.is_work_item_fn() || builtin.is_stencil_fn() =>
            {
                return Err("carries a non-math builtin call".to_string())
            }
            Op::FailUnbound { name } => {
                return Err(format!(
                    "reads unbound name `{}`",
                    unit.buffer_names[*name as usize]
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Successor blocks of the span `code[start..end]`, resolved through the
/// leader → block map.
fn successors(code: &[Op], end: usize, block_at: &HashMap<usize, usize>) -> Vec<usize> {
    match &code[end - 1] {
        Op::Jump { target } => vec![block_at[&(*target as usize)]],
        Op::JumpIfFalse { target, .. }
        | Op::JumpIfTrue { target, .. }
        | Op::BinJumpIfFalse { target, .. } => {
            vec![block_at[&(*target as usize)], block_at[&end]]
        }
        Op::Return { .. } | Op::ReturnVoid | Op::MissingReturn { .. } | Op::OrphanFlow => vec![],
        _ => vec![block_at[&end]],
    }
}

/// Compile one kernel of the unit into closure-threaded native blocks, or
/// explain why it is ineligible. Deterministic and side-effect free; the
/// result is cached per [`crate::Program`] in [`KernelNativeState`].
pub(crate) fn compile_kernel(
    unit: &CompiledUnit,
    kernel_index: usize,
) -> Result<NativeKernel, String> {
    use std::fmt::Write as _;
    let func = &unit.functions[kernel_index];

    let mut buffers: BufferMap = HashMap::new();
    let mut scalar_params = Vec::new();
    for (slot, p) in func.params.iter().enumerate() {
        match p.ty {
            Type::GlobalPtr(s) => {
                if NKind::of(s).is_none() {
                    return Err(format!("buffer `{}` has uint elements", p.name));
                }
                buffers.insert(p.name_id, (slot as u16, s));
            }
            Type::Scalar(s) => {
                if NKind::of(s).is_none() {
                    return Err(format!("scalar parameter `{}` is uint", p.name));
                }
                scalar_params.push((slot, s));
            }
            Type::Void => unreachable!("void parameters rejected by the parser"),
        }
    }
    check_eligible(unit, func, &buffers)?;

    let leaders = func.block_leaders();
    let block_at: HashMap<usize, usize> =
        leaders.iter().enumerate().map(|(b, &pc)| (pc, b)).collect();
    let spans: Vec<(usize, usize)> = leaders
        .iter()
        .enumerate()
        .map(|(b, &s)| (s, leaders.get(b + 1).copied().unwrap_or(func.code.len())))
        .collect();

    // Entry typing state of block 0: scalar parameters and the preloaded
    // constant pool are Known, everything else Unset (every read the VM can
    // execute is dominated by a write; anything the merge cannot prove falls
    // back with a reason).
    let mut init = vec![Cell::Unset; func.num_regs as usize];
    for &(slot, s) in &scalar_params {
        init[slot] = Cell::known(NKind::of(s).expect("checked above"));
    }
    for &(reg, value) in &func.const_pool {
        init[reg as usize] =
            Cell::known(kind_of_value(value).ok_or_else(|| "uses a uint literal".to_string())?);
    }

    // Monotone fixpoint over the block graph (Unset → Known → Conflict, iota
    // only decays), so the worklist terminates.
    let mut entry: Vec<Option<Vec<Cell>>> = vec![None; spans.len()];
    entry[0] = Some(init);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut st = entry[b].clone().expect("worklist blocks have entry states");
        let (s, e) = spans[b];
        for op in &func.code[s..e] {
            transfer(&mut st, op, &buffers);
        }
        for succ in successors(&func.code, e, &block_at) {
            let merged: Vec<Cell> = match &entry[succ] {
                None => st.clone(),
                Some(old) => old
                    .iter()
                    .zip(&st)
                    .map(|(a, b)| Cell::merge(*a, *b))
                    .collect(),
            };
            if entry[succ].as_ref() != Some(&merged) {
                entry[succ] = Some(merged);
                work.push(succ);
            }
        }
    }

    // Build pass: validate every read against the fixed entry states and
    // emit one monomorphized closure per instruction.
    let scratch = func.num_regs as usize * BATCH_LANES;
    let mut blocks = Vec::with_capacity(spans.len());
    let mut uses_iota = false;
    let mut listing = String::new();
    for (b, &(s, e)) in spans.iter().enumerate() {
        let Some(state0) = &entry[b] else {
            // Unreachable at runtime (e.g. code after an unconditional
            // return); keep the block index dense.
            let _ = writeln!(listing, "b{b} @ pc {s}..{}: (unreachable)", e - 1);
            blocks.push(Block {
                steps: Vec::new(),
                cost: (0.0, 0.0, 0.0),
                term: Term::Abort,
            });
            continue;
        };
        let mut st = state0.clone();
        let mut cost = (0.0f64, 0.0f64, 0.0f64);
        for c in &func.costs[s..e] {
            cost.0 += c.flops as f64;
            cost.1 += c.bytes as f64;
            cost.2 += c.ops as f64;
        }
        let _ = writeln!(
            listing,
            "b{b} @ pc {s}..{} cost(flops={}, bytes={}, ops={}):",
            e - 1,
            cost.0,
            cost.1,
            cost.2
        );
        let mut steps = Vec::new();
        let mut term = None;
        for (pc, op) in func.code[s..e]
            .iter()
            .enumerate()
            .map(|(k, op)| (s + k, op))
        {
            match op {
                Op::Jump { target } => {
                    let t = *target as usize;
                    let back = t <= pc;
                    let _ = writeln!(
                        listing,
                        "  {pc:>4}  jump -> b{}{}",
                        block_at[&t],
                        if back { " (back edge)" } else { "" }
                    );
                    term = Some(Term::Jump {
                        target: block_at[&t],
                        back_edge: back,
                    });
                }
                Op::JumpIfFalse { cond, target } => {
                    steps.push(build_truthy_step(&st, *cond, scratch)?);
                    term = Some(branch_term(
                        func,
                        &block_at,
                        pc,
                        *target,
                        e,
                        false,
                        &mut listing,
                    ));
                }
                Op::JumpIfTrue { cond, target } => {
                    steps.push(build_truthy_step(&st, *cond, scratch)?);
                    term = Some(branch_term(
                        func,
                        &block_at,
                        pc,
                        *target,
                        e,
                        true,
                        &mut listing,
                    ));
                }
                Op::BinJumpIfFalse {
                    op: bop,
                    lhs,
                    rhs,
                    target,
                } => {
                    steps.push(build_cmp_step(&st, *bop, *lhs, *rhs, scratch)?);
                    term = Some(branch_term(
                        func,
                        &block_at,
                        pc,
                        *target,
                        e,
                        false,
                        &mut listing,
                    ));
                }
                Op::Return { .. } | Op::ReturnVoid => {
                    let _ = writeln!(listing, "  {pc:>4}  return");
                    term = Some(Term::Ret);
                }
                Op::MissingReturn { .. } | Op::OrphanFlow => {
                    let _ = writeln!(listing, "  {pc:>4}  abort ({op:?})");
                    term = Some(Term::Abort);
                }
                Op::Nop => {
                    let _ = writeln!(listing, "  {pc:>4}  nop");
                }
                other => {
                    let (f, note) = build_step(other, &st, &buffers, &mut uses_iota)?;
                    let _ = writeln!(listing, "  {pc:>4}  {other:?}{note}");
                    steps.push(f);
                    transfer(&mut st, other, &buffers);
                }
            }
        }
        let term = term.unwrap_or_else(|| {
            let _ = writeln!(listing, "        fall -> b{}", block_at[&e]);
            Term::Jump {
                target: block_at[&e],
                back_edge: false,
            }
        });
        blocks.push(Block { steps, cost, term });
    }

    Ok(NativeKernel {
        blocks,
        num_regs: func.num_regs as usize,
        uses_iota,
        pool: func.const_pool.clone(),
        scalar_params,
        listing,
    })
}

/// Build a [`Term::Branch`] for a conditional at `pc` jumping to `target`
/// when the scratch condition equals `jump_when`; `end` is the span end (the
/// fall-through leader).
fn branch_term(
    func: &crate::compile::CompiledFunction,
    block_at: &HashMap<usize, usize>,
    pc: usize,
    target: u32,
    end: usize,
    jump_when: bool,
    listing: &mut String,
) -> Term {
    use std::fmt::Write as _;
    let t = target as usize;
    let back = t <= pc;
    let chain = if back { None } else { exit_chain_cost(func, t) };
    let _ = writeln!(
        listing,
        "  {pc:>4}  branch(when {jump_when}) -> b{} else b{}{}{}",
        block_at[&t],
        block_at[&end],
        if back { " (back edge)" } else { "" },
        if chain.is_some() { " (exit chain)" } else { "" }
    );
    Term::Branch {
        jump_when,
        taken: block_at[&t],
        taken_back_edge: back,
        exit_chain: chain,
        fall: block_at[&end],
    }
}

// ---------------------------------------------------------------------------
// Step construction
// ---------------------------------------------------------------------------

/// First lane index of a register's row in the SoA register file.
#[inline(always)]
fn row(reg: Reg) -> usize {
    reg as usize * BATCH_LANES
}

/// Active-prefix row copy within one kind's array. Retired (suffix) lanes
/// are never read again, so only `n_active` lanes need moving.
fn copy_row(k: NKind, s: usize, d: usize) -> StepFn {
    match k {
        NKind::F32 => step(move |cx| {
            cx.regs.f32s.copy_within(s..s + cx.n_active, d);
            Ok(())
        }),
        NKind::F64 => step(move |cx| {
            cx.regs.f64s.copy_within(s..s + cx.n_active, d);
            Ok(())
        }),
        NKind::I32 => step(move |cx| {
            cx.regs.i32s.copy_within(s..s + cx.n_active, d);
            Ok(())
        }),
        NKind::Bool => step(move |cx| {
            cx.regs.bools.copy_within(s..s + cx.n_active, d);
            Ok(())
        }),
    }
}

/// Per-lane fallback binary op through the VM's exact evaluator (used for
/// mixed-kind operands and fallible shapes like float `%`); active lanes
/// only, aborting the batch on the first error.
fn generic_bin(bop: BinOp, lk: NKind, rk: NKind, d: usize, l: usize, r: usize) -> StepFn {
    let dk = if bop.is_comparison() {
        NKind::Bool
    } else {
        NKind::of(lk.scalar().unify(rk.scalar()))
            .expect("unifying non-uint kinds never yields uint")
    };
    step(move |cx| {
        for li in 0..cx.n_active {
            let a = read_value(cx.regs, lk, l, li);
            let b = read_value(cx.regs, rk, r, li);
            match vm_eval_binary(bop, a, b) {
                Ok(v) => write_value(cx.regs, dk, d, li, v),
                Err(_) => return Err(NativeAbort::Error),
            }
        }
        Ok(())
    })
}

/// `f64`-domain evaluation of an all-`f32` unary math builtin (exactly
/// [`Builtin::eval_math`]'s computation).
fn unary_math(b: Builtin) -> Option<fn(f64) -> f64> {
    Some(match b {
        Builtin::Sqrt => f64::sqrt,
        Builtin::Fabs => f64::abs,
        Builtin::Exp => f64::exp,
        Builtin::Log => f64::ln,
        Builtin::Sin => f64::sin,
        Builtin::Cos => f64::cos,
        Builtin::Floor => f64::floor,
        Builtin::Ceil => f64::ceil,
        _ => None?,
    })
}

/// `f64`-domain evaluation of an all-`f32` binary math builtin.
fn binary_math(b: Builtin) -> Option<fn(f64, f64) -> f64> {
    Some(match b {
        Builtin::Pow => f64::powf,
        Builtin::Fmin | Builtin::Min => f64::min,
        Builtin::Fmax | Builtin::Max => f64::max,
        Builtin::Atan2 => f64::atan2,
        _ => None?,
    })
}

/// `f64`-domain evaluation of an all-`f32` ternary math builtin.
fn ternary_math(b: Builtin) -> Option<fn(f64, f64, f64) -> f64> {
    Some(match b {
        Builtin::Fma => f64::mul_add,
        Builtin::Clamp => f64::clamp,
        _ => None?,
    })
}

/// Condition step of `JumpIfFalse`/`JumpIfTrue`: C truthiness of the
/// condition register into the scratch bool row.
fn build_truthy_step(st: &[Cell], cond: Reg, scratch: usize) -> Result<StepFn, String> {
    let (k, _) = read_kind(st, cond)?;
    let c = row(cond);
    Ok(match k {
        NKind::F32 => step(move |cx| {
            let n = cx.n_active;
            let regs = &mut *cx.regs;
            for (dv, sv) in regs.bools[scratch..scratch + n]
                .iter_mut()
                .zip(&regs.f32s[c..c + n])
            {
                *dv = *sv != 0.0;
            }
            Ok(())
        }),
        NKind::F64 => step(move |cx| {
            let n = cx.n_active;
            let regs = &mut *cx.regs;
            for (dv, sv) in regs.bools[scratch..scratch + n]
                .iter_mut()
                .zip(&regs.f64s[c..c + n])
            {
                *dv = *sv != 0.0;
            }
            Ok(())
        }),
        NKind::I32 => step(move |cx| {
            let n = cx.n_active;
            let regs = &mut *cx.regs;
            for (dv, sv) in regs.bools[scratch..scratch + n]
                .iter_mut()
                .zip(&regs.i32s[c..c + n])
            {
                *dv = *sv != 0;
            }
            Ok(())
        }),
        NKind::Bool => step(move |cx| {
            cx.regs.bools.copy_within(c..c + cx.n_active, scratch);
            Ok(())
        }),
    })
}

/// Condition step of `BinJumpIfFalse`: evaluate `lhs <op> rhs` and write the
/// result's truthiness into the scratch bool row. Same-kind comparisons are
/// monomorphized tight loops; anything else goes through the VM evaluator.
fn build_cmp_step(
    st: &[Cell],
    bop: BinOp,
    lhs: Reg,
    rhs: Reg,
    scratch: usize,
) -> Result<StepFn, String> {
    let (lk, _) = read_kind(st, lhs)?;
    let (rk, _) = read_kind(st, rhs)?;
    let l = row(lhs);
    let r = row(rhs);
    macro_rules! cmp_loop {
        ($field:ident, $op:tt) => {
            step(move |cx| {
                let n = cx.n_active;
                let regs = &mut *cx.regs;
                if n == BATCH_LANES {
                    for (dv, (av, bv)) in regs.bools[scratch..scratch + BATCH_LANES]
                        .iter_mut()
                        .zip(
                            regs.$field[l..l + BATCH_LANES]
                                .iter()
                                .zip(&regs.$field[r..r + BATCH_LANES]),
                        )
                    {
                        *dv = *av $op *bv;
                    }
                } else {
                    for li in 0..n {
                        regs.bools[scratch + li] = regs.$field[l + li] $op regs.$field[r + li];
                    }
                }
                Ok(())
            })
        };
    }
    macro_rules! cmp_kind {
        ($field:ident) => {
            match bop {
                BinOp::Eq => cmp_loop!($field, ==),
                BinOp::Ne => cmp_loop!($field, !=),
                BinOp::Lt => cmp_loop!($field, <),
                BinOp::Le => cmp_loop!($field, <=),
                BinOp::Gt => cmp_loop!($field, >),
                BinOp::Ge => cmp_loop!($field, >=),
                _ => unreachable!("guarded by is_comparison"),
            }
        };
    }
    if bop.is_comparison() {
        // Widening f32 → f64 is exact, so comparing the raw f32s (or i32s)
        // equals the VM's widened comparisons.
        match (lk, rk) {
            (NKind::F32, NKind::F32) => return Ok(cmp_kind!(f32s)),
            (NKind::F64, NKind::F64) => return Ok(cmp_kind!(f64s)),
            (NKind::I32, NKind::I32) => return Ok(cmp_kind!(i32s)),
            _ => {}
        }
    }
    Ok(step(move |cx| {
        for li in 0..cx.n_active {
            let a = read_value(cx.regs, lk, l, li);
            let b = read_value(cx.regs, rk, r, li);
            match vm_eval_binary(bop, a, b) {
                Ok(v) => cx.regs.bools[scratch + li] = v.as_bool(),
                Err(_) => return Err(NativeAbort::Error),
            }
        }
        Ok(())
    }))
}

/// Compile one non-control instruction into a step closure, using the typing
/// state `st` at its program point. Returns the step plus a listing
/// annotation for the fast-path shapes.
#[allow(clippy::too_many_lines)]
fn build_step(
    op: &Op,
    st: &[Cell],
    buffers: &BufferMap,
    uses_iota: &mut bool,
) -> Result<(StepFn, &'static str), String> {
    Ok(match op {
        Op::Const { dst, value } => {
            let d = row(*dst);
            let f = match *value {
                Value::Float(x) => step(move |cx| {
                    cx.regs.f32s[d..d + cx.n_active].fill(x);
                    Ok(())
                }),
                Value::Double(x) => step(move |cx| {
                    cx.regs.f64s[d..d + cx.n_active].fill(x);
                    Ok(())
                }),
                Value::Int(x) => step(move |cx| {
                    cx.regs.i32s[d..d + cx.n_active].fill(x);
                    Ok(())
                }),
                Value::Bool(x) => step(move |cx| {
                    cx.regs.bools[d..d + cx.n_active].fill(x);
                    Ok(())
                }),
                Value::Uint(_) => return Err("uses a uint literal".to_string()),
            };
            (f, "")
        }
        Op::Mov { dst, src } => {
            let (k, _) = read_kind(st, *src)?;
            (copy_row(k, row(*src), row(*dst)), "")
        }
        Op::Cast { dst, src, ty } => {
            let tk = NKind::of(*ty).expect("uint casts pre-rejected");
            let (sk, _) = read_kind(st, *src)?;
            let d = row(*dst);
            let s = row(*src);
            if sk == tk {
                return Ok((copy_row(sk, s, d), " ; identity"));
            }
            macro_rules! conv {
                ($srcf:ident, $dstf:ident, |$x:ident| $e:expr) => {
                    step(move |cx| {
                        let n = cx.n_active;
                        let regs = &mut *cx.regs;
                        for (dv, sv) in regs.$dstf[d..d + n].iter_mut().zip(&regs.$srcf[s..s + n]) {
                            let $x = *sv;
                            *dv = $e;
                        }
                        Ok(())
                    })
                };
            }
            // Each arm mirrors `Value::convert_to` exactly (`as_f64 as f32`,
            // saturating `as_i64 as i32`, C truthiness).
            let f = match (sk, tk) {
                (NKind::I32, NKind::F32) => conv!(i32s, f32s, |x| (x as f64) as f32),
                (NKind::I32, NKind::F64) => conv!(i32s, f64s, |x| x as f64),
                (NKind::I32, NKind::Bool) => conv!(i32s, bools, |x| x != 0),
                (NKind::F32, NKind::I32) => conv!(f32s, i32s, |x| x as i64 as i32),
                (NKind::F32, NKind::F64) => conv!(f32s, f64s, |x| x as f64),
                (NKind::F32, NKind::Bool) => conv!(f32s, bools, |x| x != 0.0),
                (NKind::F64, NKind::I32) => conv!(f64s, i32s, |x| x as i64 as i32),
                (NKind::F64, NKind::F32) => conv!(f64s, f32s, |x| x as f32),
                (NKind::F64, NKind::Bool) => conv!(f64s, bools, |x| x != 0.0),
                (NKind::Bool, NKind::I32) => conv!(bools, i32s, |x| i32::from(x)),
                (NKind::Bool, NKind::F32) => conv!(bools, f32s, |x| if x { 1.0 } else { 0.0 }),
                (NKind::Bool, NKind::F64) => conv!(bools, f64s, |x| if x { 1.0 } else { 0.0 }),
                _ => unreachable!("identity casts handled above"),
            };
            (f, "")
        }
        Op::Bin {
            op: bop,
            dst,
            lhs,
            rhs,
        } => {
            let bop = *bop;
            let (lk, _) = read_kind(st, *lhs)?;
            let (rk, _) = read_kind(st, *rhs)?;
            let d = row(*dst);
            let l = row(*lhs);
            let r = row(*rhs);
            // Vectorizable same-kind loops; operands are snapshotted into
            // fixed-size locals so in-place forms (`x = x + y`) borrow-check
            // and keep exact per-lane semantics.
            macro_rules! f32_arith {
                ($op:tt) => {{
                    step(move |cx| {
                        let n = cx.n_active;
                        let regs = &mut *cx.regs;
                        if n == BATCH_LANES {
                            let mut a = [0.0f32; BATCH_LANES];
                            let mut b = [0.0f32; BATCH_LANES];
                            a.copy_from_slice(&regs.f32s[l..l + BATCH_LANES]);
                            b.copy_from_slice(&regs.f32s[r..r + BATCH_LANES]);
                            for (dv, (av, bv)) in regs.f32s[d..d + BATCH_LANES]
                                .iter_mut()
                                .zip(a.iter().zip(b.iter()))
                            {
                                *dv = ((*av as f64) $op (*bv as f64)) as f32;
                            }
                        } else {
                            // Per-lane read-then-write is alias-safe: lane
                            // `li` only ever writes its own element.
                            for li in 0..n {
                                let av = regs.f32s[l + li];
                                let bv = regs.f32s[r + li];
                                regs.f32s[d + li] = ((av as f64) $op (bv as f64)) as f32;
                            }
                        }
                        Ok(())
                    })
                }};
            }
            macro_rules! f64_arith {
                ($op:tt) => {{
                    step(move |cx| {
                        let n = cx.n_active;
                        let regs = &mut *cx.regs;
                        if n == BATCH_LANES {
                            let mut a = [0.0f64; BATCH_LANES];
                            let mut b = [0.0f64; BATCH_LANES];
                            a.copy_from_slice(&regs.f64s[l..l + BATCH_LANES]);
                            b.copy_from_slice(&regs.f64s[r..r + BATCH_LANES]);
                            for (dv, (av, bv)) in regs.f64s[d..d + BATCH_LANES]
                                .iter_mut()
                                .zip(a.iter().zip(b.iter()))
                            {
                                *dv = *av $op *bv;
                            }
                        } else {
                            for li in 0..n {
                                let av = regs.f64s[l + li];
                                let bv = regs.f64s[r + li];
                                regs.f64s[d + li] = av $op bv;
                            }
                        }
                        Ok(())
                    })
                }};
            }
            macro_rules! i32_arith {
                ($op:tt) => {{
                    step(move |cx| {
                        let n = cx.n_active;
                        let regs = &mut *cx.regs;
                        if n == BATCH_LANES {
                            let mut a = [0i32; BATCH_LANES];
                            let mut b = [0i32; BATCH_LANES];
                            a.copy_from_slice(&regs.i32s[l..l + BATCH_LANES]);
                            b.copy_from_slice(&regs.i32s[r..r + BATCH_LANES]);
                            for (dv, (av, bv)) in regs.i32s[d..d + BATCH_LANES]
                                .iter_mut()
                                .zip(a.iter().zip(b.iter()))
                            {
                                *dv = ((*av as i64) $op (*bv as i64)) as i32;
                            }
                        } else {
                            for li in 0..n {
                                let av = regs.i32s[l + li];
                                let bv = regs.i32s[r + li];
                                regs.i32s[d + li] = ((av as i64) $op (bv as i64)) as i32;
                            }
                        }
                        Ok(())
                    })
                }};
            }
            macro_rules! cmp_bin {
                ($field:ident, $op:tt) => {
                    step(move |cx| {
                        let n = cx.n_active;
                        let regs = &mut *cx.regs;
                        if n == BATCH_LANES {
                            for (dv, (av, bv)) in regs.bools[d..d + BATCH_LANES].iter_mut().zip(
                                regs.$field[l..l + BATCH_LANES]
                                    .iter()
                                    .zip(&regs.$field[r..r + BATCH_LANES]),
                            ) {
                                *dv = *av $op *bv;
                            }
                        } else {
                            for li in 0..n {
                                regs.bools[d + li] = regs.$field[l + li] $op regs.$field[r + li];
                            }
                        }
                        Ok(())
                    })
                };
            }
            macro_rules! cmp_kind {
                ($field:ident) => {
                    match bop {
                        BinOp::Eq => cmp_bin!($field, ==),
                        BinOp::Ne => cmp_bin!($field, !=),
                        BinOp::Lt => cmp_bin!($field, <),
                        BinOp::Le => cmp_bin!($field, <=),
                        BinOp::Gt => cmp_bin!($field, >),
                        BinOp::Ge => cmp_bin!($field, >=),
                        _ => unreachable!("guarded by is_comparison"),
                    }
                };
            }
            let f = match (lk, rk) {
                (NKind::F32, NKind::F32) => match bop {
                    BinOp::Add => f32_arith!(+),
                    BinOp::Sub => f32_arith!(-),
                    BinOp::Mul => f32_arith!(*),
                    BinOp::Div => f32_arith!(/),
                    b if b.is_comparison() => cmp_kind!(f32s),
                    _ => generic_bin(bop, lk, rk, d, l, r),
                },
                (NKind::F64, NKind::F64) => match bop {
                    BinOp::Add => f64_arith!(+),
                    BinOp::Sub => f64_arith!(-),
                    BinOp::Mul => f64_arith!(*),
                    BinOp::Div => f64_arith!(/),
                    b if b.is_comparison() => cmp_kind!(f64s),
                    _ => generic_bin(bop, lk, rk, d, l, r),
                },
                (NKind::I32, NKind::I32) => match bop {
                    BinOp::Add => i32_arith!(+),
                    BinOp::Sub => i32_arith!(-),
                    BinOp::Mul => i32_arith!(*),
                    BinOp::Div | BinOp::Rem => {
                        let is_div = bop == BinOp::Div;
                        step(move |cx| {
                            let n = cx.n_active;
                            let mut a = [0i32; BATCH_LANES];
                            let mut b = [0i32; BATCH_LANES];
                            a[..n].copy_from_slice(&cx.regs.i32s[l..l + n]);
                            b[..n].copy_from_slice(&cx.regs.i32s[r..r + n]);
                            for (li, (av, bv)) in a.iter().zip(&b).take(n).enumerate() {
                                if *bv == 0 {
                                    // "integer division by zero" at replay
                                    return Err(NativeAbort::Error);
                                }
                                let v = if is_div {
                                    (*av as i64) / (*bv as i64)
                                } else {
                                    (*av as i64) % (*bv as i64)
                                };
                                cx.regs.i32s[d + li] = v as i32;
                            }
                            Ok(())
                        })
                    }
                    b if b.is_comparison() => cmp_kind!(i32s),
                    _ => generic_bin(bop, lk, rk, d, l, r),
                },
                _ => generic_bin(bop, lk, rk, d, l, r),
            };
            (f, "")
        }
        Op::Neg { dst, src } => {
            let (k, _) = read_kind(st, *src)?;
            let d = row(*dst);
            let s = row(*src);
            let f = match k {
                NKind::F32 => step(move |cx| {
                    let n = cx.n_active;
                    let regs = &mut *cx.regs;
                    regs.f32s.copy_within(s..s + n, d);
                    for v in &mut regs.f32s[d..d + n] {
                        *v = -*v;
                    }
                    Ok(())
                }),
                NKind::F64 => step(move |cx| {
                    let n = cx.n_active;
                    let regs = &mut *cx.regs;
                    regs.f64s.copy_within(s..s + n, d);
                    for v in &mut regs.f64s[d..d + n] {
                        *v = -*v;
                    }
                    Ok(())
                }),
                NKind::I32 => step(move |cx| {
                    let n = cx.n_active;
                    let regs = &mut *cx.regs;
                    regs.i32s.copy_within(s..s + n, d);
                    for v in &mut regs.i32s[d..d + n] {
                        *v = v.wrapping_neg();
                    }
                    Ok(())
                }),
                NKind::Bool => return Err("negates a bool value".to_string()),
            };
            (f, "")
        }
        Op::Not { dst, src } => {
            let (k, _) = read_kind(st, *src)?;
            let d = row(*dst);
            let s = row(*src);
            macro_rules! not_loop {
                ($field:ident, |$x:ident| $e:expr) => {
                    step(move |cx| {
                        let n = cx.n_active;
                        let regs = &mut *cx.regs;
                        for (dv, sv) in regs.bools[d..d + n].iter_mut().zip(&regs.$field[s..s + n])
                        {
                            let $x = *sv;
                            *dv = $e;
                        }
                        Ok(())
                    })
                };
            }
            // `!as_bool(x)` ≡ `x == 0` for every kind, NaN included (NaN is
            // truthy, so its negation is false — and `NaN == 0.0` is false).
            let f = match k {
                NKind::F32 => not_loop!(f32s, |x| x == 0.0),
                NKind::F64 => not_loop!(f64s, |x| x == 0.0),
                NKind::I32 => not_loop!(i32s, |x| x == 0),
                NKind::Bool => step(move |cx| {
                    let n = cx.n_active;
                    let regs = &mut *cx.regs;
                    regs.bools.copy_within(s..s + n, d);
                    for v in &mut regs.bools[d..d + n] {
                        *v = !*v;
                    }
                    Ok(())
                }),
            };
            (f, "")
        }
        Op::BufLoad { dst, name, idx } => {
            let (slot, pointee) = buffers[name];
            let pk = NKind::of(pointee).expect("uint buffers pre-rejected");
            let (ik, iota) = read_kind(st, *idx)?;
            let d = row(*dst);
            let i = row(*idx);
            let slot_us = slot as usize;
            if iota && pointee == ScalarType::Float {
                *uses_iota = true;
                (
                    step(move |cx| {
                        let n = cx.n_active;
                        // Iota ⇒ lane ℓ's address is `start + ℓ` and owns its
                        // element, so one bounds check covers the batch and
                        // no hazard flags change (every access is own-index).
                        let start = cx.regs.i32s[i] as usize;
                        let ArgBinding::Buffer(BufferView::F32(buf)) = &cx.args[slot_us] else {
                            return Err(NativeAbort::Error);
                        };
                        let Some(src) = buf.get(start..start + n) else {
                            return Err(NativeAbort::Error);
                        };
                        cx.regs.f32s[d..d + n].copy_from_slice(src);
                        Ok(())
                    }),
                    " ; iota f32 span",
                )
            } else {
                (
                    step(move |cx| {
                        for li in 0..cx.n_active {
                            let addr = addr_of(cx.regs, ik, i, li);
                            if addr < 0 {
                                return Err(NativeAbort::Error);
                            }
                            let addr = addr as usize;
                            if cx.hazards && addr != cx.items[li].global_id {
                                cx.slot_foreign_load[slot_us] = true;
                                if cx.slot_stored[slot_us] {
                                    return Err(NativeAbort::Bail);
                                }
                            }
                            let ArgBinding::Buffer(view) = &cx.args[slot_us] else {
                                return Err(NativeAbort::Error);
                            };
                            match view {
                                BufferView::F32(buf) => match buf.get(addr) {
                                    Some(v) => cx.regs.f32s[d + li] = *v,
                                    None => return Err(NativeAbort::Error),
                                },
                                other => match other.load(addr) {
                                    Some(v) => write_value(cx.regs, pk, d, li, v),
                                    None => return Err(NativeAbort::Error),
                                },
                            }
                        }
                        Ok(())
                    }),
                    "",
                )
            }
        }
        Op::BufStore { name, idx, src } => {
            let (slot, pointee) = buffers[name];
            let (ik, iota) = read_kind(st, *idx)?;
            let (sk, _) = read_kind(st, *src)?;
            let i = row(*idx);
            let s = row(*src);
            let slot_us = slot as usize;
            if iota && pointee == ScalarType::Float {
                *uses_iota = true;
                (
                    step(move |cx| {
                        let n = cx.n_active;
                        if cx.hazards && cx.slot_foreign_load[slot_us] {
                            return Err(NativeAbort::Bail);
                        }
                        let start = cx.regs.i32s[i] as usize;
                        // Convert the source row exactly like
                        // `BufferView::store` (`as_f64() as f32`).
                        let mut vals = [0.0f32; BATCH_LANES];
                        match sk {
                            NKind::F32 => vals[..n].copy_from_slice(&cx.regs.f32s[s..s + n]),
                            NKind::F64 => {
                                for (v, x) in vals[..n].iter_mut().zip(&cx.regs.f64s[s..s + n]) {
                                    *v = *x as f32;
                                }
                            }
                            NKind::I32 => {
                                for (v, x) in vals[..n].iter_mut().zip(&cx.regs.i32s[s..s + n]) {
                                    *v = (*x as f64) as f32;
                                }
                            }
                            NKind::Bool => {
                                for (v, x) in vals[..n].iter_mut().zip(&cx.regs.bools[s..s + n]) {
                                    *v = if *x { 1.0 } else { 0.0 };
                                }
                            }
                        }
                        let ArgBinding::Buffer(BufferView::F32(buf)) = &mut cx.args[slot_us] else {
                            return Err(NativeAbort::Error);
                        };
                        let Some(dst) = buf.get_mut(start..start + n) else {
                            return Err(NativeAbort::Error);
                        };
                        cx.undo.push_span(slot, start, dst);
                        dst.copy_from_slice(&vals[..n]);
                        cx.slot_stored[slot_us] = true;
                        Ok(())
                    }),
                    " ; iota f32 span",
                )
            } else {
                (
                    step(move |cx| {
                        for li in 0..cx.n_active {
                            let addr = addr_of(cx.regs, ik, i, li);
                            if addr < 0 {
                                return Err(NativeAbort::Error);
                            }
                            let addr = addr as usize;
                            if cx.hazards
                                && (addr != cx.items[li].global_id || cx.slot_foreign_load[slot_us])
                            {
                                return Err(NativeAbort::Bail);
                            }
                            let v = read_value(cx.regs, sk, s, li);
                            let ArgBinding::Buffer(view) = &mut cx.args[slot_us] else {
                                return Err(NativeAbort::Error);
                            };
                            match view {
                                BufferView::F32(buf) => {
                                    let Some(p) = buf.get_mut(addr) else {
                                        return Err(NativeAbort::Error);
                                    };
                                    cx.undo.push_elem(slot, addr, Value::Float(*p));
                                    *p = v.as_f64() as f32;
                                }
                                other => {
                                    let Some(old) = other.load(addr) else {
                                        return Err(NativeAbort::Error);
                                    };
                                    cx.undo.push_elem(slot, addr, old);
                                    if !other.store(addr, v) {
                                        return Err(NativeAbort::Error);
                                    }
                                }
                            }
                        }
                        cx.slot_stored[slot_us] = true;
                        Ok(())
                    }),
                    "",
                )
            }
        }
        Op::CallBuiltin {
            builtin,
            dst,
            args,
            nargs,
        } => {
            let builtin = *builtin;
            let n = *nargs as usize;
            if n > 4 {
                return Err("builtin call with more than four arguments".to_string());
            }
            let mut akinds = [NKind::I32; 4];
            let mut all_f32 = true;
            for (k, ak) in akinds.iter_mut().enumerate().take(n) {
                let (kk, _) = read_kind(st, *args + k as Reg)?;
                *ak = kk;
                all_f32 &= kk == NKind::F32;
            }
            let d = row(*dst);
            let a0 = row(*args);
            // All-f32 argument lists always produce f32 results, computed in
            // the f64 domain exactly like `eval_math`.
            if all_f32 && n == 1 {
                if let Some(g) = unary_math(builtin) {
                    return Ok((
                        step(move |cx| {
                            let na = cx.n_active;
                            let mut a = [0.0f32; BATCH_LANES];
                            a[..na].copy_from_slice(&cx.regs.f32s[a0..a0 + na]);
                            for (dv, av) in cx.regs.f32s[d..d + na].iter_mut().zip(a.iter()) {
                                *dv = g(*av as f64) as f32;
                            }
                            Ok(())
                        }),
                        " ; f32 math",
                    ));
                }
            }
            if all_f32 && n == 2 {
                if let Some(g) = binary_math(builtin) {
                    let a1 = a0 + BATCH_LANES;
                    return Ok((
                        step(move |cx| {
                            let na = cx.n_active;
                            let mut a = [0.0f32; BATCH_LANES];
                            let mut b = [0.0f32; BATCH_LANES];
                            a[..na].copy_from_slice(&cx.regs.f32s[a0..a0 + na]);
                            b[..na].copy_from_slice(&cx.regs.f32s[a1..a1 + na]);
                            for (dv, (av, bv)) in cx.regs.f32s[d..d + na]
                                .iter_mut()
                                .zip(a.iter().zip(b.iter()))
                            {
                                *dv = g(*av as f64, *bv as f64) as f32;
                            }
                            Ok(())
                        }),
                        " ; f32 math",
                    ));
                }
            }
            if all_f32 && n == 3 {
                if let Some(g) = ternary_math(builtin) {
                    let a1 = a0 + BATCH_LANES;
                    let a2 = a0 + 2 * BATCH_LANES;
                    return Ok((
                        step(move |cx| {
                            let na = cx.n_active;
                            let mut a = [0.0f32; BATCH_LANES];
                            let mut b = [0.0f32; BATCH_LANES];
                            let mut c = [0.0f32; BATCH_LANES];
                            a[..na].copy_from_slice(&cx.regs.f32s[a0..a0 + na]);
                            b[..na].copy_from_slice(&cx.regs.f32s[a1..a1 + na]);
                            c[..na].copy_from_slice(&cx.regs.f32s[a2..a2 + na]);
                            for (dv, ((av, bv), cv)) in cx.regs.f32s[d..d + na]
                                .iter_mut()
                                .zip(a.iter().zip(b.iter()).zip(c.iter()))
                            {
                                *dv = g(*av as f64, *bv as f64, *cv as f64) as f32;
                            }
                            Ok(())
                        }),
                        " ; f32 math",
                    ));
                }
            }
            let dk = {
                let tys: Vec<ScalarType> = akinds[..n].iter().map(|k| k.scalar()).collect();
                NKind::of(builtin.result_type(&tys))
                    .ok_or_else(|| "builtin returns uint".to_string())?
            };
            (
                step(move |cx| {
                    for li in 0..cx.n_active {
                        let mut vals = [Value::Int(0); 4];
                        for (k, v) in vals.iter_mut().enumerate().take(n) {
                            *v = read_value(cx.regs, akinds[k], a0 + k * BATCH_LANES, li);
                        }
                        let res = builtin.eval_math(&vals[..n]);
                        write_value(cx.regs, dk, d, li, res);
                    }
                    Ok(())
                }),
                "",
            )
        }
        Op::WorkItem { dst, builtin } => {
            let d = row(*dst);
            macro_rules! wi {
                (|$it:ident| $e:expr) => {
                    step(move |cx| {
                        let n = cx.n_active;
                        for (dv, $it) in cx.regs.i32s[d..d + n].iter_mut().zip(cx.items) {
                            *dv = ($e) as i32;
                        }
                        Ok(())
                    })
                };
            }
            let f = match builtin {
                Builtin::GetGlobalId => wi!(|it| it.global_id),
                Builtin::GetLocalId => wi!(|it| it.local_id),
                Builtin::GetGroupId => wi!(|it| it.group_id),
                Builtin::GetGlobalSize => wi!(|it| it.global_size),
                Builtin::GetLocalSize => wi!(|it| it.local_size),
                Builtin::GetNumGroups => wi!(|it| it.global_size.div_ceil(it.local_size.max(1))),
                other => return Err(format!("work-item op carries {other:?}")),
            };
            (f, "")
        }
        Op::StencilGet { dst, args } => {
            let (dxk, _) = read_kind(st, *args)?;
            let (dyk, _) = read_kind(st, *args + 1)?;
            let d = row(*dst);
            let dx_row = row(*args);
            let dy_row = row(*args + 1);
            (
                step(move |cx| {
                    let Some(ctx) = cx.stencil else {
                        return Err(NativeAbort::Error);
                    };
                    if cx.hazards {
                        if cx.slot_stored[ctx.in_slot] {
                            return Err(NativeAbort::Bail);
                        }
                        cx.slot_foreign_load[ctx.in_slot] = true;
                    }
                    for li in 0..cx.n_active {
                        let dx = addr_of(cx.regs, dxk, dx_row, li);
                        let dy = addr_of(cx.regs, dyk, dy_row, li);
                        match stencil_get(ctx, cx.args, cx.items[li].global_id, dx, dy) {
                            Ok(v) => write_value(cx.regs, NKind::F32, d, li, v),
                            Err(_) => return Err(NativeAbort::Error),
                        }
                    }
                    Ok(())
                }),
                "",
            )
        }
        other => return Err(format!("unsupported instruction {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    #[test]
    fn tier_parse_round_trips_and_aliases() {
        for t in [
            Tier::Interp,
            Tier::Scalar,
            Tier::Batched,
            Tier::Native,
            Tier::Auto,
        ] {
            assert_eq!(Tier::parse(&t.to_string()).unwrap(), t);
            assert_eq!(Tier::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(Tier::parse(" VM ").unwrap(), Tier::Batched);
        assert_eq!(Tier::parse("Interpreter").unwrap(), Tier::Interp);
        let err = Tier::parse("warp").unwrap_err();
        assert!(err.message.contains("unknown kernel tier `warp`"));
        assert!(err.message.contains("native"));
    }

    #[test]
    fn auto_heuristic_gates_on_size_and_heat() {
        assert!(auto_graduates(0, AUTO_SIZE_IMMEDIATE));
        assert!(!auto_graduates(0, AUTO_SIZE_IMMEDIATE - 1));
        assert!(auto_graduates(AUTO_MIN_LAUNCHES, AUTO_MIN_SIZE));
        assert!(!auto_graduates(AUTO_MIN_LAUNCHES - 1, AUTO_MIN_SIZE));
        assert!(!auto_graduates(AUTO_MIN_LAUNCHES, AUTO_MIN_SIZE - 1));
    }

    #[test]
    fn map_kernel_compiles_with_iota_fast_paths() {
        let p = Program::build(
            r#"
            __kernel void k(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = v[i] * 2.0f; }
            }
        "#,
        )
        .unwrap();
        let idx = p.kernel("k").unwrap().index();
        let nk = compile_kernel(p.compiled(), idx).unwrap();
        assert!(nk.block_count() >= 2);
        assert!(nk.uses_iota);
        assert!(nk.listing().contains("iota f32 span"));
        assert!(nk.listing().contains("exit chain") || nk.listing().contains("branch"));
    }

    #[test]
    fn vm_frame_calls_are_ineligible() {
        // Recursion defeats the compiler's inliner, leaving a real
        // `Op::Call` that only the VM's frame machinery can execute.
        let p = Program::build(
            r#"
            float fib(float n) {
                if (n < 2.0f) { return n; }
                return fib(n - 1.0f) + fib(n - 2.0f);
            }
            __kernel void k(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = fib(v[i]); }
            }
        "#,
        )
        .unwrap();
        let idx = p.kernel("k").unwrap().index();
        let err = compile_kernel(p.compiled(), idx).unwrap_err();
        assert!(err.contains("through a VM frame"), "reason: {err}");
    }

    #[test]
    fn loop_kernel_compiles_with_back_edges() {
        let p = Program::build(
            r#"
            __kernel void k(__global float* v, int n) {
                float acc = 0.0f;
                for (int j = 0; j < n; j++) { acc = acc + v[j]; }
                v[0] = acc;
            }
        "#,
        )
        .unwrap();
        let idx = p.kernel("k").unwrap().index();
        let nk = compile_kernel(p.compiled(), idx).unwrap();
        assert!(nk.listing().contains("back edge"));
    }
}
