//! Semantic analysis: symbol resolution and type checking.
//!
//! The checker walks every function body, maintaining a scope stack, and
//! verifies that
//!
//! * every referenced variable, parameter or function exists,
//! * buffer indexing is only applied to pointer parameters and indices are
//!   integers,
//! * operand types of arithmetic/logical operators are compatible,
//! * call arities match (user functions and builtins),
//! * assignments target lvalues of scalar type,
//! * non-void functions return a value on the paths that have a `return`,
//! * kernels return `void` and do not have pointer-typed local declarations.
//!
//! The language is implicitly-converting (C style), so the checker mostly
//! rejects structural errors rather than narrowing conversions.

use std::collections::HashMap;

use crate::ast::*;
use crate::builtins::Builtin;
use crate::diag::KernelError;
use crate::token::Span;
use crate::types::{ScalarType, Type};

/// Type-check a translation unit, returning it unchanged on success.
pub fn check(unit: TranslationUnit) -> Result<TranslationUnit, KernelError> {
    let mut signatures: HashMap<String, (Vec<Type>, Type)> = HashMap::new();
    for f in &unit.functions {
        if Builtin::from_name(&f.name).is_some() {
            return Err(KernelError::check(
                format!("function `{}` shadows a builtin", f.name),
                f.span,
            ));
        }
        if signatures
            .insert(
                f.name.clone(),
                (f.params.iter().map(|p| p.ty).collect(), f.return_type),
            )
            .is_some()
        {
            return Err(KernelError::check(
                format!("duplicate definition of function `{}`", f.name),
                f.span,
            ));
        }
    }

    for f in &unit.functions {
        if f.is_kernel && !f.return_type.is_void() {
            return Err(KernelError::check(
                format!("__kernel function `{}` must return void", f.name),
                f.span,
            ));
        }
        let mut checker = Checker {
            signatures: &signatures,
            scopes: vec![HashMap::new()],
            function: f,
        };
        for p in &f.params {
            checker.declare(&p.name, p.ty, p.span)?;
        }
        checker.check_block(&f.body)?;
    }
    Ok(unit)
}

struct Checker<'a> {
    signatures: &'a HashMap<String, (Vec<Type>, Type)>,
    scopes: Vec<HashMap<String, Type>>,
    function: &'a Function,
}

impl<'a> Checker<'a> {
    fn declare(&mut self, name: &str, ty: Type, span: Span) -> Result<(), KernelError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(KernelError::check(
                format!("`{name}` is declared twice in the same scope"),
                span,
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, span: Span) -> Result<Type, KernelError> {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return Ok(*ty);
            }
        }
        Err(KernelError::check(
            format!("unknown variable `{name}`"),
            span,
        ))
    }

    fn check_block(&mut self, block: &Block) -> Result<(), KernelError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), KernelError> {
        match stmt {
            Stmt::Decl {
                ty,
                name,
                init,
                span,
            } => {
                if let Some(init) = init {
                    self.check_expr(init)?;
                }
                self.declare(name, Type::Scalar(*ty), *span)
            }
            Stmt::Expr(e) => self.check_expr(e).map(|_| ()),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.check_expr(cond)?;
                self.check_block(then_block)?;
                self.check_block(else_block)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_expr(cond)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.check_block(body)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond)?;
                self.check_block(body)
            }
            Stmt::Return(expr, span) => {
                let ret = self.function.return_type;
                match (expr, ret) {
                    (None, Type::Void) => Ok(()),
                    (Some(_), Type::Void) => Err(KernelError::check(
                        format!("void function `{}` returns a value", self.function.name),
                        *span,
                    )),
                    (Some(e), _) => {
                        let ety = self.check_expr(e)?;
                        if ety.is_pointer() {
                            Err(KernelError::check("cannot return a pointer", *span))
                        } else {
                            Ok(())
                        }
                    }
                    (None, _) => Err(KernelError::check(
                        format!(
                            "non-void function `{}` must return a value",
                            self.function.name
                        ),
                        *span,
                    )),
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => Ok(()),
            Stmt::Block(b) => self.check_block(b),
        }
    }

    fn check_lvalue(&mut self, lv: &LValue) -> Result<ScalarType, KernelError> {
        match lv {
            LValue::Var(name, span) => {
                let ty = self.lookup(name, *span)?;
                match ty {
                    Type::Scalar(s) => Ok(s),
                    _ => Err(KernelError::check(
                        format!("cannot assign to pointer `{name}` directly; index it"),
                        *span,
                    )),
                }
            }
            LValue::Index { base, index, span } => {
                let base_ty = self.lookup(base, *span)?;
                let idx_ty = self.check_expr(index)?;
                if !matches!(idx_ty, Type::Scalar(s) if s.is_integer() || s == ScalarType::Bool) {
                    return Err(KernelError::check(
                        "buffer index must be an integer expression",
                        index.span(),
                    ));
                }
                match base_ty {
                    Type::GlobalPtr(s) => Ok(s),
                    _ => Err(KernelError::check(
                        format!("`{base}` is not a buffer and cannot be indexed"),
                        *span,
                    )),
                }
            }
        }
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<Type, KernelError> {
        match expr {
            Expr::IntLit(..) => Ok(Type::Scalar(ScalarType::Int)),
            Expr::FloatLit(..) => Ok(Type::Scalar(ScalarType::Float)),
            Expr::BoolLit(..) => Ok(Type::Scalar(ScalarType::Bool)),
            Expr::Var(name, span) => self.lookup(name, *span),
            Expr::Index { base, index, span } => {
                let s = self.check_lvalue(&LValue::Index {
                    base: base.clone(),
                    index: index.clone(),
                    span: *span,
                })?;
                Ok(Type::Scalar(s))
            }
            Expr::Unary { op, operand, span } => {
                let ty = self.check_expr(operand)?;
                match ty {
                    Type::Scalar(s) => match op {
                        UnOp::Neg if s != ScalarType::Bool => Ok(Type::Scalar(s)),
                        UnOp::Neg => Err(KernelError::check("cannot negate a bool", *span)),
                        UnOp::Not => Ok(Type::Scalar(ScalarType::Bool)),
                    },
                    _ => Err(KernelError::check(
                        "unary operator needs a scalar operand",
                        *span,
                    )),
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                let (Type::Scalar(ls), Type::Scalar(rs)) = (lt, rt) else {
                    return Err(KernelError::check(
                        "binary operators need scalar operands (did you forget to index a buffer?)",
                        *span,
                    ));
                };
                if *op == BinOp::Rem && (ls.is_float() || rs.is_float()) {
                    return Err(KernelError::check("`%` requires integer operands", *span));
                }
                if op.is_comparison() {
                    Ok(Type::Scalar(ScalarType::Bool))
                } else {
                    Ok(Type::Scalar(ls.unify(rs)))
                }
            }
            Expr::Call { callee, args, span } => {
                for a in args {
                    let ty = self.check_expr(a)?;
                    if ty.is_pointer() {
                        return Err(KernelError::check(
                            "pointers cannot be passed to functions in this language subset",
                            a.span(),
                        ));
                    }
                }
                if let Some(b) = Builtin::from_name(callee) {
                    if args.len() != b.arity() {
                        return Err(KernelError::check(
                            format!(
                                "builtin `{callee}` expects {} argument(s), got {}",
                                b.arity(),
                                args.len()
                            ),
                            *span,
                        ));
                    }
                    return Ok(Type::Scalar(b.result_type(
                        &args.iter().map(|_| ScalarType::Float).collect::<Vec<_>>(),
                    )));
                }
                match self.signatures.get(callee) {
                    Some((params, ret)) => {
                        if params.len() != args.len() {
                            return Err(KernelError::check(
                                format!(
                                    "function `{callee}` expects {} argument(s), got {}",
                                    params.len(),
                                    args.len()
                                ),
                                *span,
                            ));
                        }
                        Ok(*ret)
                    }
                    None => Err(KernelError::check(
                        format!("call to unknown function `{callee}`"),
                        *span,
                    )),
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                self.check_expr(cond)?;
                let t = self.check_expr(then_expr)?;
                let e = self.check_expr(else_expr)?;
                match (t, e) {
                    (Type::Scalar(a), Type::Scalar(b)) => Ok(Type::Scalar(a.unify(b))),
                    _ => Err(KernelError::check(
                        "ternary arms must be scalar expressions",
                        then_expr.span(),
                    )),
                }
            }
            Expr::Assign {
                target,
                value,
                op,
                span,
            } => {
                let tgt = self.check_lvalue(target)?;
                let vty = self.check_expr(value)?;
                if vty.is_pointer() {
                    return Err(KernelError::check("cannot assign a pointer value", *span));
                }
                if matches!(op, AssignOp::Assign) {
                    Ok(Type::Scalar(tgt))
                } else if tgt == ScalarType::Bool {
                    Err(KernelError::check(
                        "compound assignment not supported on bool",
                        *span,
                    ))
                } else {
                    Ok(Type::Scalar(tgt))
                }
            }
            Expr::IncDec { target, span, .. } => {
                let tgt = self.check_lvalue(target)?;
                if tgt == ScalarType::Bool {
                    return Err(KernelError::check("cannot increment a bool", *span));
                }
                Ok(Type::Scalar(tgt))
            }
            Expr::Cast { ty, operand, span } => {
                let oty = self.check_expr(operand)?;
                if oty.is_pointer() {
                    return Err(KernelError::check("cannot cast a pointer", *span));
                }
                Ok(Type::Scalar(*ty))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TranslationUnit, KernelError> {
        check(parse(&lex(src).unwrap(), src)?)
    }

    #[test]
    fn accepts_valid_programs() {
        assert!(check_src(
            r#"
            float func(float x, float y, float a) { return a * x + y; }
            __kernel void zip(__global float* xs, __global float* ys,
                              __global float* out, int n, float a) {
                int gid = get_global_id(0);
                if (gid < n) { out[gid] = func(xs[gid], ys[gid], a); }
            }
        "#
        )
        .is_ok());
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = check_src("__kernel void k(__global float* v) { v[0] = missing; }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_unknown_function() {
        let err =
            check_src("__kernel void k(__global float* v) { v[0] = mystery(1.0f); }").unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn rejects_kernel_with_return_type() {
        let err = check_src("__kernel float k(__global float* v) { return v[0]; }").unwrap_err();
        assert!(err.message.contains("must return void"));
    }

    #[test]
    fn rejects_indexing_scalars() {
        let err = check_src("__kernel void k(float x) { x[0] = 1.0f; }").unwrap_err();
        assert!(err.message.contains("not a buffer"));
    }

    #[test]
    fn rejects_float_buffer_index() {
        let err =
            check_src("__kernel void k(__global float* v, float i) { v[i] = 1.0f; }").unwrap_err();
        assert!(err.message.contains("integer"));
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        let err = check_src("__kernel void k(__global float* v) { v[0] = sqrt(1.0f, 2.0f); }")
            .unwrap_err();
        assert!(err.message.contains("expects 1 argument"));
    }

    #[test]
    fn rejects_wrong_call_arity() {
        let err = check_src(
            r#"
            float f(float a, float b) { return a + b; }
            __kernel void k(__global float* v) { v[0] = f(1.0f); }
        "#,
        )
        .unwrap_err();
        assert!(err.message.contains("expects 2 argument"));
    }

    #[test]
    fn rejects_duplicate_declaration_in_scope() {
        let err = check_src("__kernel void k(__global float* v) { int a = 0; float a = 1.0f; }")
            .unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn allows_shadowing_in_nested_scope() {
        assert!(check_src(
            "__kernel void k(__global float* v, int n) { int a = 0; { float a = 1.0f; v[0] = a; } }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_duplicate_functions_and_builtin_shadowing() {
        assert!(
            check_src("float f(float a) { return a; } float f(float b) { return b; } ")
                .unwrap_err()
                .message
                .contains("duplicate")
        );
        assert!(check_src("float sqrt(float a) { return a; }")
            .unwrap_err()
            .message
            .contains("shadows a builtin"));
    }

    #[test]
    fn rejects_void_function_returning_value() {
        let err = check_src("__kernel void k(__global float* v) { return 1; }").unwrap_err();
        assert!(err.message.contains("returns a value"));
    }

    #[test]
    fn rejects_modulo_on_floats() {
        let err =
            check_src("__kernel void k(__global float* v) { v[0] = 1.5f % 2.0f; }").unwrap_err();
        assert!(err.message.contains("integer operands"));
    }
}
