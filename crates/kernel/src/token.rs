//! Token definitions for the kernel language.

use std::fmt;

/// A half-open byte range into the original source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character of the token.
    pub start: usize,
    /// Byte offset one past the last character of the token.
    pub end: usize,
    /// 1-based line number of the token start.
    pub line: u32,
    /// 1-based column number of the token start.
    pub col: u32,
}

impl Span {
    /// Create a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A span that covers both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if self.line <= other.line {
                self.col
            } else {
                other.col
            },
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords recognised by the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Kernel,
    Global,
    Local,
    Const,
    Void,
    Float,
    Double,
    Int,
    Uint,
    Bool,
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    True,
    False,
}

impl Keyword {
    /// Try to interpret an identifier as a keyword.
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "__kernel" | "kernel" => Keyword::Kernel,
            "__global" | "global" => Keyword::Global,
            "__local" | "local" => Keyword::Local,
            "const" => Keyword::Const,
            "void" => Keyword::Void,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "int" => Keyword::Int,
            "uint" | "unsigned" | "size_t" => Keyword::Uint,
            "bool" => Keyword::Bool,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }
}

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier (variable, function or parameter name).
    Ident(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// An integer literal.
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Question,
    Colon,

    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::PlusAssign => write!(f, "`+=`"),
            TokenKind::MinusAssign => write!(f, "`-=`"),
            TokenKind::StarAssign => write!(f, "`*=`"),
            TokenKind::SlashAssign => write!(f, "`/=`"),
            TokenKind::PlusPlus => write!(f, "`++`"),
            TokenKind::MinusMinus => write!(f, "`--`"),
            TokenKind::Eq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Not => write!(f, "`!`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it was found.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_accepts_opencl_spellings() {
        assert_eq!(Keyword::from_str("__kernel"), Some(Keyword::Kernel));
        assert_eq!(Keyword::from_str("kernel"), Some(Keyword::Kernel));
        assert_eq!(Keyword::from_str("__global"), Some(Keyword::Global));
        assert_eq!(Keyword::from_str("size_t"), Some(Keyword::Uint));
        assert_eq!(Keyword::from_str("saxpy"), None);
    }

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(10, 14, 2, 5);
        let j = a.to(b);
        assert_eq!(j.start, 0);
        assert_eq!(j.end, 14);
        assert_eq!(j.line, 1);
    }
}
