//! Bytecode compiler: lowers a checked [`TranslationUnit`] into flat,
//! register-based bytecode executed by [`crate::vm::Vm`].
//!
//! The tree-walking interpreter ([`crate::interp`]) resolves every variable
//! through string-keyed hash maps and re-walks the AST for every work-item,
//! which makes the kernel language itself the bottleneck of large launches.
//! This module performs all name resolution **once per program build**:
//!
//! * scalar variables and parameters become numbered register slots,
//! * structured control flow (`if`/`for`/`while`/`break`/`continue`) is
//!   lowered to conditional and unconditional jumps,
//! * buffer accesses resolve their parameter at compile time (an interned
//!   buffer-name id looked up in a per-launch slot table, so even the
//!   interpreter's dynamic by-name buffer binding is preserved),
//! * the FLOP / global-memory-byte / statement costs that the interpreter
//!   counts through shared `Cell` counters are attributed to individual
//!   instructions at compile time ([`InstrCost`]); the VM accumulates them
//!   as plain per-work-item counters.
//!
//! The attribution mirrors the interpreter's dynamic counting exactly — the
//! differential property suite asserts that VM and interpreter report
//! identical [`crate::interp::ExecStats`] for the same launch.

use std::collections::HashMap;

use crate::ast::*;
use crate::builtins::Builtin;
use crate::diag::KernelError;
use crate::types::{ScalarType, Type};
use crate::value::Value;

/// A register index within one function's frame.
pub type Reg = u16;

/// Execution cost charged when an instruction executes, attributed at
/// compile time. The unit of account is identical to the interpreter's
/// [`crate::interp::ExecStats`]: `flops` are floating-point operations
/// (builtin calls use [`Builtin::flop_cost`]), `bytes` are global-memory
/// traffic, `ops` are evaluated statements/expressions.
/// All cost constants (builtin flop costs, element sizes, op counts) are
/// small integers or halves, exact in `f32`; the VM widens to `f64` when
/// accumulating, so totals are bit-identical to the interpreter's.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstrCost {
    /// Floating-point operations.
    pub flops: f32,
    /// Bytes of global-memory traffic.
    pub bytes: f32,
    /// Statement/expression evaluations (integer and control-flow work).
    pub ops: f32,
}

impl InstrCost {
    /// The zero cost.
    pub const ZERO: InstrCost = InstrCost {
        flops: 0.0,
        bytes: 0.0,
        ops: 0.0,
    };

    fn op() -> InstrCost {
        InstrCost {
            ops: 1.0,
            ..InstrCost::ZERO
        }
    }

    fn flop(flops: f64) -> InstrCost {
        let flops = flops as f32;
        InstrCost {
            flops,
            ops: 1.0,
            ..InstrCost::ZERO
        }
    }

    fn mem(bytes: f64) -> InstrCost {
        let bytes = bytes as f32;
        InstrCost {
            bytes,
            ops: 1.0,
            ..InstrCost::ZERO
        }
    }

    fn is_zero(&self) -> bool {
        self.flops == 0.0 && self.bytes == 0.0 && self.ops == 0.0
    }

    fn add(self, other: InstrCost) -> InstrCost {
        InstrCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            ops: self.ops + other.ops,
        }
    }
}

/// One bytecode instruction. Register operands are frame-relative.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = value`
    Const { dst: Reg, value: Value },
    /// `dst = src` (verbatim copy, no conversion)
    Mov { dst: Reg, src: Reg },
    /// `dst = convert(src, ty)` (C-style conversion, like the interpreter's
    /// typed variable stores)
    Cast { dst: Reg, src: Reg, ty: ScalarType },
    /// `dst = lhs <op> rhs` with the usual arithmetic conversions
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// `dst = -src`
    Neg { dst: Reg, src: Reg },
    /// `dst = !src`
    Not { dst: Reg, src: Reg },
    /// `dst = buffer[idx]`; `name` indexes [`CompiledUnit::buffer_names`]
    BufLoad { dst: Reg, name: u16, idx: Reg },
    /// `buffer[idx] = src`
    BufStore { name: u16, idx: Reg, src: Reg },
    /// Unconditional jump (backward jumps count against the loop budget)
    Jump { target: u32 },
    /// Jump when `cond` is false (C truthiness)
    JumpIfFalse { cond: Reg, target: u32 },
    /// Fused binary-compare-and-branch: evaluate `lhs <op> rhs`, jump when
    /// the result is falsy. Carries the binary operation's cost.
    BinJumpIfFalse {
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
        target: u32,
    },
    /// Jump when `cond` is true
    JumpIfTrue { cond: Reg, target: u32 },
    /// Call a user function; `nargs` argument values start at register
    /// `args`; the result lands in `dst`
    Call {
        func: u16,
        dst: Reg,
        args: Reg,
        nargs: u16,
    },
    /// Call a math builtin over registers `args .. args+nargs`
    CallBuiltin {
        builtin: Builtin,
        dst: Reg,
        args: Reg,
        nargs: u16,
    },
    /// Query a work-item function (`get_global_id` and friends)
    WorkItem { dst: Reg, builtin: Builtin },
    /// Stencil neighbour access `get(dx, dy)`: `dx` and `dy` live in
    /// registers `args` and `args + 1`; resolved against the launch's
    /// stencil context (see [`crate::builtins::stencil`]). Carries the cost
    /// of one global load plus the address arithmetic.
    StencilGet { dst: Reg, args: Reg },
    /// Return `src` (converted to the function's return type)
    Return { src: Reg },
    /// Return from a `void` function (or finish the kernel)
    ReturnVoid,
    /// Fell off the end of a non-void function body; `name` indexes
    /// [`CompiledUnit::buffer_names`] (the unit-wide name table)
    MissingReturn { name: u16 },
    /// `break`/`continue` outside a loop in a called (non-kernel) function
    OrphanFlow,
    /// Reading a name the interpreter has no binding for (a buffer parameter
    /// used as a bare value)
    FailUnbound { name: u16 },
    /// No operation; exists only to carry an [`InstrCost`]
    Nop,
}

/// Parameter metadata of a compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledParam {
    /// Parameter name (used in launch-time validation errors).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Index into [`CompiledUnit::buffer_names`] for pointer parameters.
    pub name_id: u16,
}

/// One function lowered to bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    /// Function name.
    pub name: String,
    /// Whether the function is a `__kernel` entry point.
    pub is_kernel: bool,
    /// Declared return type.
    pub return_type: Type,
    /// Parameters in declaration order (parameter `k` occupies register `k`).
    pub params: Vec<CompiledParam>,
    /// Size of the register frame.
    pub num_regs: u16,
    /// Literal values preloaded into fixed registers once per launch (for
    /// kernels) or at call entry (for kernels invoked as functions), so
    /// literals inside loops cost no per-item instruction.
    pub const_pool: Vec<(Reg, Value)>,
    /// The instruction stream.
    pub code: Vec<Op>,
    /// Per-instruction cost, parallel to `code`.
    pub costs: Vec<InstrCost>,
}

impl CompiledFunction {
    /// Basic-block leader pcs in ascending order: instruction 0, every jump
    /// target, and every instruction following a jump or block-ending
    /// terminator. `FailUnbound` aborts unconditionally at runtime and is
    /// not treated as a block ender.
    pub fn block_leaders(&self) -> Vec<usize> {
        let mut leaders = std::collections::BTreeSet::new();
        leaders.insert(0usize);
        for (pc, op) in self.code.iter().enumerate() {
            match op {
                Op::Jump { target }
                | Op::JumpIfFalse { target, .. }
                | Op::JumpIfTrue { target, .. }
                | Op::BinJumpIfFalse { target, .. } => {
                    leaders.insert(*target as usize);
                    if pc + 1 < self.code.len() {
                        leaders.insert(pc + 1);
                    }
                }
                Op::Return { .. } | Op::ReturnVoid | Op::MissingReturn { .. } | Op::OrphanFlow
                    if pc + 1 < self.code.len() =>
                {
                    leaders.insert(pc + 1);
                }
                _ => {}
            }
        }
        leaders.into_iter().collect()
    }
}

/// A whole translation unit lowered to bytecode. Function indices match
/// [`TranslationUnit::functions`], so [`crate::KernelHandle`] indices work
/// unchanged.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledUnit {
    /// Compiled functions in declaration order.
    pub functions: Vec<CompiledFunction>,
    /// Interned buffer (pointer-parameter) names referenced by
    /// [`Op::BufLoad`]/[`Op::BufStore`].
    pub buffer_names: Vec<String>,
}

impl CompiledUnit {
    /// Total number of instructions across all functions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// Compile a checked translation unit. The unit must have passed
/// [`crate::sema::check`]; structural errors that sema rejects are reported
/// here as internal errors rather than silently miscompiled.
pub fn compile(unit: &TranslationUnit) -> Result<CompiledUnit, KernelError> {
    // Function and name ids are u16; reject units that would overflow them
    // (ids are handed out sequentially, so a final count within range
    // guarantees no id wrapped during lowering).
    if unit.functions.len() > u16::MAX as usize {
        return Err(KernelError::run(format!(
            "translation unit defines {} functions; at most {} are supported",
            unit.functions.len(),
            u16::MAX
        )));
    }
    let mut names = Interner::default();
    let mut functions = Vec::with_capacity(unit.functions.len());
    for func in &unit.functions {
        functions.push(FnCompiler::lower(unit, func, &mut names)?);
    }
    if names.names.len() > u16::MAX as usize + 1 {
        return Err(KernelError::run(format!(
            "translation unit uses {} distinct parameter/function names; at most {} are supported",
            names.names.len(),
            u16::MAX as usize + 1
        )));
    }
    Ok(CompiledUnit {
        functions,
        buffer_names: names.names,
    })
}

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u16 {
        if let Some(id) = self.index.get(name) {
            return *id;
        }
        let id = self.names.len() as u16;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }
}

/// A forward-patchable jump label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label(usize);

struct LoopCtx {
    continue_target: Label,
    break_target: Label,
}

/// An expression result: the register holding the value, and whether that
/// register is a throw-away temporary (`stable`) or may alias a named
/// variable that a later side effect could overwrite.
#[derive(Debug, Clone, Copy)]
struct ExprVal {
    reg: Reg,
    stable: bool,
}

impl ExprVal {
    fn temp(reg: Reg) -> ExprVal {
        ExprVal { reg, stable: true }
    }
}

struct FnCompiler<'u> {
    unit: &'u TranslationUnit,
    func: &'u Function,
    code: Vec<Op>,
    costs: Vec<InstrCost>,
    /// Cost waiting to be attached to the next emitted instruction.
    pending: InstrCost,
    /// Compile-time scope stack: name → (register, declared scalar type).
    scopes: Vec<Vec<(String, Reg, ScalarType)>>,
    /// Pointer parameters of this function: name → interned name id and
    /// pointee type (for static byte-cost attribution).
    buffer_params: HashMap<String, (u16, ScalarType)>,
    next_reg: u32,
    max_reg: u32,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
    loops: Vec<LoopCtx>,
    func_end: Label,
    /// Bit-exact literal value -> preloaded pool register (kernels only).
    consts: HashMap<(u8, u64), Reg>,
    const_pool: Vec<(Reg, Value)>,
    /// Active function inlining contexts (innermost last).
    inline_ctxs: Vec<InlineCtx>,
    /// Names of functions currently being inlined (recursion guard).
    inline_stack: Vec<String>,
}

/// State of one function body being inlined at a call site.
struct InlineCtx {
    /// Register receiving the callee's (converted) return value.
    result: Reg,
    /// Label just past the inlined body (`return` jumps here).
    end: Label,
    /// The callee's declared return type.
    return_type: Type,
    /// `self.loops` height at inline entry: `break`/`continue` may only
    /// target loops opened inside the inlined body (the interpreter treats a
    /// loop-less break in a called function as a runtime error).
    loops_floor: usize,
}

/// Code-size ceiling past which calls are no longer inlined.
const INLINE_CODE_LIMIT: usize = 8192;
/// Maximum inline nesting (mirrors the cost estimator's recursion cutoff).
const INLINE_DEPTH_LIMIT: usize = 8;

impl<'u> FnCompiler<'u> {
    fn lower(
        unit: &'u TranslationUnit,
        func: &'u Function,
        names: &mut Interner,
    ) -> Result<CompiledFunction, KernelError> {
        let mut params = Vec::with_capacity(func.params.len());
        let mut buffer_params = HashMap::new();
        for p in &func.params {
            let name_id = names.intern(&p.name);
            if let Type::GlobalPtr(s) = p.ty {
                buffer_params.insert(p.name.clone(), (name_id, s));
            }
            params.push(CompiledParam {
                name: p.name.clone(),
                ty: p.ty,
                name_id,
            });
        }

        let mut c = FnCompiler {
            unit,
            func,
            code: Vec::new(),
            costs: Vec::new(),
            pending: InstrCost::ZERO,
            scopes: vec![Vec::new()],
            buffer_params,
            next_reg: 0,
            max_reg: 0,
            labels: Vec::new(),
            patches: Vec::new(),
            loops: Vec::new(),
            func_end: Label(0),
            consts: HashMap::new(),
            const_pool: Vec::new(),
            inline_ctxs: Vec::new(),
            inline_stack: Vec::new(),
        };
        c.func_end = c.new_label();

        // Parameters occupy registers 0..n; scalar parameters are named
        // variables of their declared scalar type (assignments to them
        // convert, exactly like the interpreter's environment).
        for p in &func.params {
            let reg = c.alloc_reg()?;
            if let Type::Scalar(s) = p.ty {
                c.declare(&p.name, reg, s);
            }
        }

        // Kernels preload every literal of the unit into a read-only
        // register pool, written once per launch instead of once per use per
        // work-item. (The whole unit is scanned because function inlining
        // splices helper bodies -- and their literals -- into the kernel.)
        if func.is_kernel {
            for value in collect_literals(unit) {
                let reg = c.alloc_reg()?;
                c.consts.insert(value_key(value), reg);
                c.const_pool.push((reg, value));
            }
        }

        c.block_stmts(&func.body, names)?;
        c.bind_label(c.func_end);
        if func.return_type.is_void() {
            c.emit(Op::ReturnVoid, InstrCost::ZERO);
        } else {
            let name = names.intern(&func.name);
            c.emit(Op::MissingReturn { name }, InstrCost::ZERO);
        }

        // Patch forward jumps.
        let mut code = c.code;
        for (at, label) in c.patches {
            let target = c.labels[label.0].expect("label bound before patching");
            match &mut code[at] {
                Op::Jump { target: t }
                | Op::JumpIfFalse { target: t, .. }
                | Op::JumpIfTrue { target: t, .. }
                | Op::BinJumpIfFalse { target: t, .. } => *t = target,
                other => unreachable!("patching non-jump instruction {other:?}"),
            }
        }

        Ok(CompiledFunction {
            name: func.name.clone(),
            is_kernel: func.is_kernel,
            return_type: func.return_type,
            params,
            num_regs: c.max_reg as u16,
            const_pool: c.const_pool,
            code,
            costs: c.costs,
        })
    }

    // ---- emission helpers -------------------------------------------------

    fn emit(&mut self, op: Op, cost: InstrCost) {
        let cost = std::mem::take(&mut self.pending).add(cost);
        self.code.push(op);
        self.costs.push(cost);
    }

    /// Emit a `Nop` if cost is still waiting for a carrier instruction.
    fn flush_pending(&mut self) {
        if !self.pending.is_zero() {
            self.emit(Op::Nop, InstrCost::ZERO);
        }
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind_label(&mut self, label: Label) {
        self.flush_pending();
        self.labels[label.0] = Some(self.code.len() as u32);
    }

    fn emit_jump(&mut self, op: Op, label: Label, cost: InstrCost) {
        let at = self.code.len();
        self.emit(op, cost);
        self.patches.push((at, label));
    }

    // ---- registers and scopes --------------------------------------------

    fn alloc_reg(&mut self) -> Result<Reg, KernelError> {
        let reg = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        // The frame size (`max_reg`, i.e. highest index + 1) must itself fit
        // in a u16, so the last usable register index is u16::MAX - 1.
        if reg >= u16::MAX as u32 {
            return Err(KernelError::run(format!(
                "function `{}` needs more than {} registers",
                self.func.name,
                u16::MAX as u32 - 1
            )));
        }
        Ok(reg as Reg)
    }

    fn temp(&mut self) -> Result<Reg, KernelError> {
        self.alloc_reg()
    }

    fn declare(&mut self, name: &str, reg: Reg, ty: ScalarType) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), reg, ty));
    }

    fn lookup(&self, name: &str) -> Option<(Reg, ScalarType)> {
        for scope in self.scopes.iter().rev() {
            for (n, reg, ty) in scope.iter().rev() {
                if n == name {
                    return Some((*reg, *ty));
                }
            }
        }
        None
    }

    // ---- statements -------------------------------------------------------

    fn block_stmts(&mut self, block: &Block, names: &mut Interner) -> Result<(), KernelError> {
        self.scopes.push(Vec::new());
        for stmt in &block.stmts {
            self.stmt(stmt, names)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, names: &mut Interner) -> Result<(), KernelError> {
        // The interpreter counts one op when it begins executing any
        // statement; attach it to the statement's first emitted instruction.
        self.pending.ops += 1.0;
        let mark = self.next_reg;
        match stmt {
            Stmt::Decl { ty, name, init, .. } => {
                let var = self.alloc_reg()?;
                let inner_mark = self.next_reg;
                match init {
                    // When the initialiser's runtime type provably equals
                    // the declared type, the conversion is an identity and
                    // the value can land in the variable directly.
                    Some(e) if self.static_type(e) == Some(*ty) => {
                        self.expr_into(e, var, names)?;
                    }
                    Some(e) => {
                        let v = self.expr(e, names)?;
                        self.emit(
                            Op::Cast {
                                dst: var,
                                src: v.reg,
                                ty: *ty,
                            },
                            InstrCost::ZERO,
                        );
                    }
                    None => self.emit(
                        Op::Const {
                            dst: var,
                            value: Value::zero(*ty),
                        },
                        InstrCost::ZERO,
                    ),
                }
                self.next_reg = inner_mark;
                self.declare(name, var, *ty);
                self.flush_pending();
                return Ok(());
            }
            Stmt::Expr(e) => self.expr_stmt(e, names)?,
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let end = self.new_label();
                if else_block.stmts.is_empty() {
                    self.branch_if_false(cond, end, names)?;
                    self.block_stmts(then_block, names)?;
                } else {
                    let els = self.new_label();
                    self.branch_if_false(cond, els, names)?;
                    self.block_stmts(then_block, names)?;
                    self.emit_jump(Op::Jump { target: 0 }, end, InstrCost::ZERO);
                    self.bind_label(els);
                    self.block_stmts(else_block, names)?;
                }
                self.bind_label(end);
            }
            Stmt::While { cond, body } => {
                let head = self.new_label();
                let end = self.new_label();
                self.bind_label(head);
                self.branch_if_false(cond, end, names)?;
                self.loops.push(LoopCtx {
                    continue_target: head,
                    break_target: end,
                });
                self.block_stmts(body, names)?;
                self.loops.pop();
                self.emit_jump(Op::Jump { target: 0 }, head, InstrCost::ZERO);
                self.bind_label(end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for-scope holds the induction variable across
                // iterations (the interpreter pushes one env scope here).
                self.scopes.push(Vec::new());
                if let Some(init) = init {
                    self.stmt(init, names)?;
                }
                let head = self.new_label();
                let step_label = self.new_label();
                let end = self.new_label();
                self.bind_label(head);
                if let Some(c) = cond {
                    self.branch_if_false(c, end, names)?;
                }
                self.loops.push(LoopCtx {
                    continue_target: step_label,
                    break_target: end,
                });
                self.block_stmts(body, names)?;
                self.loops.pop();
                self.bind_label(step_label);
                if let Some(s) = step {
                    // Step expressions are statement-position: their value
                    // is discarded.
                    self.expr_stmt(s, names)?;
                }
                self.emit_jump(Op::Jump { target: 0 }, head, InstrCost::ZERO);
                self.bind_label(end);
                self.scopes.pop();
            }
            Stmt::Return(expr, _) => match self.inline_ctxs.last() {
                Some(ctx) => {
                    // Inlined: convert into the call site's result register
                    // (the interpreter converts on function return) and jump
                    // past the inlined body.
                    let result = ctx.result;
                    let ret_ty = ctx.return_type.scalar();
                    let end = ctx.end;
                    match expr {
                        Some(e) if self.static_type(e) == Some(ret_ty) => {
                            // Identity conversion: land directly in the call
                            // site's result register.
                            self.expr_into(e, result, names)?;
                        }
                        Some(e) => {
                            let v = self.expr(e, names)?;
                            self.emit(
                                Op::Cast {
                                    dst: result,
                                    src: v.reg,
                                    ty: ret_ty,
                                },
                                InstrCost::ZERO,
                            );
                        }
                        // A bare `return` in a void function: the call
                        // expression evaluates to int 0.
                        None => self.emit(
                            Op::Const {
                                dst: result,
                                value: Value::Int(0),
                            },
                            InstrCost::ZERO,
                        ),
                    }
                    self.emit_jump(Op::Jump { target: 0 }, end, InstrCost::ZERO);
                }
                None => match expr {
                    Some(e) => {
                        let v = self.expr(e, names)?;
                        self.emit(Op::Return { src: v.reg }, InstrCost::ZERO);
                    }
                    None => self.emit(Op::ReturnVoid, InstrCost::ZERO),
                },
            },
            Stmt::Break(_) | Stmt::Continue(_) => {
                let is_break = matches!(stmt, Stmt::Break(_));
                let floor = self.inline_ctxs.last().map(|c| c.loops_floor).unwrap_or(0);
                if self.loops.len() > floor {
                    let l = self.loops.last().expect("checked above");
                    let target = if is_break {
                        l.break_target
                    } else {
                        l.continue_target
                    };
                    self.emit_jump(Op::Jump { target: 0 }, target, InstrCost::ZERO);
                } else if self.inline_ctxs.is_empty() && self.func.is_kernel {
                    // Outside any loop: in a kernel body the interpreter's
                    // block unwinding simply stops execution.
                    let end = self.func_end;
                    self.emit_jump(Op::Jump { target: 0 }, end, InstrCost::ZERO);
                } else {
                    // In a called (or inlined) function it is a runtime
                    // error.
                    self.emit(Op::OrphanFlow, InstrCost::ZERO);
                }
            }
            Stmt::Block(b) => self.block_stmts(b, names)?,
        }
        self.flush_pending();
        self.next_reg = mark;
        Ok(())
    }

    // ---- expressions ------------------------------------------------------

    /// Lower an expression; the result register may alias a named variable
    /// (see [`ExprVal::stable`]).
    fn expr(&mut self, expr: &Expr, names: &mut Interner) -> Result<ExprVal, KernelError> {
        self.expr_hint(expr, names, None)
    }

    /// Allocate the result register, honouring a destination hint (used to
    /// lower call arguments and ternary arms directly into their slots
    /// without an extra `Mov`).
    fn result_reg(&mut self, hint: Option<Reg>) -> Result<Reg, KernelError> {
        match hint {
            Some(r) => Ok(r),
            None => self.temp(),
        }
    }

    /// Lower an expression, preferring to place the result in `hint`.
    fn expr_hint(
        &mut self,
        expr: &Expr,
        names: &mut Interner,
        hint: Option<Reg>,
    ) -> Result<ExprVal, KernelError> {
        match expr {
            Expr::IntLit(v, _) => self.literal(Value::Int(*v as i32), hint),
            Expr::FloatLit(v, _) => self.literal(Value::Float(*v as f32), hint),
            Expr::BoolLit(v, _) => self.literal(Value::Bool(*v), hint),
            Expr::Var(name, _) => match self.lookup(name) {
                Some((reg, _)) => Ok(ExprVal { reg, stable: false }),
                None => {
                    // A buffer parameter read as a bare value: the
                    // interpreter reports it unbound at runtime.
                    let id = names.intern(name);
                    self.emit(Op::FailUnbound { name: id }, InstrCost::ZERO);
                    let t = self.temp()?;
                    Ok(ExprVal::temp(t))
                }
            },
            Expr::Index { base, index, .. } => {
                let idx = self.expr(index, names)?;
                let t = self.result_reg(hint)?;
                let (name_id, cost) = self.buffer_ref(base, names);
                self.emit(
                    Op::BufLoad {
                        dst: t,
                        name: name_id,
                        idx: idx.reg,
                    },
                    cost,
                );
                Ok(ExprVal::temp(t))
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.expr(operand, names)?;
                let t = self.result_reg(hint)?;
                let op = match op {
                    UnOp::Neg => Op::Neg { dst: t, src: v.reg },
                    UnOp::Not => Op::Not { dst: t, src: v.reg },
                };
                self.emit(op, InstrCost::flop(1.0));
                Ok(ExprVal::temp(t))
            }
            Expr::Binary { op, lhs, rhs, .. } => self.binary(*op, lhs, rhs, names, hint),
            Expr::Call { callee, args, .. } => self.call(callee, args, names, hint),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let t = self.result_reg(hint)?;
                let els = self.new_label();
                let end = self.new_label();
                self.branch_if_false(cond, els, names)?;
                self.expr_into(then_expr, t, names)?;
                self.emit_jump(Op::Jump { target: 0 }, end, InstrCost::ZERO);
                self.bind_label(els);
                self.expr_into(else_expr, t, names)?;
                self.bind_label(end);
                Ok(ExprVal::temp(t))
            }
            Expr::Assign {
                op, target, value, ..
            } => self.assign(*op, target, value, names),
            Expr::IncDec {
                target,
                delta,
                prefix,
                ..
            } => self.inc_dec(target, *delta, *prefix, names),
            Expr::Cast { ty, operand, .. } => {
                let v = self.expr(operand, names)?;
                let t = self.result_reg(hint)?;
                self.emit(
                    Op::Cast {
                        dst: t,
                        src: v.reg,
                        ty: *ty,
                    },
                    InstrCost::ZERO,
                );
                Ok(ExprVal::temp(t))
            }
        }
    }

    /// Emit "jump to `label` when `cond` is false", fusing a top-level
    /// binary comparison into a single compare-and-branch instruction.
    fn branch_if_false(
        &mut self,
        cond: &Expr,
        label: Label,
        names: &mut Interner,
    ) -> Result<(), KernelError> {
        if let Expr::Binary { op, lhs, rhs, .. } = cond {
            if *op != BinOp::And && *op != BinOp::Or {
                let l = self.expr(lhs, names)?;
                let l = self.stabilize(l, rhs)?;
                let r = self.expr(rhs, names)?;
                let flops = if op.is_comparison() { 0.5 } else { 1.0 };
                self.emit_jump(
                    Op::BinJumpIfFalse {
                        op: *op,
                        lhs: l.reg,
                        rhs: r.reg,
                        target: 0,
                    },
                    label,
                    InstrCost::flop(flops),
                );
                return Ok(());
            }
        }
        let c = self.expr(cond, names)?;
        self.emit_jump(
            Op::JumpIfFalse {
                cond: c.reg,
                target: 0,
            },
            label,
            InstrCost::ZERO,
        );
        Ok(())
    }

    /// The exact runtime scalar type of an expression, when statically
    /// derivable. `Some(t)` is a guarantee (variable registers always hold
    /// their declared type, buffer loads their validated element type, and
    /// so on), used to elide identity conversions; `None` means unknown.
    fn static_type(&self, e: &Expr) -> Option<ScalarType> {
        match e {
            Expr::IntLit(..) => Some(ScalarType::Int),
            Expr::FloatLit(..) => Some(ScalarType::Float),
            Expr::BoolLit(..) => Some(ScalarType::Bool),
            Expr::Var(name, _) => self.lookup(name).map(|(_, t)| t),
            Expr::Index { base, .. } => self.buffer_params.get(base).map(|(_, t)| *t),
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Not => Some(ScalarType::Bool),
                UnOp::Neg => match self.static_type(operand)? {
                    ScalarType::Float => Some(ScalarType::Float),
                    ScalarType::Double => Some(ScalarType::Double),
                    ScalarType::Int | ScalarType::Uint => Some(ScalarType::Int),
                    ScalarType::Bool => None,
                },
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() {
                    Some(ScalarType::Bool)
                } else {
                    Some(self.static_type(lhs)?.unify(self.static_type(rhs)?))
                }
            }
            Expr::Call { callee, args, .. } => {
                if let Some(b) = Builtin::from_name(callee) {
                    if b.is_work_item_fn() {
                        return Some(ScalarType::Int);
                    }
                    let mut tys = Vec::with_capacity(args.len());
                    for a in args {
                        tys.push(self.static_type(a)?);
                    }
                    return Some(b.result_type(&tys));
                }
                // User calls convert their result to the declared return
                // type; void calls evaluate to int 0.
                let f = self.unit.function(callee)?;
                Some(f.return_type.scalar())
            }
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => {
                let a = self.static_type(then_expr)?;
                let b = self.static_type(else_expr)?;
                if a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Expr::Cast { ty, .. } => Some(*ty),
            Expr::Assign { .. } | Expr::IncDec { .. } => None,
        }
    }

    /// Whether the top-level form of `e` performs exactly one write to its
    /// destination register, as its final action. Such expressions may be
    /// lowered directly into a live variable's register (And/Or and ternary
    /// write their destination early and are excluded).
    fn single_final_write(e: &Expr) -> bool {
        match e {
            Expr::IntLit(..)
            | Expr::FloatLit(..)
            | Expr::BoolLit(..)
            | Expr::Var(..)
            | Expr::Index { .. }
            | Expr::Unary { .. }
            | Expr::Cast { .. }
            | Expr::Call { .. } => true,
            Expr::Binary { op, .. } => *op != BinOp::And && *op != BinOp::Or,
            Expr::Ternary { .. } | Expr::Assign { .. } | Expr::IncDec { .. } => false,
        }
    }

    /// Materialise a literal: from the constant pool when available (free),
    /// otherwise as an explicit `Const` store.
    fn literal(&mut self, value: Value, hint: Option<Reg>) -> Result<ExprVal, KernelError> {
        if hint.is_none() {
            if let Some(reg) = self.consts.get(&value_key(value)) {
                return Ok(ExprVal::temp(*reg));
            }
        }
        let t = self.result_reg(hint)?;
        self.emit(Op::Const { dst: t, value }, InstrCost::ZERO);
        Ok(ExprVal::temp(t))
    }

    /// Lower an expression and make sure the value ends up in `dst`.
    fn expr_into(
        &mut self,
        expr: &Expr,
        dst: Reg,
        names: &mut Interner,
    ) -> Result<(), KernelError> {
        let v = self.expr_hint(expr, names, Some(dst))?;
        if v.reg != dst {
            self.emit(Op::Mov { dst, src: v.reg }, InstrCost::ZERO);
        }
        Ok(())
    }

    /// Copy `v` to a temporary if a later-evaluated expression could change
    /// the register it aliases (interpreter semantics snapshot operand
    /// values at evaluation time).
    fn stabilize(&mut self, v: ExprVal, later: &Expr) -> Result<ExprVal, KernelError> {
        if v.stable || !has_side_effects(later) {
            return Ok(v);
        }
        let t = self.temp()?;
        self.emit(Op::Mov { dst: t, src: v.reg }, InstrCost::ZERO);
        Ok(ExprVal::temp(t))
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        names: &mut Interner,
        hint: Option<Reg>,
    ) -> Result<ExprVal, KernelError> {
        if op == BinOp::And || op == BinOp::Or {
            // Short-circuit lowering. The interpreter counts one op after
            // evaluating the left-hand side, whether or not it short
            // circuits; the bool cast of the lhs carries it.
            let l = self.expr(lhs, names)?;
            let t = self.result_reg(hint)?;
            self.emit(
                Op::Cast {
                    dst: t,
                    src: l.reg,
                    ty: ScalarType::Bool,
                },
                InstrCost::op(),
            );
            let end = self.new_label();
            let jump = if op == BinOp::And {
                Op::JumpIfFalse { cond: t, target: 0 }
            } else {
                Op::JumpIfTrue { cond: t, target: 0 }
            };
            self.emit_jump(jump, end, InstrCost::ZERO);
            let r = self.expr(rhs, names)?;
            self.emit(
                Op::Cast {
                    dst: t,
                    src: r.reg,
                    ty: ScalarType::Bool,
                },
                InstrCost::ZERO,
            );
            self.bind_label(end);
            return Ok(ExprVal::temp(t));
        }
        let l = self.expr(lhs, names)?;
        let l = self.stabilize(l, rhs)?;
        let r = self.expr(rhs, names)?;
        let t = self.result_reg(hint)?;
        let flops = if op.is_comparison() { 0.5 } else { 1.0 };
        self.emit(
            Op::Bin {
                op,
                dst: t,
                lhs: l.reg,
                rhs: r.reg,
            },
            InstrCost::flop(flops),
        );
        Ok(ExprVal::temp(t))
    }

    fn call(
        &mut self,
        callee: &str,
        args: &[Expr],
        names: &mut Interner,
        hint: Option<Reg>,
    ) -> Result<ExprVal, KernelError> {
        // Work-item queries whose arguments are plain literals (the
        // universal `get_global_id(0)` pattern) need no argument lowering at
        // all: the values are unused and literals are cost free.
        if let Some(b) = Builtin::from_name(callee) {
            let all_literal = args
                .iter()
                .all(|a| matches!(a, Expr::IntLit(..) | Expr::FloatLit(..) | Expr::BoolLit(..)));
            if b.is_work_item_fn() && all_literal {
                let t = self.result_reg(hint)?;
                self.emit(Op::WorkItem { dst: t, builtin: b }, InstrCost::op());
                return Ok(ExprVal::temp(t));
            }
        }
        // Inlined user calls skip the argument block entirely: arguments are
        // evaluated (left to right) straight into the parameter registers.
        if Builtin::from_name(callee).is_none() {
            if let Some(func) = self.unit.function_index(callee) {
                let callee_fn = &self.unit.functions[func];
                if self.should_inline(callee_fn) && callee_fn.params.len() == args.len() {
                    let t = self.result_reg(hint)?;
                    self.inline_call(callee_fn, args, t, names)?;
                    return Ok(ExprVal::temp(t));
                }
            }
        }
        // Arguments are evaluated left to right into a contiguous block.
        let base = self.next_reg as Reg;
        for _ in 0..args.len() {
            self.alloc_reg()?;
        }
        for (k, a) in args.iter().enumerate() {
            self.expr_into(a, base + k as Reg, names)?;
        }
        let t = self.result_reg(hint)?;
        if let Some(b) = Builtin::from_name(callee) {
            if b.is_work_item_fn() {
                self.emit(Op::WorkItem { dst: t, builtin: b }, InstrCost::op());
            } else if b.is_stencil_fn() {
                // Mirrors the interpreter's dynamic charge exactly: one flop
                // count for the address arithmetic, one byte count for the
                // element load — two counted operations.
                self.emit(
                    Op::StencilGet { dst: t, args: base },
                    InstrCost {
                        flops: b.flop_cost() as f32,
                        bytes: ScalarType::Float.size_bytes() as f32,
                        ops: 2.0,
                    },
                );
            } else {
                self.emit(
                    Op::CallBuiltin {
                        builtin: b,
                        dst: t,
                        args: base,
                        nargs: args.len() as u16,
                    },
                    InstrCost::flop(b.flop_cost()),
                );
            }
            return Ok(ExprVal::temp(t));
        }
        let func = self
            .unit
            .function_index(callee)
            .ok_or_else(|| KernelError::run(format!("unknown function `{callee}`")))?;
        self.emit(
            Op::Call {
                func: func as u16,
                dst: t,
                args: base,
                nargs: args.len() as u16,
            },
            InstrCost::ZERO,
        );
        Ok(ExprVal::temp(t))
    }

    /// Inline non-recursive calls while the emitted code stays small; deep
    /// or recursive call chains fall back to real VM frames.
    fn should_inline(&self, callee: &Function) -> bool {
        self.inline_stack.len() < INLINE_DEPTH_LIMIT
            && self.code.len() < INLINE_CODE_LIMIT
            && !self.inline_stack.iter().any(|n| n == &callee.name)
            && self.func.name != callee.name
    }

    /// Splice the callee's body into the current instruction stream.
    /// Arguments are evaluated left to right directly into fresh parameter
    /// registers (converted exactly like the interpreter's call binding,
    /// with identity conversions elided), and `return` becomes a converted
    /// store plus a jump past the body.
    fn inline_call(
        &mut self,
        callee: &'u Function,
        args: &[Expr],
        result: Reg,
        names: &mut Interner,
    ) -> Result<(), KernelError> {
        let end = self.new_label();
        let mut param_regs = Vec::with_capacity(callee.params.len());
        for _ in &callee.params {
            param_regs.push(self.alloc_reg()?);
        }
        for (k, (a, p)) in args.iter().zip(&callee.params).enumerate() {
            let want = p.ty.scalar();
            if self.static_type(a) == Some(want) {
                self.expr_into(a, param_regs[k], names)?;
            } else {
                let v = self.expr(a, names)?;
                self.emit(
                    Op::Cast {
                        dst: param_regs[k],
                        src: v.reg,
                        ty: want,
                    },
                    InstrCost::ZERO,
                );
            }
        }
        // Parameters become named registers in a fresh scope; the callee's
        // body was checked in isolation, so it can only reference them (the
        // scope is pushed after argument evaluation: arguments resolve names
        // in the caller's scope).
        self.scopes.push(Vec::new());
        for (p, reg) in callee.params.iter().zip(&param_regs) {
            if !p.ty.is_pointer() {
                self.declare(&p.name, *reg, p.ty.scalar());
            }
        }
        self.inline_ctxs.push(InlineCtx {
            result,
            end,
            return_type: callee.return_type,
            loops_floor: self.loops.len(),
        });
        self.inline_stack.push(callee.name.clone());
        let outer_fn = std::mem::replace(&mut self.func, callee);
        let body_result = self.block_stmts(&callee.body, names);
        self.func = outer_fn;
        self.inline_stack.pop();
        self.inline_ctxs.pop();
        self.scopes.pop();
        body_result?;
        // Fell off the end of the body: void functions evaluate to int 0,
        // non-void ones are a runtime error (same as the interpreter).
        if callee.return_type.is_void() {
            self.emit(
                Op::Const {
                    dst: result,
                    value: Value::Int(0),
                },
                InstrCost::ZERO,
            );
        } else {
            let name = names.intern(&callee.name);
            self.emit(Op::MissingReturn { name }, InstrCost::ZERO);
        }
        self.bind_label(end);
        Ok(())
    }

    fn assign(
        &mut self,
        op: AssignOp,
        target: &LValue,
        value: &Expr,
        names: &mut Interner,
    ) -> Result<ExprVal, KernelError> {
        let bin = match op {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        };
        let v = self.expr(value, names)?;
        match target {
            LValue::Var(name, _) => {
                let (var, ty) = self
                    .lookup(name)
                    .ok_or_else(|| KernelError::run(format!("variable `{name}` is not bound")))?;
                match bin {
                    None => {
                        self.emit(
                            Op::Cast {
                                dst: var,
                                src: v.reg,
                                ty,
                            },
                            InstrCost::ZERO,
                        );
                        // The expression's value is the *unconverted*
                        // right-hand side, exactly like the interpreter.
                        Ok(v)
                    }
                    Some(bop) => {
                        // Compound assignment: the interpreter folds via
                        // eval_binary without charging a flop.
                        let t = self.temp()?;
                        self.emit(
                            Op::Bin {
                                op: bop,
                                dst: t,
                                lhs: var,
                                rhs: v.reg,
                            },
                            InstrCost::ZERO,
                        );
                        self.emit(
                            Op::Cast {
                                dst: var,
                                src: t,
                                ty,
                            },
                            InstrCost::ZERO,
                        );
                        Ok(ExprVal::temp(t))
                    }
                }
            }
            LValue::Index { base, index, .. } => {
                let v = self.stabilize(v, index)?;
                let (name_id, cost) = self.buffer_ref(base, names);
                match bin {
                    None => {
                        let idx = self.expr(index, names)?;
                        self.emit(
                            Op::BufStore {
                                name: name_id,
                                idx: idx.reg,
                                src: v.reg,
                            },
                            cost,
                        );
                        Ok(v)
                    }
                    Some(bop) => {
                        // The interpreter evaluates the index twice for a
                        // compound buffer assignment (read, then write);
                        // mirror that, side effects included.
                        let i1 = self.expr(index, names)?;
                        let old = self.temp()?;
                        self.emit(
                            Op::BufLoad {
                                dst: old,
                                name: name_id,
                                idx: i1.reg,
                            },
                            cost,
                        );
                        let t = self.temp()?;
                        self.emit(
                            Op::Bin {
                                op: bop,
                                dst: t,
                                lhs: old,
                                rhs: v.reg,
                            },
                            InstrCost::ZERO,
                        );
                        let i2 = self.expr(index, names)?;
                        self.emit(
                            Op::BufStore {
                                name: name_id,
                                idx: i2.reg,
                                src: t,
                            },
                            cost,
                        );
                        Ok(ExprVal::temp(t))
                    }
                }
            }
        }
    }

    fn inc_dec(
        &mut self,
        target: &LValue,
        delta: i32,
        prefix: bool,
        names: &mut Interner,
    ) -> Result<ExprVal, KernelError> {
        match target {
            LValue::Var(name, _) => {
                let (var, ty) = self
                    .lookup(name)
                    .ok_or_else(|| KernelError::run(format!("variable `{name}` is not bound")))?;
                let old = self.temp()?;
                self.emit(Op::Mov { dst: old, src: var }, InstrCost::ZERO);
                let one = self.literal(Value::Int(delta), None)?.reg;
                let new = self.temp()?;
                self.emit(
                    Op::Bin {
                        op: BinOp::Add,
                        dst: new,
                        lhs: old,
                        rhs: one,
                    },
                    InstrCost::flop(1.0),
                );
                self.emit(
                    Op::Cast {
                        dst: var,
                        src: new,
                        ty,
                    },
                    InstrCost::ZERO,
                );
                Ok(ExprVal::temp(if prefix { new } else { old }))
            }
            LValue::Index { base, index, .. } => {
                let (name_id, cost) = self.buffer_ref(base, names);
                let i1 = self.expr(index, names)?;
                let old = self.temp()?;
                self.emit(
                    Op::BufLoad {
                        dst: old,
                        name: name_id,
                        idx: i1.reg,
                    },
                    cost,
                );
                let one = self.literal(Value::Int(delta), None)?.reg;
                let new = self.temp()?;
                self.emit(
                    Op::Bin {
                        op: BinOp::Add,
                        dst: new,
                        lhs: old,
                        rhs: one,
                    },
                    InstrCost::flop(1.0),
                );
                let i2 = self.expr(index, names)?;
                self.emit(
                    Op::BufStore {
                        name: name_id,
                        idx: i2.reg,
                        src: new,
                    },
                    cost,
                );
                Ok(ExprVal::temp(if prefix { new } else { old }))
            }
        }
    }

    /// An expression in statement position: its value is discarded, which
    /// unlocks in-place forms for assignments and increments.
    fn expr_stmt(&mut self, e: &Expr, names: &mut Interner) -> Result<(), KernelError> {
        match e {
            // `i++;`: the pre/post value is unused, so skip the old-value
            // snapshot the expression form needs.
            Expr::IncDec { target, delta, .. } => {
                self.inc_dec_stmt(target, *delta, names)?;
            }
            Expr::Assign {
                op,
                target: LValue::Var(name, _),
                value,
                ..
            } if self.lookup(name).is_some() => {
                let (var, ty) = self.lookup(name).expect("checked above");
                match op {
                    // `x = e;` with a provably identity conversion: lower
                    // straight into the variable's register.
                    AssignOp::Assign
                        if self.static_type(value) == Some(ty)
                            && Self::single_final_write(value) =>
                    {
                        self.expr_into(value, var, names)?;
                    }
                    // `x op= e;` whose fold result already has x's type:
                    // one in-place binary instruction.
                    AssignOp::AddAssign
                    | AssignOp::SubAssign
                    | AssignOp::MulAssign
                    | AssignOp::DivAssign
                        if self
                            .static_type(value)
                            .map(|t| ty.unify(t) == ty)
                            .unwrap_or(false) =>
                    {
                        let bop = match op {
                            AssignOp::AddAssign => BinOp::Add,
                            AssignOp::SubAssign => BinOp::Sub,
                            AssignOp::MulAssign => BinOp::Mul,
                            AssignOp::DivAssign => BinOp::Div,
                            AssignOp::Assign => unreachable!(),
                        };
                        let v = self.expr(value, names)?;
                        // The interpreter charges no flop for the compound
                        // fold, only the statement op (already pending).
                        self.emit(
                            Op::Bin {
                                op: bop,
                                dst: var,
                                lhs: var,
                                rhs: v.reg,
                            },
                            InstrCost::ZERO,
                        );
                    }
                    _ => {
                        self.expr(e, names)?;
                    }
                }
            }
            _ => {
                self.expr(e, names)?;
            }
        }
        Ok(())
    }

    /// Statement-position increment/decrement: no result value is needed.
    fn inc_dec_stmt(
        &mut self,
        target: &LValue,
        delta: i32,
        names: &mut Interner,
    ) -> Result<(), KernelError> {
        if let LValue::Var(name, _) = target {
            if let Some((var, ty)) = self.lookup(name) {
                let one = self.literal(Value::Int(delta), None)?.reg;
                if ty.unify(ScalarType::Int) == ty {
                    // The folded value already has the variable's type:
                    // increment in place.
                    self.emit(
                        Op::Bin {
                            op: BinOp::Add,
                            dst: var,
                            lhs: var,
                            rhs: one,
                        },
                        InstrCost::flop(1.0),
                    );
                    return Ok(());
                }
                let new = self.temp()?;
                self.emit(
                    Op::Bin {
                        op: BinOp::Add,
                        dst: new,
                        lhs: var,
                        rhs: one,
                    },
                    InstrCost::flop(1.0),
                );
                self.emit(
                    Op::Cast {
                        dst: var,
                        src: new,
                        ty,
                    },
                    InstrCost::ZERO,
                );
                return Ok(());
            }
        }
        // Buffer targets (or unbound names) keep the full expression form.
        self.inc_dec(target, delta, true, names)?;
        Ok(())
    }

    /// Interned name id and per-access cost of a buffer reference. The byte
    /// cost uses the pointee type declared on this function's parameter; the
    /// launch validates that the bound buffer matches it.
    fn buffer_ref(&mut self, base: &str, names: &mut Interner) -> (u16, InstrCost) {
        match self.buffer_params.get(base) {
            Some((id, s)) => (*id, InstrCost::mem(s.size_bytes() as f64)),
            // Not a pointer parameter of this function: resolved dynamically
            // at runtime against the launched kernel's slot table (matching
            // the interpreter's by-name buffer binding); charge the model's
            // 4-byte default.
            None => (names.intern(base), InstrCost::mem(4.0)),
        }
    }
}

/// Bit-exact hash key for pooling literal values.
fn value_key(v: Value) -> (u8, u64) {
    match v {
        Value::Float(x) => (0, x.to_bits() as u64),
        Value::Double(x) => (1, x.to_bits()),
        Value::Int(x) => (2, x as u32 as u64),
        Value::Uint(x) => (3, x as u64),
        Value::Bool(x) => (4, x as u64),
    }
}

/// Every literal value appearing in the unit (in discovery order): literal
/// expressions plus the implicit `+-1` of increment/decrement operators.
fn collect_literals(unit: &TranslationUnit) -> Vec<Value> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut push = |v: Value| {
        if seen.insert(value_key(v)) {
            out.push(v);
        }
    };
    fn walk_expr(e: &Expr, f: &mut dyn FnMut(Value)) {
        match e {
            Expr::IntLit(v, _) => f(Value::Int(*v as i32)),
            Expr::FloatLit(v, _) => f(Value::Float(*v as f32)),
            Expr::BoolLit(v, _) => f(Value::Bool(*v)),
            Expr::Var(..) => {}
            Expr::Index { index, .. } => walk_expr(index, f),
            Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => walk_expr(operand, f),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, f);
                walk_expr(rhs, f);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                walk_expr(cond, f);
                walk_expr(then_expr, f);
                walk_expr(else_expr, f);
            }
            Expr::Assign { target, value, .. } => {
                if let LValue::Index { index, .. } = target {
                    walk_expr(index, f);
                }
                walk_expr(value, f);
            }
            Expr::IncDec { target, delta, .. } => {
                if let LValue::Index { index, .. } = target {
                    walk_expr(index, f);
                }
                f(Value::Int(*delta));
            }
        }
    }
    fn walk_block(b: &Block, f: &mut dyn FnMut(Value)) {
        b.stmts.iter().for_each(|s| walk_stmt(s, f));
    }
    fn walk_stmt(s: &Stmt, f: &mut dyn FnMut(Value)) {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f)
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                walk_expr(cond, f);
                walk_block(then_block, f);
                walk_block(else_block, f);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, f)
                }
                if let Some(c) = cond {
                    walk_expr(c, f)
                }
                if let Some(st) = step {
                    walk_expr(st, f)
                }
                walk_block(body, f);
            }
            Stmt::While { cond, body } => {
                walk_expr(cond, f);
                walk_block(body, f);
            }
            Stmt::Return(Some(e), _) => walk_expr(e, f),
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(b) => walk_block(b, f),
        }
    }
    for func in &unit.functions {
        walk_block(&func.body, &mut push);
    }
    out
}

/// Whether evaluating `e` can write to a named variable or a buffer (used to
/// decide when operand snapshots are needed). Calls are treated as impure to
/// stay conservative.
fn has_side_effects(e: &Expr) -> bool {
    match e {
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::BoolLit(..) | Expr::Var(..) => false,
        Expr::Assign { .. } | Expr::IncDec { .. } | Expr::Call { .. } => true,
        Expr::Index { index, .. } => has_side_effects(index),
        Expr::Unary { operand, .. } => has_side_effects(operand),
        Expr::Binary { lhs, rhs, .. } => has_side_effects(lhs) || has_side_effects(rhs),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => has_side_effects(cond) || has_side_effects(then_expr) || has_side_effects(else_expr),
        Expr::Cast { operand, .. } => has_side_effects(operand),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::check;

    fn compile_src(src: &str) -> CompiledUnit {
        let unit = check(parse(&lex(src).unwrap(), src).unwrap()).unwrap();
        compile(&unit).unwrap()
    }

    #[test]
    fn simple_kernel_compiles_to_flat_code() {
        let cu = compile_src(
            r#"
            __kernel void k(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = v[i] * 2.0f; }
            }
        "#,
        );
        assert_eq!(cu.functions.len(), 1);
        let f = &cu.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.code.len(), f.costs.len());
        assert!(f.code.iter().any(|op| matches!(op, Op::BufLoad { .. })));
        assert!(f.code.iter().any(|op| matches!(op, Op::BufStore { .. })));
        assert!(f
            .code
            .iter()
            .any(|op| matches!(op, Op::BinJumpIfFalse { .. })));
        assert!(matches!(f.code.last(), Some(Op::ReturnVoid)));
        assert_eq!(cu.buffer_names, vec!["v".to_string(), "n".to_string()]);
    }

    #[test]
    fn loops_lower_to_backward_jumps() {
        let cu = compile_src(
            r#"
            __kernel void k(__global float* v, int n) {
                for (int i = 0; i < n; i++) { v[i] = 0.0f; }
            }
        "#,
        );
        let f = &cu.functions[0];
        let backward = f.code.iter().enumerate().any(|(pc, op)| match op {
            Op::Jump { target } => (*target as usize) <= pc,
            _ => false,
        });
        assert!(backward, "for loop must produce a backward jump");
    }

    #[test]
    fn buffer_access_costs_use_the_declared_element_size() {
        let cu = compile_src("__kernel void k(__global double* v, int n) { v[0] = v[1]; }");
        let f = &cu.functions[0];
        let mem_costs: Vec<f64> = f
            .code
            .iter()
            .zip(&f.costs)
            .filter(|(op, _)| matches!(op, Op::BufLoad { .. } | Op::BufStore { .. }))
            .map(|(_, c)| c.bytes as f64)
            .collect();
        assert_eq!(mem_costs, vec![8.0, 8.0]);
    }

    #[test]
    fn small_helper_calls_are_inlined() {
        let cu = compile_src(
            r#"
            float square(float x) { return x * x; }
            __kernel void k(__global float* v, int n) { v[0] = square(v[0]); }
        "#,
        );
        let k = &cu.functions[1];
        // The helper body is spliced into the kernel: no call instruction,
        // but the helper's multiply shows up in the kernel's stream.
        assert!(!k.code.iter().any(|op| matches!(op, Op::Call { .. })));
        assert!(k
            .code
            .iter()
            .any(|op| matches!(op, Op::Bin { op: BinOp::Mul, .. })));
        // The non-void helper still ends in a missing-return guard (it is
        // compiled standalone too).
        assert!(matches!(
            cu.functions[0].code.last(),
            Some(Op::MissingReturn { .. })
        ));
    }

    #[test]
    fn recursive_calls_keep_real_frames() {
        let cu = compile_src(
            r#"
            float f(float x) { return x < 1.0f ? x : f(x - 1.0f); }
            __kernel void k(__global float* v, int n) { v[0] = f(v[0]); }
        "#,
        );
        // The recursive self-call inside `f` must stay a VM call.
        assert!(cu.functions[0]
            .code
            .iter()
            .any(|op| matches!(op, Op::Call { func: 0, .. })));
    }

    #[test]
    fn statement_ops_are_attributed_to_instructions() {
        let cu = compile_src("__kernel void k(__global float* v, int n) { v[0] = 1.0f; }");
        let f = &cu.functions[0];
        let total_ops: f64 = f.costs.iter().map(|c| c.ops as f64).sum();
        // One statement + one buffer store at minimum.
        assert!(total_ops >= 2.0, "ops = {total_ops}");
    }
}
