//! Source-level UDF composition support.
//!
//! Kernel fusion (the `plan` subsystem in `skelcl`) concatenates several
//! user-defined functions into one generated kernel. Two independently
//! written UDFs may both define a helper called `clamp`, or both name their
//! function `func` — valid in isolation, a redefinition error once fused.
//! This module provides the two primitives the fusion pass needs:
//!
//! * [`defined_functions`] — the function names a source fragment defines,
//!   so the fuser can detect collisions across stages, and
//! * [`rename_identifiers`] — a token-level, deterministic rename of chosen
//!   identifiers that preserves the source otherwise verbatim (comments and
//!   formatting included), so renamed stages stay readable in diagnostics.
//!
//! Renaming uniformly rewrites *every* occurrence of an identifier within
//! one stage's source. The language has a single flat scope per function and
//! no shadowing across the renamed set (function names, parameters and
//! locals share the identifier namespace), so a uniform rewrite is
//! semantics-preserving for the stage in isolation — which is exactly the
//! property fusion needs before concatenating stages.

use std::collections::BTreeMap;

use crate::diag::KernelError;
use crate::lexer;
use crate::parser;
use crate::token::TokenKind;

/// Names of all functions defined by `source`, in definition order.
///
/// Errors if the source does not lex or parse; the caller (kernel
/// generation) reports that through its usual diagnostics path.
pub fn defined_functions(source: &str) -> Result<Vec<String>, KernelError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens, source)?;
    Ok(unit.functions.iter().map(|f| f.name.clone()).collect())
}

/// Rewrite every occurrence of the identifiers in `renames` (old name →
/// new name) and return the new source.
///
/// The rewrite works on the token stream: text between identifier tokens is
/// copied verbatim, so whitespace and comments survive. Identifiers not in
/// the map — including ones inside comments or string-free literals — are
/// untouched.
pub fn rename_identifiers(
    source: &str,
    renames: &BTreeMap<String, String>,
) -> Result<String, KernelError> {
    if renames.is_empty() {
        return Ok(source.to_string());
    }
    let tokens = lexer::lex(source)?;
    let mut out = String::with_capacity(source.len() + 64);
    let mut cursor = 0usize;
    for token in &tokens {
        if let TokenKind::Ident(name) = &token.kind {
            if let Some(new_name) = renames.get(name) {
                out.push_str(&source[cursor..token.span.start]);
                out.push_str(new_name);
                cursor = token.span.end;
            }
        }
    }
    out.push_str(&source[cursor..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_defined_functions_in_order() {
        let src = "float helper(float x) { return x + 1.0f; }\n\
                   float func(float x) { return helper(x) * 2.0f; }";
        assert_eq!(defined_functions(src).unwrap(), vec!["helper", "func"]);
    }

    #[test]
    fn rename_rewrites_all_occurrences_and_preserves_text() {
        let src = "/* doubles x */\nfloat func(float x) { float y = x + x; return y; }";
        let mut renames = BTreeMap::new();
        renames.insert("func".to_string(), "stage0_func".to_string());
        renames.insert("x".to_string(), "stage0_x".to_string());
        let out = rename_identifiers(src, &renames).unwrap();
        assert_eq!(
            out,
            "/* doubles x */\nfloat stage0_func(float stage0_x) \
             { float y = stage0_x + stage0_x; return y; }"
        );
    }

    #[test]
    fn rename_with_empty_map_is_identity() {
        let src = "float func(float x) { return x; }";
        assert_eq!(rename_identifiers(src, &BTreeMap::new()).unwrap(), src);
    }

    #[test]
    fn renamed_source_still_compiles() {
        let src = "float scale(float v) { return v * 3.0f; }\n\
                   float func(float x) { return scale(x); }";
        let mut renames = BTreeMap::new();
        renames.insert("scale".to_string(), "skelcl_s1_scale".to_string());
        renames.insert("func".to_string(), "skelcl_s1_func".to_string());
        let out = rename_identifiers(src, &renames).unwrap();
        assert_eq!(
            defined_functions(&out).unwrap(),
            vec!["skelcl_s1_scale", "skelcl_s1_func"]
        );
    }

    #[test]
    fn rename_errors_on_unlexable_source() {
        let mut renames = BTreeMap::new();
        renames.insert("a".to_string(), "b".to_string());
        assert!(rename_identifiers("float func(@) {}", &renames).is_err());
    }
}
