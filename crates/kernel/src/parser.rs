//! Recursive-descent parser producing the [`crate::ast`] from a token stream.

use crate::ast::*;
use crate::diag::KernelError;
use crate::token::{Keyword, Span, Token, TokenKind};
use crate::types::{ScalarType, Type};

/// Parse the token stream of a translation unit.
pub fn parse(tokens: &[Token], source: &str) -> Result<TranslationUnit, KernelError> {
    let mut parser = Parser {
        tokens,
        pos: 0,
        _source: source,
    };
    parser.translation_unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    _source: &'a str,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, KernelError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(KernelError::parse(
                format!("expected {}, found {}", kind, self.peek_kind()),
                self.peek().span,
            ))
        }
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), KernelError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(name) => Ok((name, t.span)),
            other => Err(KernelError::parse(
                format!("expected identifier, found {other}"),
                t.span,
            )),
        }
    }

    // ---- types -----------------------------------------------------------

    fn at_scalar_type(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Keyword(
                Keyword::Float | Keyword::Double | Keyword::Int | Keyword::Uint | Keyword::Bool
            )
        )
    }

    fn scalar_type(&mut self) -> Result<ScalarType, KernelError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Keyword(Keyword::Float) => Ok(ScalarType::Float),
            TokenKind::Keyword(Keyword::Double) => Ok(ScalarType::Double),
            TokenKind::Keyword(Keyword::Int) => Ok(ScalarType::Int),
            TokenKind::Keyword(Keyword::Uint) => Ok(ScalarType::Uint),
            TokenKind::Keyword(Keyword::Bool) => Ok(ScalarType::Bool),
            other => Err(KernelError::parse(
                format!("expected a type, found {other}"),
                t.span,
            )),
        }
    }

    /// Parse a (possibly pointer) type as used in parameter lists and return
    /// types. Accepts optional `__global`, `__local` and `const` qualifiers.
    fn full_type(&mut self) -> Result<Type, KernelError> {
        let mut saw_global = false;
        loop {
            if self.eat_keyword(Keyword::Global) || self.eat_keyword(Keyword::Local) {
                saw_global = true;
            } else if self.eat_keyword(Keyword::Const) {
                // const qualifier is accepted and ignored
            } else {
                break;
            }
        }
        if self.eat_keyword(Keyword::Void) {
            return Ok(Type::Void);
        }
        let scalar = self.scalar_type()?;
        if self.eat(&TokenKind::Star) {
            Ok(Type::GlobalPtr(scalar))
        } else if saw_global {
            Err(KernelError::parse(
                "`__global` qualifier requires a pointer type",
                self.peek().span,
            ))
        } else {
            Ok(Type::Scalar(scalar))
        }
    }

    // ---- declarations ------------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, KernelError> {
        let mut functions = Vec::new();
        while !self.at(&TokenKind::Eof) {
            functions.push(self.function()?);
        }
        Ok(TranslationUnit { functions })
    }

    fn function(&mut self) -> Result<Function, KernelError> {
        let start = self.peek().span;
        let is_kernel = self.eat_keyword(Keyword::Kernel);
        let return_type = self.full_type()?;
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let pspan = self.peek().span;
                let ty = self.full_type()?;
                if ty.is_void() {
                    return Err(KernelError::parse("parameter cannot have type void", pspan));
                }
                let (pname, _) = self.ident()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            is_kernel,
            return_type,
            params,
            body,
            span: start,
        })
    }

    // ---- statements --------------------------------------------------------

    fn block(&mut self) -> Result<Block, KernelError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(KernelError::parse(
                    "unexpected end of input in block",
                    self.peek().span,
                ));
            }
            stmts.push(self.statement()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn statement(&mut self) -> Result<Stmt, KernelError> {
        let span = self.peek().span;
        match self.peek_kind() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Keyword(Keyword::If) => self.if_statement(),
            TokenKind::Keyword(Keyword::For) => self.for_statement(),
            TokenKind::Keyword(Keyword::While) => self.while_statement(),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                if self.eat(&TokenKind::Semicolon) {
                    Ok(Stmt::Return(None, span))
                } else {
                    let e = self.expression()?;
                    self.expect(&TokenKind::Semicolon)?;
                    Ok(Stmt::Return(Some(e), span))
                }
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Continue(span))
            }
            _ if self.at_decl_start() => {
                let s = self.declaration()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(s)
            }
            _ => {
                let e = self.expression()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// A declaration begins with `const`-qualified or bare scalar type that is
    /// *not* immediately followed by `(` (which would be a cast expression).
    fn at_decl_start(&self) -> bool {
        if matches!(self.peek_kind(), TokenKind::Keyword(Keyword::Const)) {
            return true;
        }
        self.at_scalar_type() && matches!(self.peek2_kind(), TokenKind::Ident(_))
    }

    fn declaration(&mut self) -> Result<Stmt, KernelError> {
        let span = self.peek().span;
        self.eat_keyword(Keyword::Const);
        let ty = self.scalar_type()?;
        let (name, _) = self.ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Stmt::Decl {
            ty,
            name,
            init,
            span,
        })
    }

    fn if_statement(&mut self) -> Result<Stmt, KernelError> {
        self.bump(); // if
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        let then_block = self.block_or_single()?;
        let else_block = if self.eat_keyword(Keyword::Else) {
            self.block_or_single()?
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
        })
    }

    /// Either a braced block or a single statement (wrapped into a block).
    fn block_or_single(&mut self) -> Result<Block, KernelError> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            let stmt = self.statement()?;
            Ok(Block { stmts: vec![stmt] })
        }
    }

    fn for_statement(&mut self) -> Result<Stmt, KernelError> {
        self.bump(); // for
        self.expect(&TokenKind::LParen)?;
        let init = if self.eat(&TokenKind::Semicolon) {
            None
        } else if self.at_decl_start() {
            let d = self.declaration()?;
            self.expect(&TokenKind::Semicolon)?;
            Some(Box::new(d))
        } else {
            let e = self.expression()?;
            self.expect(&TokenKind::Semicolon)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.at(&TokenKind::Semicolon) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&TokenKind::Semicolon)?;
        let step = if self.at(&TokenKind::RParen) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn while_statement(&mut self) -> Result<Stmt, KernelError> {
        self.bump(); // while
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::While { cond, body })
    }

    // ---- expressions -------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, KernelError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, KernelError> {
        let lhs = self.ternary()?;
        let op = match self.peek_kind() {
            TokenKind::Assign => Some(AssignOp::Assign),
            TokenKind::PlusAssign => Some(AssignOp::AddAssign),
            TokenKind::MinusAssign => Some(AssignOp::SubAssign),
            TokenKind::StarAssign => Some(AssignOp::MulAssign),
            TokenKind::SlashAssign => Some(AssignOp::DivAssign),
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        let opspan = self.bump().span;
        let value = self.assignment()?;
        let target = Self::expr_to_lvalue(&lhs)?;
        Ok(Expr::Assign {
            op,
            target,
            value: Box::new(value),
            span: lhs.span().to(opspan),
        })
    }

    fn expr_to_lvalue(e: &Expr) -> Result<LValue, KernelError> {
        match e {
            Expr::Var(name, span) => Ok(LValue::Var(name.clone(), *span)),
            Expr::Index { base, index, span } => Ok(LValue::Index {
                base: base.clone(),
                index: index.clone(),
                span: *span,
            }),
            other => Err(KernelError::parse(
                "left-hand side of assignment must be a variable or buffer element",
                other.span(),
            )),
        }
    }

    fn ternary(&mut self) -> Result<Expr, KernelError> {
        let cond = self.logical_or()?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expression()?;
            self.expect(&TokenKind::Colon)?;
            let else_expr = self.ternary()?;
            let span = cond.span().to(else_expr.span());
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, KernelError> {
        let mut lhs = self.logical_and()?;
        while self.at(&TokenKind::OrOr) {
            let span = self.bump().span;
            let rhs = self.logical_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, KernelError> {
        let mut lhs = self.equality()?;
        while self.at(&TokenKind::AndAnd) {
            let span = self.bump().span;
            let rhs = self.equality()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, KernelError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, KernelError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, KernelError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, KernelError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            let span = self.bump().span;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, KernelError> {
        let span = self.peek().span;
        match self.peek_kind() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let delta = if matches!(self.peek_kind(), TokenKind::PlusPlus) {
                    1
                } else {
                    -1
                };
                self.bump();
                let operand = self.unary()?;
                let target = Self::expr_to_lvalue(&operand)?;
                Ok(Expr::IncDec {
                    target,
                    delta,
                    prefix: true,
                    span,
                })
            }
            // Cast expression: `(float) expr`
            TokenKind::LParen
                if matches!(
                    self.peek2_kind(),
                    TokenKind::Keyword(
                        Keyword::Float
                            | Keyword::Double
                            | Keyword::Int
                            | Keyword::Uint
                            | Keyword::Bool
                    )
                ) =>
            {
                // Look ahead to distinguish `(float) x` from `(float_var + 1)`:
                // after the type keyword the next token must be `)`.
                if self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::RParen) {
                    self.bump(); // (
                    let ty = self.scalar_type()?;
                    self.expect(&TokenKind::RParen)?;
                    let operand = self.unary()?;
                    Ok(Expr::Cast {
                        ty,
                        operand: Box::new(operand),
                        span,
                    })
                } else {
                    self.postfix()
                }
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, KernelError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    let span = self.bump().span;
                    let index = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    let base = match &expr {
                        Expr::Var(name, _) => name.clone(),
                        other => {
                            return Err(KernelError::parse(
                                "only named buffers can be indexed",
                                other.span(),
                            ))
                        }
                    };
                    expr = Expr::Index {
                        base,
                        index: Box::new(index),
                        span,
                    };
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let delta = if matches!(self.peek_kind(), TokenKind::PlusPlus) {
                        1
                    } else {
                        -1
                    };
                    let span = self.bump().span;
                    let target = Self::expr_to_lvalue(&expr)?;
                    expr = Expr::IncDec {
                        target,
                        delta,
                        prefix: false,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, KernelError> {
        let t = self.bump();
        match t.kind {
            TokenKind::IntLit(v) => Ok(Expr::IntLit(v, t.span)),
            TokenKind::FloatLit(v) => Ok(Expr::FloatLit(v, t.span)),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::BoolLit(true, t.span)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::BoolLit(false, t.span)),
            TokenKind::LParen => {
                let e = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        span: t.span,
                    })
                } else {
                    Ok(Expr::Var(name, t.span))
                }
            }
            other => Err(KernelError::parse(
                format!("unexpected {other} in expression"),
                t.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<TranslationUnit, KernelError> {
        parse(&lex(src).unwrap(), src)
    }

    #[test]
    fn parse_udf_and_kernel() {
        let unit = parse_src(
            r#"
            float func(float x, float y, float a) { return a * x + y; }
            __kernel void zip(__global float* xs, __global float* ys,
                              __global float* out, int n, float a) {
                int gid = get_global_id(0);
                if (gid < n) { out[gid] = func(xs[gid], ys[gid], a); }
            }
        "#,
        )
        .unwrap();
        assert_eq!(unit.functions.len(), 2);
        assert!(!unit.functions[0].is_kernel);
        assert!(unit.functions[1].is_kernel);
        assert_eq!(unit.functions[1].params.len(), 5);
        assert!(unit.functions[1].params[0].ty.is_pointer());
        assert_eq!(
            unit.functions[1].params[3].ty,
            Type::Scalar(ScalarType::Int)
        );
    }

    #[test]
    fn parse_for_and_while_loops() {
        let unit = parse_src(
            r#"
            __kernel void loops(__global float* v, int n) {
                float acc = 0.0f;
                for (int i = 0; i < n; i++) { acc += v[i]; }
                int j = 0;
                while (j < n) { v[j] = acc; j = j + 1; }
            }
        "#,
        )
        .unwrap();
        let body = &unit.functions[0].body;
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(body.stmts[1], Stmt::For { .. }));
        assert!(matches!(body.stmts[3], Stmt::While { .. }));
    }

    #[test]
    fn parse_ternary_and_cast() {
        let unit = parse_src(
            r#"
            float clamp01(float x) { return x < 0.0f ? 0.0f : (x > 1.0f ? 1.0f : x); }
            __kernel void k(__global float* v, __global int* out, int n) {
                int i = get_global_id(0);
                if (i < n) { out[i] = (int) clamp01(v[i]); }
            }
        "#,
        )
        .unwrap();
        assert_eq!(unit.functions.len(), 2);
    }

    #[test]
    fn parse_single_statement_if_without_braces() {
        let unit = parse_src(
            r#"
            __kernel void k(__global float* c, __global float* f, int n) {
                int j = get_global_id(0);
                if (c[j] > 0.0f) f[j] = f[j] * c[j];
            }
        "#,
        )
        .unwrap();
        let body = &unit.functions[0].body;
        assert!(
            matches!(&body.stmts[1], Stmt::If { then_block, .. } if then_block.stmts.len() == 1)
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_src("float f( { }").is_err());
        assert!(parse_src("void k() { 1 + ; }").is_err());
        assert!(parse_src("void k() { return 1 }").is_err());
        assert!(parse_src("void k() { 3 = x; }").is_err());
        assert!(parse_src("__global float f(float x) { return x; }").is_err());
    }

    #[test]
    fn parse_compound_assignment_and_incdec() {
        let unit = parse_src(
            r#"
            __kernel void k(__global float* v, int n) {
                for (int i = 0; i < n; ++i) { v[i] += 1.0f; v[i] *= 2.0f; }
            }
        "#,
        )
        .unwrap();
        assert_eq!(unit.functions.len(), 1);
    }
}
