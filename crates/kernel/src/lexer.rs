//! Hand-written lexer for the kernel language.

use crate::diag::KernelError;
use crate::token::{Keyword, Span, Token, TokenKind};

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Tokenise `source` into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// Handles `//` line comments, `/* */` block comments, integer and float
/// literals (with optional `f`/`F` suffix), identifiers, keywords and the
/// operator/punctuation set of the language.
pub fn lex(source: &str) -> Result<Vec<Token>, KernelError> {
    let mut lexer = Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    lexer.run()
}

impl<'a> Lexer<'a> {
    fn run(&mut self) -> Result<Vec<Token>, KernelError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            if self.pos >= self.bytes.len() {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start, line, col),
                });
                return Ok(tokens);
            }
            let kind = self.next_kind()?;
            tokens.push(Token {
                kind,
                span: Span::new(start, self.pos, line, col),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span_here(&self) -> Span {
        Span::new(self.pos, self.pos + 1, self.line, self.col)
    }

    fn skip_trivia(&mut self) -> Result<(), KernelError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.span_here();
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(KernelError::lex("unterminated block comment", open));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_kind(&mut self) -> Result<TokenKind, KernelError> {
        let c = self.peek().expect("next_kind called at EOF");
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.number();
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident_or_keyword());
        }
        let span = self.span_here();
        self.bump();
        let two = |lexer: &mut Lexer<'a>, next: u8, a: TokenKind, b: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                a
            } else {
                b
            }
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semicolon,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b'%' => TokenKind::Percent,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    TokenKind::PlusPlus
                } else {
                    two(self, b'=', TokenKind::PlusAssign, TokenKind::Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    TokenKind::MinusMinus
                } else {
                    two(self, b'=', TokenKind::MinusAssign, TokenKind::Minus)
                }
            }
            b'*' => two(self, b'=', TokenKind::StarAssign, TokenKind::Star),
            b'/' => two(self, b'=', TokenKind::SlashAssign, TokenKind::Slash),
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Not),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => two(self, b'&', TokenKind::AndAnd, TokenKind::Amp),
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(KernelError::lex("bitwise `|` is not supported", span));
                }
            }
            other => {
                return Err(KernelError::lex(
                    format!("unexpected character `{}`", other as char),
                    span,
                ))
            }
        };
        Ok(kind)
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn number(&mut self) -> Result<TokenKind, KernelError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        // Optional `f`/`F` suffix (forces float) or `u`/`U` (ignored).
        let mut forced_float = false;
        if let Some(c) = self.peek() {
            if c == b'f' || c == b'F' {
                forced_float = true;
                self.bump();
            } else if c == b'u' || c == b'U' {
                self.bump();
            }
        }
        let span = Span::new(start, self.pos, line, col);
        if is_float || forced_float {
            text.parse::<f64>()
                .map(TokenKind::FloatLit)
                .map_err(|_| KernelError::lex(format!("invalid float literal `{text}`"), span))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|_| KernelError::lex(format!("invalid integer literal `{text}`"), span))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_expression() {
        let k = kinds("a * x + y;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Star,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Ident("y".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_float_literals() {
        assert_eq!(kinds("1.5")[0], TokenKind::FloatLit(1.5));
        assert_eq!(kinds("2.0f")[0], TokenKind::FloatLit(2.0));
        assert_eq!(kinds("3f")[0], TokenKind::FloatLit(3.0));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("1.5e-2")[0], TokenKind::FloatLit(0.015));
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("7u")[0], TokenKind::IntLit(7));
    }

    #[test]
    fn lex_keywords_and_kernel_qualifiers() {
        let k = kinds("__kernel void f(__global float* v) {}");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Kernel));
        assert_eq!(k[1], TokenKind::Keyword(Keyword::Void));
        assert_eq!(k[2], TokenKind::Ident("f".into()));
        assert_eq!(k[4], TokenKind::Keyword(Keyword::Global));
        assert_eq!(k[5], TokenKind::Keyword(Keyword::Float));
        assert_eq!(k[6], TokenKind::Star);
    }

    #[test]
    fn lex_comments_are_skipped() {
        let k = kinds("x // trailing comment\n /* block\n comment */ y");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_compound_operators() {
        let k = kinds("a += b; c++; d <= e; f && g; h != i;");
        assert!(k.contains(&TokenKind::PlusAssign));
        assert!(k.contains(&TokenKind::PlusPlus));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::AndAnd));
        assert!(k.contains(&TokenKind::Ne));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("float x = @;").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }
}
