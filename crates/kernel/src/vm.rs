//! Register-based bytecode VM executing work-items of a compiled kernel.
//!
//! The VM is the fast execution engine behind [`crate::Program::run_ndrange`]:
//! where the tree-walking interpreter pays a string-keyed hash lookup for
//! every variable access and a shared-cell update for every counted
//! operation, the VM indexes a flat register file and accumulates the
//! compile-time-attributed [`crate::compile::InstrCost`]s into plain per-work-item counters.
//! The interpreter ([`crate::interp`]) is retained as the differential-testing
//! oracle; both engines must produce identical results *and* identical
//! [`ExecStats`] for the same launch.
//!
//! # Lane-batched execution
//!
//! [`Vm::run_batch`] executes a *batch* of work-items through the bytecode at
//! once: the register file becomes structure-of-arrays (`lanes` values per
//! register slot), each instruction is decoded once and applied in a tight
//! loop over the active lanes, and the per-instruction cost is accumulated as
//! `cost × active_lanes` per batch instead of three additions per lane. This
//! removes the dominant per-work-item dispatch overhead of the scalar loop.
//!
//! Batched execution is *semantically invisible*: results, [`ExecStats`] and
//! errors are bit-identical to running the items one at a time (which is what
//! the interpreter oracle does). Three mechanisms guarantee that:
//!
//! * **Uniform control flow.** Lanes execute in lockstep while every active
//!   lane agrees on each branch (the overwhelmingly common case — skeleton
//!   kernels diverge only at the `if (gid < n)` tail guard).
//! * **Lane mask for early exits.** A divergent branch whose taken side is a
//!   trivial jump-chain to a return retires the exiting lanes: they are
//!   charged the chain's instruction costs exactly as the scalar engine
//!   would, then masked out; the remaining lanes continue batched.
//! * **Rollback + scalar replay.** Anything else — genuinely divergent
//!   control flow, a runtime error in any lane, or a cross-lane buffer
//!   hazard (detected with an own-address discipline and an undo log of
//!   stores) — aborts the batch, restores every buffer store, and re-runs
//!   the whole batch through the sequential scalar path, which is the
//!   authoritative semantics. After a non-error abort the VM stops batching
//!   for the rest of the launch, so pathological kernels pay the wasted work
//!   at most once.
//!
//! All per-instruction cost constants are dyadic rationals far below 2⁵³, so
//! the per-batch `cost × lanes` accumulation is exactly equal to the
//! per-item, per-instruction summation of the oracle — no floating-point
//! reordering error. `vm_differential.rs` asserts this equivalence, and debug
//! builds additionally cross-check each batch against the scalar engine's
//! accumulation identity (see [`Vm::run_batch`]).

use crate::ast::BinOp;
use crate::builtins::Builtin;
use crate::compile::{CompiledUnit, Op};
use crate::diag::KernelError;
use crate::interp::{
    eval_binary, stencil_get, ArgBinding, ExecStats, StencilCtx, WorkItem, NO_STENCIL_CONTEXT,
};
use crate::types::Type;
use crate::value::Value;

/// Number of work-items executed per lockstep batch by
/// [`crate::Program::run_ndrange_measured`]. Sized so a typical kernel's SoA
/// register file stays within L1 (regs × lanes × 16 B).
pub const BATCH_LANES: usize = 64;

/// Fast path for the overwhelmingly common operand pairs, bit-identical to
/// [`eval_binary`] (which it falls back to): float arithmetic is computed in
/// `f64` and rounded back exactly like the interpreter, integers fold
/// through `i64` with the same wrapping and zero-division behaviour.
#[inline(always)]
pub(crate) fn vm_eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, KernelError> {
    use crate::ast::BinOp::*;
    match (l, r) {
        (Value::Float(a), Value::Float(b)) => {
            let (x, y) = (a as f64, b as f64);
            Ok(match op {
                Add => Value::Float((x + y) as f32),
                Sub => Value::Float((x - y) as f32),
                Mul => Value::Float((x * y) as f32),
                Div => Value::Float((x / y) as f32),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                _ => return eval_binary(op, l, r),
            })
        }
        (Value::Int(a), Value::Int(b)) => {
            let (x, y) = (a as i64, b as i64);
            Ok(match op {
                Add => Value::Int(x.wrapping_add(y) as i32),
                Sub => Value::Int(x.wrapping_sub(y) as i32),
                Mul => Value::Int(x.wrapping_mul(y) as i32),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                _ => return eval_binary(op, l, r),
            })
        }
        _ => eval_binary(op, l, r),
    }
}

/// Per-work-item plain counters, flushed into [`ExecStats`] after each item.
#[derive(Default)]
struct StatAcc {
    flops: f64,
    bytes: f64,
    ops: f64,
}

/// One saved call frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    func: usize,
    return_pc: usize,
    base: usize,
    /// Absolute register index receiving the callee's return value.
    dst: usize,
}

/// The bytecode VM. One instance is reused across all work-items of a
/// launch; [`Vm::bind_kernel`] validates the argument bindings once, then
/// [`Vm::run_item`] executes individual work-items.
pub struct Vm<'u> {
    unit: &'u CompiledUnit,
    regs: Vec<Value>,
    frames: Vec<Frame>,
    /// Per-launch map from interned buffer name to kernel argument slot.
    buffer_slots: Vec<Option<u16>>,
    /// Per-launch stencil context (present when the bound kernel declares
    /// the reserved `skelcl_stencil_*` parameters).
    stencil: Option<StencilCtx>,
    bound_kernel: Option<usize>,
    /// Whether the bound kernel's constant pool has been written into the
    /// register file (done lazily on the first work-item of a launch).
    pool_ready: bool,
    /// Hard cap on loop back-edges per work-item, to turn accidental
    /// infinite loops into errors instead of hangs. Deliberately stricter
    /// than the interpreter's guard, which counts iterations *per loop
    /// statement*: the VM budget is shared by every loop of the work-item,
    /// so a kernel whose loops total more than this many iterations errors
    /// here while the (hours-slower) oracle would keep running.
    pub max_loop_iterations: u64,
    /// Hard cap on call depth, turning runaway recursion into an error
    /// instead of memory exhaustion.
    pub max_call_depth: usize,
    stats: ExecStats,
    // --- lane-batched execution state (see the module docs) ---
    /// SoA register file of the batched path: `lanes` values per register
    /// slot, laid out `(base + reg) * lanes + lane`.
    bregs: Vec<Value>,
    /// Lanes still executing (indices into the batch's work-item slice).
    active: Vec<u32>,
    /// Scratch per-active-lane branch outcomes.
    lane_bools: Vec<bool>,
    /// Undo log of buffer stores `(arg slot, index, previous value)` so an
    /// aborted batch can restore every mutation before the scalar replay.
    undo: Vec<(u16, usize, Value)>,
    /// Per-argument-slot hazard flags: whether the batch stored to the slot.
    slot_stored: Vec<bool>,
    /// Per-argument-slot hazard flags: whether any lane loaded an address it
    /// does not own (address ≠ its global id).
    slot_foreign_load: Vec<bool>,
    /// Set after a batch aborted for a non-error reason (divergence or a
    /// cross-lane hazard): the rest of the launch runs scalar.
    batch_disabled: bool,
    /// Lane count the kernel frame's constant pool was last broadcast for
    /// (0 = never). Constant-pool registers are never written by compiled
    /// code (the scalar engine's once-per-launch `pool_ready` relies on the
    /// same invariant), so the broadcast survives across the equally-sized
    /// batches of a launch.
    bcast_lanes: usize,
}

/// Why a batch could not complete in lockstep. Every variant rolls the batch
/// back and replays it through the scalar engine, which produces the
/// authoritative results, stats and error messages.
enum BatchAbort {
    /// A lane hit a runtime error (the replay will reproduce it verbatim).
    Error,
    /// Divergent control flow beyond the early-exit mask, a cross-lane
    /// buffer hazard, or any other shape the lockstep path does not model.
    Bail,
}

impl<'u> Vm<'u> {
    /// Create a VM for a compiled unit.
    pub fn new(unit: &'u CompiledUnit) -> Self {
        Vm {
            unit,
            regs: Vec::new(),
            frames: Vec::new(),
            buffer_slots: Vec::new(),
            stencil: None,
            bound_kernel: None,
            pool_ready: false,
            max_loop_iterations: 100_000_000,
            max_call_depth: 4096,
            stats: ExecStats::default(),
            bregs: Vec::new(),
            active: Vec::new(),
            lane_bools: Vec::new(),
            undo: Vec::new(),
            slot_stored: Vec::new(),
            slot_foreign_load: Vec::new(),
            batch_disabled: false,
            bcast_lanes: 0,
        }
    }

    /// The execution statistics accumulated since construction (or the last
    /// [`Vm::reset_stats`]).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Reset the accumulated execution statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// The stencil context detected by the last [`Vm::bind_kernel`], if any.
    pub(crate) fn stencil(&self) -> Option<StencilCtx> {
        self.stencil
    }

    /// Validate the argument bindings against the kernel signature and build
    /// the buffer-slot table. Mirrors the interpreter's per-call validation,
    /// hoisted out of the per-work-item path.
    pub fn bind_kernel(
        &mut self,
        kernel_index: usize,
        args: &[ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let func = &self.unit.functions[kernel_index];
        if args.len() != func.params.len() {
            return Err(KernelError::run(format!(
                "kernel `{}` expects {} arguments, {} bound",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        self.buffer_slots.clear();
        self.buffer_slots.resize(self.unit.buffer_names.len(), None);
        for (i, (param, arg)) in func.params.iter().zip(args.iter()).enumerate() {
            match (&param.ty, arg) {
                (Type::GlobalPtr(want), ArgBinding::Buffer(view)) => {
                    let got = view.scalar_type();
                    if *want != got {
                        return Err(KernelError::run(format!(
                            "argument `{}` of kernel `{}`: expected __global {want}*, bound {got} buffer",
                            param.name, func.name
                        )));
                    }
                    self.buffer_slots[param.name_id as usize] = Some(i as u16);
                }
                (Type::Scalar(_), ArgBinding::Scalar(_)) => {}
                (Type::GlobalPtr(_), ArgBinding::Scalar(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a buffer but a scalar was bound",
                        param.name, func.name
                    )));
                }
                (Type::Scalar(_), ArgBinding::Buffer(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a scalar but a buffer was bound",
                        param.name, func.name
                    )));
                }
                (Type::Void, _) => unreachable!("void parameters rejected by the parser"),
            }
        }
        self.stencil = StencilCtx::detect(func.params.iter().map(|p| p.name.as_str()), args)?;
        self.bound_kernel = Some(kernel_index);
        self.pool_ready = false;
        self.batch_disabled = false;
        self.bcast_lanes = 0;
        Ok(())
    }

    /// Validate and run one work-item. Equivalent to the interpreter's
    /// `run_kernel`: the argument bindings are re-validated on every call
    /// (so a caller swapping in differently-typed buffers gets the same
    /// error the oracle reports). Launch loops that keep their bindings
    /// stable should call [`Vm::bind_kernel`] once and then
    /// [`Vm::run_item`] per item.
    pub fn run_kernel(
        &mut self,
        kernel_index: usize,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        self.bind_kernel(kernel_index, args)?;
        self.run_item(item, args)
    }

    /// Execute one work-item of the kernel bound with [`Vm::bind_kernel`].
    pub fn run_item(
        &mut self,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let kernel_index = self
            .bound_kernel
            .ok_or_else(|| KernelError::run("no kernel bound to the VM"))?;
        let mut acc = StatAcc::default();
        let result = self.exec(kernel_index, item, args, &mut acc);
        // Flush the per-item counters into the launch totals (errors keep
        // the partial work counted, like the interpreter's shared cells).
        self.stats.flops += acc.flops;
        self.stats.global_bytes += acc.bytes;
        self.stats.ops += acc.ops;
        result
    }

    /// Execute a batch of work-items of the kernel bound with
    /// [`Vm::bind_kernel`] in lockstep (see the module docs). Equivalent to
    /// calling [`Vm::run_item`] for each item in order: results, accumulated
    /// [`ExecStats`] and errors are bit-identical; the lockstep path merely
    /// amortises instruction dispatch over the lanes.
    pub fn run_batch(
        &mut self,
        items: &[WorkItem],
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let kernel_index = self
            .bound_kernel
            .ok_or_else(|| KernelError::run("no kernel bound to the VM"))?;
        // Lockstep needs ≥ 2 lanes with pairwise-distinct global ids (the
        // hazard discipline uses the global id as the disjointness witness).
        let batchable = items.len() >= 2
            && !self.batch_disabled
            && items.windows(2).all(|w| w[0].global_id < w[1].global_id);
        if !batchable {
            for item in items {
                self.run_item(*item, args)?;
            }
            return Ok(());
        }
        let mut acc = StatAcc::default();
        match self.exec_batch(kernel_index, items, args, &mut acc) {
            Ok(()) => {
                // The per-batch accumulation must be *exactly* the sum the
                // scalar engine (and therefore the interpreter oracle)
                // produces item by item: the cost constants are dyadic
                // rationals, so no summation order can legitimately differ.
                // `vm_differential.rs` asserts that equality against the
                // oracle; here debug builds guard the counter invariants the
                // lockstep path relies on (no negative or non-finite drift,
                // and a fully-retired batch left no lane mid-flight).
                debug_assert!(
                    acc.flops.is_finite()
                        && acc.bytes.is_finite()
                        && acc.ops.is_finite()
                        && acc.flops >= 0.0
                        && acc.bytes >= 0.0
                        && acc.ops >= 0.0,
                    "per-batch counters must stay finite and non-negative"
                );
                self.stats.flops += acc.flops;
                self.stats.global_bytes += acc.bytes;
                self.stats.ops += acc.ops;
                Ok(())
            }
            Err(abort) => {
                // Restore every buffer store of the aborted batch (newest
                // first), then replay sequentially: the scalar engine is the
                // authoritative semantics, including error messages and the
                // stats of partially-executed erroring items. The batch's
                // `acc` is simply dropped.
                while let Some((slot, idx, old)) = self.undo.pop() {
                    if let ArgBinding::Buffer(view) = &mut args[slot as usize] {
                        view.restore(idx, old);
                    }
                }
                if matches!(abort, BatchAbort::Bail) {
                    self.batch_disabled = true;
                }
                for item in items {
                    self.run_item(*item, args)?;
                }
                Ok(())
            }
        }
    }

    /// The lockstep interpreter loop of one batch. Any condition the batched
    /// model cannot reproduce bit-identically returns a [`BatchAbort`]; the
    /// caller rolls back and replays through the scalar path.
    #[allow(clippy::too_many_lines)]
    fn exec_batch(
        &mut self,
        kernel_index: usize,
        items: &[WorkItem],
        args: &mut [ArgBinding<'_>],
        acc: &mut StatAcc,
    ) -> Result<(), BatchAbort> {
        let unit = self.unit;
        let lanes = items.len();
        let mut func_idx = kernel_index;
        let mut pc: usize = 0;
        let mut base: usize = 0;
        self.frames.clear();
        self.undo.clear();
        self.active.clear();
        self.active.extend(0..lanes as u32);
        self.slot_stored.clear();
        self.slot_stored.resize(args.len(), false);
        self.slot_foreign_load.clear();
        self.slot_foreign_load.resize(args.len(), false);
        {
            let func = &unit.functions[func_idx];
            let need = func.num_regs as usize * lanes;
            if self.bregs.len() < need {
                self.bregs.resize(need, Value::Int(0));
            }
            // Broadcast the constant pool once per lane width — compiled
            // code never writes pool registers (the scalar engine's
            // once-per-launch `pool_ready` relies on the same invariant) —
            // and the scalar parameters every batch: parameters are mutable
            // locals, so each batch starts from the bound values exactly
            // like each scalar item does.
            if self.bcast_lanes != lanes {
                for (reg, value) in &func.const_pool {
                    let row = *reg as usize * lanes;
                    self.bregs[row..row + lanes].fill(*value);
                }
                self.bcast_lanes = lanes;
            }
            for (i, param) in func.params.iter().enumerate() {
                if let (Type::Scalar(want), ArgBinding::Scalar(v)) = (&param.ty, &args[i]) {
                    let row = i * lanes;
                    self.bregs[row..row + lanes].fill(v.convert_to(*want));
                }
            }
        }
        // All active lanes share one loop budget: their control flow is
        // uniform, so each lane has consumed exactly this many back-edges.
        let mut budget = self.max_loop_iterations;

        macro_rules! take_branch {
            ($target:expr) => {{
                let t = $target as usize;
                if t <= pc {
                    match budget.checked_sub(1) {
                        Some(b) => budget = b,
                        None => return Err(BatchAbort::Error),
                    }
                }
                pc = t;
            }};
        }

        'frame: loop {
            let func = &unit.functions[func_idx];
            let code = func.code.as_slice();
            let costs = func.costs.as_slice();
            loop {
                let c = costs[pc];
                let n_active = self.active.len() as f64;
                acc.flops += c.flops as f64 * n_active;
                acc.bytes += c.bytes as f64 * n_active;
                acc.ops += c.ops as f64 * n_active;
                match &code[pc] {
                    Op::Const { dst, value } => {
                        let d = (base + *dst as usize) * lanes;
                        for &lane in &self.active {
                            self.bregs[d + lane as usize] = *value;
                        }
                    }
                    Op::Mov { dst, src } => {
                        let d = (base + *dst as usize) * lanes;
                        let s = (base + *src as usize) * lanes;
                        for &lane in &self.active {
                            self.bregs[d + lane as usize] = self.bregs[s + lane as usize];
                        }
                    }
                    Op::Cast { dst, src, ty } => {
                        let d = (base + *dst as usize) * lanes;
                        let s = (base + *src as usize) * lanes;
                        for &lane in &self.active {
                            self.bregs[d + lane as usize] =
                                self.bregs[s + lane as usize].convert_to(*ty);
                        }
                    }
                    Op::Bin { op, dst, lhs, rhs } => {
                        let d = (base + *dst as usize) * lanes;
                        let l = (base + *lhs as usize) * lanes;
                        let r = (base + *rhs as usize) * lanes;
                        // The binary-op dispatch is hoisted out of the lane
                        // loop, with a float fast path per arithmetic op
                        // (bit-identical to `vm_eval_binary`: f64 compute,
                        // exact round back). Anything else falls back to the
                        // shared evaluator per lane.
                        macro_rules! float_bin {
                            ($op:tt) => {
                                for &lane in &self.active {
                                    let lane = lane as usize;
                                    match (self.bregs[l + lane], self.bregs[r + lane]) {
                                        (Value::Float(a), Value::Float(b)) => {
                                            self.bregs[d + lane] =
                                                Value::Float((a as f64 $op b as f64) as f32);
                                        }
                                        (a, b) => match vm_eval_binary(*op, a, b) {
                                            Ok(v) => self.bregs[d + lane] = v,
                                            Err(_) => return Err(BatchAbort::Error),
                                        },
                                    }
                                }
                            };
                        }
                        match op {
                            BinOp::Add => float_bin!(+),
                            BinOp::Sub => float_bin!(-),
                            BinOp::Mul => float_bin!(*),
                            BinOp::Div => float_bin!(/),
                            _ => {
                                for &lane in &self.active {
                                    let lane = lane as usize;
                                    match vm_eval_binary(
                                        *op,
                                        self.bregs[l + lane],
                                        self.bregs[r + lane],
                                    ) {
                                        Ok(v) => self.bregs[d + lane] = v,
                                        Err(_) => return Err(BatchAbort::Error),
                                    }
                                }
                            }
                        }
                    }
                    Op::Neg { dst, src } => {
                        let d = (base + *dst as usize) * lanes;
                        let s = (base + *src as usize) * lanes;
                        for &lane in &self.active {
                            let lane = lane as usize;
                            self.bregs[d + lane] = match self.bregs[s + lane] {
                                Value::Float(x) => Value::Float(-x),
                                Value::Double(x) => Value::Double(-x),
                                Value::Int(x) => Value::Int(x.wrapping_neg()),
                                Value::Uint(x) => Value::Int(-(x as i64) as i32),
                                Value::Bool(_) => unreachable!("checker rejects bool negation"),
                            };
                        }
                    }
                    Op::Not { dst, src } => {
                        let d = (base + *dst as usize) * lanes;
                        let s = (base + *src as usize) * lanes;
                        for &lane in &self.active {
                            let lane = lane as usize;
                            self.bregs[d + lane] = Value::Bool(!self.bregs[s + lane].as_bool());
                        }
                    }
                    Op::BufLoad { dst, name, idx } => {
                        let Some(slot) = self.buffer_slots.get(*name as usize).copied().flatten()
                        else {
                            return Err(BatchAbort::Error);
                        };
                        let d = (base + *dst as usize) * lanes;
                        let i = (base + *idx as usize) * lanes;
                        let ArgBinding::Buffer(view) = &args[slot as usize] else {
                            return Err(BatchAbort::Error);
                        };
                        // The view's element type is resolved once per
                        // instruction; the f32 fast path skips the per-lane
                        // view dispatch of the generic loop.
                        macro_rules! load_lanes {
                            ($load:expr) => {
                                for &lane in &self.active {
                                    let lane = lane as usize;
                                    let addr = self.bregs[i + lane].as_i64();
                                    if addr < 0 {
                                        return Err(BatchAbort::Error);
                                    }
                                    let addr = addr as usize;
                                    if addr != items[lane].global_id {
                                        self.slot_foreign_load[slot as usize] = true;
                                        if self.slot_stored[slot as usize] {
                                            return Err(BatchAbort::Bail);
                                        }
                                    }
                                    match $load(addr) {
                                        Some(v) => self.bregs[d + lane] = v,
                                        None => return Err(BatchAbort::Error),
                                    }
                                }
                            };
                        }
                        match view {
                            crate::interp::BufferView::F32(s) => {
                                load_lanes!(|addr: usize| s.get(addr).map(|v| Value::Float(*v)))
                            }
                            _ => load_lanes!(|addr: usize| view.load(addr)),
                        }
                    }
                    Op::BufStore { name, idx, src } => {
                        let Some(slot) = self.buffer_slots.get(*name as usize).copied().flatten()
                        else {
                            return Err(BatchAbort::Error);
                        };
                        let i = (base + *idx as usize) * lanes;
                        let s = (base + *src as usize) * lanes;
                        let slot_us = slot as usize;
                        let ArgBinding::Buffer(view) = &mut args[slot_us] else {
                            return Err(BatchAbort::Error);
                        };
                        // Foreign stores and store/foreign-load mixes on one
                        // buffer cannot be ordered like the sequential
                        // engine — those bail to the replay path. The f32
                        // fast path resolves the view once per instruction;
                        // the stored value converts exactly like
                        // `BufferView::store` (`as_f64() as f32`).
                        macro_rules! store_lanes {
                            (|$addr:ident, $lane:ident| $do_store:block) => {
                                for &lane in &self.active {
                                    let $lane = lane as usize;
                                    let addr = self.bregs[i + $lane].as_i64();
                                    if addr < 0 {
                                        return Err(BatchAbort::Error);
                                    }
                                    let $addr = addr as usize;
                                    if $addr != items[$lane].global_id
                                        || self.slot_foreign_load[slot_us]
                                    {
                                        return Err(BatchAbort::Bail);
                                    }
                                    $do_store
                                }
                                self.slot_stored[slot_us] = true;
                            };
                        }
                        match view {
                            crate::interp::BufferView::F32(buf) => {
                                store_lanes!(|addr, lane| {
                                    let Some(slot_ref) = buf.get_mut(addr) else {
                                        return Err(BatchAbort::Error);
                                    };
                                    self.undo.push((slot, addr, Value::Float(*slot_ref)));
                                    *slot_ref = self.bregs[s + lane].as_f64() as f32;
                                });
                            }
                            _ => {
                                store_lanes!(|addr, lane| {
                                    let Some(old) = view.load(addr) else {
                                        return Err(BatchAbort::Error);
                                    };
                                    self.undo.push((slot, addr, old));
                                    if !view.store(addr, self.bregs[s + lane]) {
                                        return Err(BatchAbort::Error);
                                    }
                                });
                            }
                        }
                    }
                    Op::Jump { target } => {
                        take_branch!(*target);
                        continue;
                    }
                    Op::JumpIfFalse { cond, target } => {
                        let cr = (base + *cond as usize) * lanes;
                        self.lane_bools.clear();
                        for &lane in &self.active {
                            self.lane_bools
                                .push(self.bregs[cr + lane as usize].as_bool());
                        }
                        match self
                            .resolve_branch(func, pc, *target, /* jump_when = */ false, acc)?
                        {
                            BranchOutcome::Taken => {
                                take_branch!(*target);
                                continue;
                            }
                            BranchOutcome::FallThrough => {}
                            BranchOutcome::Retired => {
                                // A divergent branch always leaves both
                                // sides non-empty, so lanes remain.
                                debug_assert!(!self.active.is_empty());
                            }
                        }
                    }
                    Op::BinJumpIfFalse {
                        op,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let l = (base + *lhs as usize) * lanes;
                        let r = (base + *rhs as usize) * lanes;
                        self.lane_bools.clear();
                        for &lane in &self.active {
                            let lane = lane as usize;
                            match vm_eval_binary(*op, self.bregs[l + lane], self.bregs[r + lane]) {
                                Ok(v) => self.lane_bools.push(v.as_bool()),
                                Err(_) => return Err(BatchAbort::Error),
                            }
                        }
                        match self.resolve_branch(func, pc, *target, false, acc)? {
                            BranchOutcome::Taken => {
                                take_branch!(*target);
                                continue;
                            }
                            BranchOutcome::FallThrough => {}
                            BranchOutcome::Retired => {
                                // A divergent branch always leaves both
                                // sides non-empty, so lanes remain.
                                debug_assert!(!self.active.is_empty());
                            }
                        }
                    }
                    Op::JumpIfTrue { cond, target } => {
                        let cr = (base + *cond as usize) * lanes;
                        self.lane_bools.clear();
                        for &lane in &self.active {
                            self.lane_bools
                                .push(self.bregs[cr + lane as usize].as_bool());
                        }
                        match self
                            .resolve_branch(func, pc, *target, /* jump_when = */ true, acc)?
                        {
                            BranchOutcome::Taken => {
                                take_branch!(*target);
                                continue;
                            }
                            BranchOutcome::FallThrough => {}
                            BranchOutcome::Retired => {
                                // A divergent branch always leaves both
                                // sides non-empty, so lanes remain.
                                debug_assert!(!self.active.is_empty());
                            }
                        }
                    }
                    Op::Call {
                        func: callee,
                        dst,
                        args: args_base,
                        nargs,
                    } => {
                        if self.frames.len() >= self.max_call_depth {
                            return Err(BatchAbort::Error);
                        }
                        let callee_idx = *callee as usize;
                        let callee_fn = &unit.functions[callee_idx];
                        let new_base = base + func.num_regs as usize;
                        let need = (new_base + callee_fn.num_regs as usize) * lanes;
                        if self.bregs.len() < need {
                            self.bregs.resize(need, Value::Int(0));
                        }
                        for k in 0..*nargs as usize {
                            let src = (base + *args_base as usize + k) * lanes;
                            let dst_row = (new_base + k) * lanes;
                            let want = callee_fn.params[k].ty.scalar();
                            for &lane in &self.active {
                                let lane = lane as usize;
                                self.bregs[dst_row + lane] =
                                    self.bregs[src + lane].convert_to(want);
                            }
                        }
                        for (reg, value) in &callee_fn.const_pool {
                            let row = (new_base + *reg as usize) * lanes;
                            for &lane in &self.active {
                                self.bregs[row + lane as usize] = *value;
                            }
                        }
                        self.frames.push(Frame {
                            func: func_idx,
                            return_pc: pc + 1,
                            base,
                            dst: base + *dst as usize,
                        });
                        func_idx = callee_idx;
                        base = new_base;
                        pc = 0;
                        continue 'frame;
                    }
                    Op::CallBuiltin {
                        builtin,
                        dst,
                        args: args_base,
                        nargs,
                    } => {
                        let d = (base + *dst as usize) * lanes;
                        let a0 = base + *args_base as usize;
                        let n = *nargs as usize;
                        let mut vals = [Value::Int(0); 4];
                        debug_assert!(n <= 4, "builtins take at most four arguments");
                        for &lane in &self.active {
                            let lane = lane as usize;
                            for (k, v) in vals.iter_mut().enumerate().take(n) {
                                *v = self.bregs[(a0 + k) * lanes + lane];
                            }
                            self.bregs[d + lane] = builtin.eval_math(&vals[..n]);
                        }
                    }
                    Op::StencilGet {
                        dst,
                        args: args_base,
                    } => {
                        let Some(ctx) = self.stencil else {
                            return Err(BatchAbort::Error);
                        };
                        if self.slot_stored[ctx.in_slot] {
                            return Err(BatchAbort::Bail);
                        }
                        self.slot_foreign_load[ctx.in_slot] = true;
                        let d = (base + *dst as usize) * lanes;
                        let dx_row = (base + *args_base as usize) * lanes;
                        let dy_row = (base + *args_base as usize + 1) * lanes;
                        for &lane in &self.active {
                            let lane = lane as usize;
                            let dx = self.bregs[dx_row + lane].as_i64();
                            let dy = self.bregs[dy_row + lane].as_i64();
                            match stencil_get(ctx, args, items[lane].global_id, dx, dy) {
                                Ok(v) => self.bregs[d + lane] = v,
                                Err(_) => return Err(BatchAbort::Error),
                            }
                        }
                    }
                    Op::WorkItem { dst, builtin } => {
                        let d = (base + *dst as usize) * lanes;
                        for &lane in &self.active {
                            let item = &items[lane as usize];
                            let v = match builtin {
                                Builtin::GetGlobalId => item.global_id,
                                Builtin::GetLocalId => item.local_id,
                                Builtin::GetGroupId => item.group_id,
                                Builtin::GetGlobalSize => item.global_size,
                                Builtin::GetLocalSize => item.local_size,
                                Builtin::GetNumGroups => {
                                    item.global_size.div_ceil(item.local_size.max(1))
                                }
                                other => unreachable!("{other:?} is not a work-item function"),
                            };
                            self.bregs[d + lane as usize] = Value::Int(v as i32);
                        }
                    }
                    Op::Return { src } => {
                        let s = (base + *src as usize) * lanes;
                        match self.frames.pop() {
                            None => return Ok(()),
                            Some(frame) => {
                                let d = frame.dst * lanes;
                                let want = func.return_type.scalar();
                                for &lane in &self.active {
                                    let lane = lane as usize;
                                    self.bregs[d + lane] = self.bregs[s + lane].convert_to(want);
                                }
                                func_idx = frame.func;
                                pc = frame.return_pc;
                                base = frame.base;
                                continue 'frame;
                            }
                        }
                    }
                    Op::ReturnVoid => match self.frames.pop() {
                        None => return Ok(()),
                        Some(frame) => {
                            let d = frame.dst * lanes;
                            for &lane in &self.active {
                                self.bregs[d + lane as usize] = Value::Int(0);
                            }
                            func_idx = frame.func;
                            pc = frame.return_pc;
                            base = frame.base;
                            continue 'frame;
                        }
                    },
                    Op::MissingReturn { .. } | Op::OrphanFlow | Op::FailUnbound { .. } => {
                        return Err(BatchAbort::Error);
                    }
                    Op::Nop => {}
                }
                pc += 1;
            }
        }
    }

    /// Resolve a conditional branch over the outcomes in `self.lane_bools`
    /// (parallel to `self.active`). `jump_when` is the truth value that takes
    /// the jump. Uniform outcomes are the fast path; a divergent branch is
    /// only representable when the lanes that *leave* the straight-line path
    /// do so through a trivial exit chain (forward jumps ending in a return)
    /// in the top frame — those lanes are charged the chain's costs and
    /// retired. Everything else aborts the batch.
    fn resolve_branch(
        &mut self,
        func: &crate::compile::CompiledFunction,
        pc: usize,
        target: u32,
        jump_when: bool,
        acc: &mut StatAcc,
    ) -> Result<BranchOutcome, BatchAbort> {
        let taken = self.lane_bools.iter().filter(|b| **b == jump_when).count();
        if taken == self.lane_bools.len() {
            return Ok(BranchOutcome::Taken);
        }
        if taken == 0 {
            return Ok(BranchOutcome::FallThrough);
        }
        // Divergent. Only the "jump side exits via a trivial chain, in the
        // top frame" shape keeps lockstep semantics exact.
        if !self.frames.is_empty() || (target as usize) <= pc {
            return Err(BatchAbort::Bail);
        }
        let Some(chain) = exit_chain_cost(func, target as usize) else {
            return Err(BatchAbort::Bail);
        };
        // Charge each exiting lane the instructions it would still execute
        // (the jump chain and the final return), then retire it.
        acc.flops += chain.0 * taken as f64;
        acc.bytes += chain.1 * taken as f64;
        acc.ops += chain.2 * taken as f64;
        let bools = std::mem::take(&mut self.lane_bools);
        let mut keep = 0usize;
        for (i, jumped) in bools.iter().enumerate() {
            if *jumped != jump_when {
                self.active[keep] = self.active[i];
                keep += 1;
            }
        }
        self.active.truncate(keep);
        self.lane_bools = bools;
        Ok(BranchOutcome::Retired)
    }

    fn exec(
        &mut self,
        kernel_index: usize,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
        acc: &mut StatAcc,
    ) -> Result<(), KernelError> {
        let unit = self.unit;
        let mut func_idx = kernel_index;
        let mut pc: usize = 0;
        let mut base: usize = 0;
        self.frames.clear();
        {
            let func = &unit.functions[func_idx];
            // Registers are not zeroed between work-items: the compiler
            // guarantees every read is dominated by a write (declarations
            // without initialisers emit an explicit zero store).
            if self.regs.len() < func.num_regs as usize {
                self.regs.resize(func.num_regs as usize, Value::Int(0));
            }
            if !self.pool_ready {
                for (reg, value) in &func.const_pool {
                    self.regs[*reg as usize] = *value;
                }
                self.pool_ready = true;
            }
            // Scalar parameters land in registers 0..n, converted to their
            // declared types (buffer parameters go through the slot table).
            for (i, param) in func.params.iter().enumerate() {
                if let (Type::Scalar(want), ArgBinding::Scalar(v)) = (&param.ty, &args[i]) {
                    self.regs[i] = v.convert_to(*want);
                }
            }
        }
        let mut budget = self.max_loop_iterations;

        'frame: loop {
            let func = &unit.functions[func_idx];
            let code = func.code.as_slice();
            let costs = func.costs.as_slice();
            loop {
                let c = costs[pc];
                acc.flops += c.flops as f64;
                acc.bytes += c.bytes as f64;
                acc.ops += c.ops as f64;
                match &code[pc] {
                    Op::Const { dst, value } => self.regs[base + *dst as usize] = *value,
                    Op::Mov { dst, src } => {
                        self.regs[base + *dst as usize] = self.regs[base + *src as usize]
                    }
                    Op::Cast { dst, src, ty } => {
                        self.regs[base + *dst as usize] =
                            self.regs[base + *src as usize].convert_to(*ty)
                    }
                    Op::Bin { op, dst, lhs, rhs } => {
                        let l = self.regs[base + *lhs as usize];
                        let r = self.regs[base + *rhs as usize];
                        self.regs[base + *dst as usize] = vm_eval_binary(*op, l, r)?;
                    }
                    Op::Neg { dst, src } => {
                        let v = self.regs[base + *src as usize];
                        self.regs[base + *dst as usize] = match v {
                            Value::Float(x) => Value::Float(-x),
                            Value::Double(x) => Value::Double(-x),
                            Value::Int(x) => Value::Int(x.wrapping_neg()),
                            Value::Uint(x) => Value::Int(-(x as i64) as i32),
                            Value::Bool(_) => unreachable!("checker rejects bool negation"),
                        };
                    }
                    Op::Not { dst, src } => {
                        let v = self.regs[base + *src as usize];
                        self.regs[base + *dst as usize] = Value::Bool(!v.as_bool());
                    }
                    Op::BufLoad { dst, name, idx } => {
                        let idx = self.regs[base + *idx as usize].as_i64();
                        let v = buffer_access(unit, &self.buffer_slots, args, *name, idx, None)?;
                        self.regs[base + *dst as usize] = v.expect("load returns a value");
                    }
                    Op::BufStore { name, idx, src } => {
                        let idx = self.regs[base + *idx as usize].as_i64();
                        let v = self.regs[base + *src as usize];
                        buffer_access(unit, &self.buffer_slots, args, *name, idx, Some(v))?;
                    }
                    Op::Jump { target } => {
                        let t = *target as usize;
                        if t <= pc {
                            budget = budget
                                .checked_sub(1)
                                .ok_or_else(|| KernelError::run("loop iteration limit exceeded"))?;
                        }
                        pc = t;
                        continue;
                    }
                    Op::JumpIfFalse { cond, target } => {
                        if !self.regs[base + *cond as usize].as_bool() {
                            let t = *target as usize;
                            if t <= pc {
                                budget = budget.checked_sub(1).ok_or_else(|| {
                                    KernelError::run("loop iteration limit exceeded")
                                })?;
                            }
                            pc = t;
                            continue;
                        }
                    }
                    Op::BinJumpIfFalse {
                        op,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let l = self.regs[base + *lhs as usize];
                        let r = self.regs[base + *rhs as usize];
                        if !vm_eval_binary(*op, l, r)?.as_bool() {
                            let t = *target as usize;
                            if t <= pc {
                                budget = budget.checked_sub(1).ok_or_else(|| {
                                    KernelError::run("loop iteration limit exceeded")
                                })?;
                            }
                            pc = t;
                            continue;
                        }
                    }
                    Op::JumpIfTrue { cond, target } => {
                        if self.regs[base + *cond as usize].as_bool() {
                            let t = *target as usize;
                            if t <= pc {
                                budget = budget.checked_sub(1).ok_or_else(|| {
                                    KernelError::run("loop iteration limit exceeded")
                                })?;
                            }
                            pc = t;
                            continue;
                        }
                    }
                    Op::Call {
                        func: callee,
                        dst,
                        args: args_base,
                        nargs,
                    } => {
                        if self.frames.len() >= self.max_call_depth {
                            return Err(KernelError::run(format!(
                                "call depth limit ({}) exceeded",
                                self.max_call_depth
                            )));
                        }
                        let callee_idx = *callee as usize;
                        let callee_fn = &unit.functions[callee_idx];
                        let new_base = base + func.num_regs as usize;
                        let need = new_base + callee_fn.num_regs as usize;
                        if self.regs.len() < need {
                            self.regs.resize(need, Value::Int(0));
                        }
                        for k in 0..*nargs as usize {
                            let v = self.regs[base + *args_base as usize + k];
                            self.regs[new_base + k] = v.convert_to(callee_fn.params[k].ty.scalar());
                        }
                        for (reg, value) in &callee_fn.const_pool {
                            self.regs[new_base + *reg as usize] = *value;
                        }
                        self.frames.push(Frame {
                            func: func_idx,
                            return_pc: pc + 1,
                            base,
                            dst: base + *dst as usize,
                        });
                        func_idx = callee_idx;
                        base = new_base;
                        pc = 0;
                        continue 'frame;
                    }
                    Op::CallBuiltin {
                        builtin,
                        dst,
                        args: args_base,
                        nargs,
                    } => {
                        let lo = base + *args_base as usize;
                        let vals = &self.regs[lo..lo + *nargs as usize];
                        let v = builtin.eval_math(vals);
                        self.regs[base + *dst as usize] = v;
                    }
                    Op::StencilGet {
                        dst,
                        args: args_base,
                    } => {
                        let dx = self.regs[base + *args_base as usize].as_i64();
                        let dy = self.regs[base + *args_base as usize + 1].as_i64();
                        let ctx = self
                            .stencil
                            .ok_or_else(|| KernelError::run(NO_STENCIL_CONTEXT))?;
                        let v = stencil_get(ctx, args, item.global_id, dx, dy)?;
                        self.regs[base + *dst as usize] = v;
                    }
                    Op::WorkItem { dst, builtin } => {
                        let v = match builtin {
                            Builtin::GetGlobalId => item.global_id,
                            Builtin::GetLocalId => item.local_id,
                            Builtin::GetGroupId => item.group_id,
                            Builtin::GetGlobalSize => item.global_size,
                            Builtin::GetLocalSize => item.local_size,
                            Builtin::GetNumGroups => {
                                item.global_size.div_ceil(item.local_size.max(1))
                            }
                            other => unreachable!("{other:?} is not a work-item function"),
                        };
                        self.regs[base + *dst as usize] = Value::Int(v as i32);
                    }
                    Op::Return { src } => {
                        let v =
                            self.regs[base + *src as usize].convert_to(func.return_type.scalar());
                        match self.frames.pop() {
                            None => return Ok(()),
                            Some(frame) => {
                                self.regs[frame.dst] = v;
                                func_idx = frame.func;
                                pc = frame.return_pc;
                                base = frame.base;
                                continue 'frame;
                            }
                        }
                    }
                    Op::ReturnVoid => match self.frames.pop() {
                        None => return Ok(()),
                        Some(frame) => {
                            // A void function call evaluates to int 0, like
                            // the interpreter.
                            self.regs[frame.dst] = Value::Int(0);
                            func_idx = frame.func;
                            pc = frame.return_pc;
                            base = frame.base;
                            continue 'frame;
                        }
                    },
                    Op::MissingReturn { name } => {
                        return Err(KernelError::run(format!(
                            "non-void function `{}` finished without returning a value",
                            unit.buffer_names[*name as usize]
                        )));
                    }
                    Op::OrphanFlow => {
                        return Err(KernelError::run(
                            "break/continue outside of a loop".to_string(),
                        ));
                    }
                    Op::FailUnbound { name } => {
                        return Err(KernelError::run(format!(
                            "variable `{}` is not bound",
                            unit.buffer_names[*name as usize]
                        )));
                    }
                    Op::Nop => {}
                }
                pc += 1;
            }
        }
    }
}

/// How a batched conditional branch resolved (see [`Vm::resolve_branch`]).
enum BranchOutcome {
    /// Every active lane takes the jump.
    Taken,
    /// No active lane takes the jump.
    FallThrough,
    /// The jumping lanes exited through a trivial chain and were retired;
    /// the remaining lanes fall through.
    Retired,
}

/// If `pc` starts a trivial exit chain — forward `Jump`s and `Nop`s ending in
/// a `Return`/`ReturnVoid` — return the summed `(flops, bytes, ops)` cost of
/// executing it, which is what the scalar engine charges a lane that takes
/// this path. `None` for anything with side effects or backward edges.
pub(crate) fn exit_chain_cost(
    func: &crate::compile::CompiledFunction,
    mut pc: usize,
) -> Option<(f64, f64, f64)> {
    let mut cost = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..64 {
        let c = func.costs[pc];
        cost.0 += c.flops as f64;
        cost.1 += c.bytes as f64;
        cost.2 += c.ops as f64;
        match func.code[pc] {
            Op::Nop => pc += 1,
            Op::Jump { target } if target as usize > pc => pc = target as usize,
            // Top-frame returns have no observable effect beyond their cost
            // (the kernel's return value is discarded).
            Op::Return { .. } | Op::ReturnVoid => return Some(cost),
            _ => return None,
        }
    }
    None
}

/// Shared buffer load/store path: resolves the interned name against the
/// launch's slot table and performs the access with the interpreter's exact
/// bounds-checking error messages. `store` of `None` loads, `Some(v)` stores.
fn buffer_access(
    unit: &CompiledUnit,
    slots: &[Option<u16>],
    args: &mut [ArgBinding<'_>],
    name: u16,
    idx: i64,
    store: Option<Value>,
) -> Result<Option<Value>, KernelError> {
    let name_str = || unit.buffer_names[name as usize].clone();
    if idx < 0 {
        return Err(KernelError::run(format!(
            "negative index {idx} into buffer `{}`",
            name_str()
        )));
    }
    let slot =
        slots.get(name as usize).copied().flatten().ok_or_else(|| {
            KernelError::run(format!("`{}` is not a buffer parameter", name_str()))
        })?;
    match &mut args[slot as usize] {
        ArgBinding::Buffer(view) => match store {
            None => view.load(idx as usize).map(Some).ok_or_else(|| {
                KernelError::run(format!(
                    "index {idx} out of bounds for buffer `{}` (len {})",
                    name_str(),
                    view.len()
                ))
            }),
            Some(v) => {
                let len = view.len();
                if view.store(idx as usize, v) {
                    Ok(None)
                } else {
                    Err(KernelError::run(format!(
                        "index {idx} out of bounds for buffer `{}` (len {len})",
                        name_str()
                    )))
                }
            }
        },
        ArgBinding::Scalar(_) => Err(KernelError::run(format!(
            "`{}` is bound to a scalar but used as a buffer",
            name_str()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn run_vm(src: &str, kernel: &str, data: &mut [f32], n: usize) -> ExecStats {
        let p = Program::build(src).unwrap();
        let k = p.kernel(kernel).unwrap();
        let mut args = vec![
            ArgBinding::buffer_f32(data),
            ArgBinding::Scalar(Value::Int(n as i32)),
        ];
        let mut vm = Vm::new(p.compiled());
        vm.bind_kernel(k.index(), &args).unwrap();
        for gid in 0..n {
            vm.run_item(WorkItem::linear(gid, n), &mut args).unwrap();
        }
        vm.stats()
    }

    #[test]
    fn vm_runs_a_simple_map_kernel() {
        let src = r#"
            __kernel void dbl(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = v[i] * 2.0f; }
            }
        "#;
        let mut data = vec![1.0f32, 2.0, 3.0, 4.0];
        let stats = run_vm(src, "dbl", &mut data, 4);
        assert_eq!(data, vec![2.0, 4.0, 6.0, 8.0]);
        assert!(stats.flops > 0.0 && stats.global_bytes >= 32.0 && stats.ops > 0.0);
    }

    #[test]
    fn vm_loop_guard_trips_on_infinite_loops() {
        let src = "__kernel void k(__global float* v, int n) { while (true) { v[0] = 1.0f; } }";
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 1];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(1)),
        ];
        let mut vm = Vm::new(p.compiled());
        vm.max_loop_iterations = 100;
        vm.bind_kernel(k.index(), &args).unwrap();
        let err = vm.run_item(WorkItem::linear(0, 1), &mut args).unwrap_err();
        assert!(err.message.contains("iteration limit"));
    }

    #[test]
    fn vm_reports_out_of_bounds_like_the_interpreter() {
        let src = "__kernel void k(__global float* v, int n) { v[n + 10] = 1.0f; }";
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 4];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(4)),
        ];
        let mut vm = Vm::new(p.compiled());
        let err = vm
            .run_kernel(k.index(), WorkItem::linear(0, 1), &mut args)
            .unwrap_err();
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn vm_recursion_guard_reports_depth() {
        // Unbounded recursion must be an error, not a native stack overflow.
        let src = r#"
            float f(float x) { return f(x + 1.0f); }
            __kernel void k(__global float* v, int n) { v[0] = f(0.0f); }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 1];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(1)),
        ];
        let mut vm = Vm::new(p.compiled());
        let err = vm
            .run_kernel(k.index(), WorkItem::linear(0, 1), &mut args)
            .unwrap_err();
        assert!(err.message.contains("call depth"));
    }
}
