//! Register-based bytecode VM executing one work-item of a compiled kernel.
//!
//! The VM is the fast execution engine behind [`crate::Program::run_ndrange`]:
//! where the tree-walking interpreter pays a string-keyed hash lookup for
//! every variable access and a shared-cell update for every counted
//! operation, the VM indexes a flat register file and accumulates the
//! compile-time-attributed [`crate::compile::InstrCost`]s into plain per-work-item counters.
//! The interpreter ([`crate::interp`]) is retained as the differential-testing
//! oracle; both engines must produce identical results *and* identical
//! [`ExecStats`] for the same launch.

use crate::ast::BinOp;
use crate::builtins::Builtin;
use crate::compile::{CompiledUnit, Op};
use crate::diag::KernelError;
use crate::interp::{
    eval_binary, stencil_get, ArgBinding, ExecStats, StencilCtx, WorkItem, NO_STENCIL_CONTEXT,
};
use crate::types::Type;
use crate::value::Value;

/// Fast path for the overwhelmingly common operand pairs, bit-identical to
/// [`eval_binary`] (which it falls back to): float arithmetic is computed in
/// `f64` and rounded back exactly like the interpreter, integers fold
/// through `i64` with the same wrapping and zero-division behaviour.
#[inline(always)]
fn vm_eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, KernelError> {
    use crate::ast::BinOp::*;
    match (l, r) {
        (Value::Float(a), Value::Float(b)) => {
            let (x, y) = (a as f64, b as f64);
            Ok(match op {
                Add => Value::Float((x + y) as f32),
                Sub => Value::Float((x - y) as f32),
                Mul => Value::Float((x * y) as f32),
                Div => Value::Float((x / y) as f32),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                _ => return eval_binary(op, l, r),
            })
        }
        (Value::Int(a), Value::Int(b)) => {
            let (x, y) = (a as i64, b as i64);
            Ok(match op {
                Add => Value::Int(x.wrapping_add(y) as i32),
                Sub => Value::Int(x.wrapping_sub(y) as i32),
                Mul => Value::Int(x.wrapping_mul(y) as i32),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                _ => return eval_binary(op, l, r),
            })
        }
        _ => eval_binary(op, l, r),
    }
}

/// Per-work-item plain counters, flushed into [`ExecStats`] after each item.
#[derive(Default)]
struct StatAcc {
    flops: f64,
    bytes: f64,
    ops: f64,
}

/// One saved call frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    func: usize,
    return_pc: usize,
    base: usize,
    /// Absolute register index receiving the callee's return value.
    dst: usize,
}

/// The bytecode VM. One instance is reused across all work-items of a
/// launch; [`Vm::bind_kernel`] validates the argument bindings once, then
/// [`Vm::run_item`] executes individual work-items.
pub struct Vm<'u> {
    unit: &'u CompiledUnit,
    regs: Vec<Value>,
    frames: Vec<Frame>,
    /// Per-launch map from interned buffer name to kernel argument slot.
    buffer_slots: Vec<Option<u16>>,
    /// Per-launch stencil context (present when the bound kernel declares
    /// the reserved `skelcl_stencil_*` parameters).
    stencil: Option<StencilCtx>,
    bound_kernel: Option<usize>,
    /// Whether the bound kernel's constant pool has been written into the
    /// register file (done lazily on the first work-item of a launch).
    pool_ready: bool,
    /// Hard cap on loop back-edges per work-item, to turn accidental
    /// infinite loops into errors instead of hangs. Deliberately stricter
    /// than the interpreter's guard, which counts iterations *per loop
    /// statement*: the VM budget is shared by every loop of the work-item,
    /// so a kernel whose loops total more than this many iterations errors
    /// here while the (hours-slower) oracle would keep running.
    pub max_loop_iterations: u64,
    /// Hard cap on call depth, turning runaway recursion into an error
    /// instead of memory exhaustion.
    pub max_call_depth: usize,
    stats: ExecStats,
}

impl<'u> Vm<'u> {
    /// Create a VM for a compiled unit.
    pub fn new(unit: &'u CompiledUnit) -> Self {
        Vm {
            unit,
            regs: Vec::new(),
            frames: Vec::new(),
            buffer_slots: Vec::new(),
            stencil: None,
            bound_kernel: None,
            pool_ready: false,
            max_loop_iterations: 100_000_000,
            max_call_depth: 4096,
            stats: ExecStats::default(),
        }
    }

    /// The execution statistics accumulated since construction (or the last
    /// [`Vm::reset_stats`]).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Reset the accumulated execution statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Validate the argument bindings against the kernel signature and build
    /// the buffer-slot table. Mirrors the interpreter's per-call validation,
    /// hoisted out of the per-work-item path.
    pub fn bind_kernel(
        &mut self,
        kernel_index: usize,
        args: &[ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let func = &self.unit.functions[kernel_index];
        if args.len() != func.params.len() {
            return Err(KernelError::run(format!(
                "kernel `{}` expects {} arguments, {} bound",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        self.buffer_slots.clear();
        self.buffer_slots.resize(self.unit.buffer_names.len(), None);
        for (i, (param, arg)) in func.params.iter().zip(args.iter()).enumerate() {
            match (&param.ty, arg) {
                (Type::GlobalPtr(want), ArgBinding::Buffer(view)) => {
                    let got = view.scalar_type();
                    if *want != got {
                        return Err(KernelError::run(format!(
                            "argument `{}` of kernel `{}`: expected __global {want}*, bound {got} buffer",
                            param.name, func.name
                        )));
                    }
                    self.buffer_slots[param.name_id as usize] = Some(i as u16);
                }
                (Type::Scalar(_), ArgBinding::Scalar(_)) => {}
                (Type::GlobalPtr(_), ArgBinding::Scalar(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a buffer but a scalar was bound",
                        param.name, func.name
                    )));
                }
                (Type::Scalar(_), ArgBinding::Buffer(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a scalar but a buffer was bound",
                        param.name, func.name
                    )));
                }
                (Type::Void, _) => unreachable!("void parameters rejected by the parser"),
            }
        }
        self.stencil = StencilCtx::detect(func.params.iter().map(|p| p.name.as_str()), args)?;
        self.bound_kernel = Some(kernel_index);
        self.pool_ready = false;
        Ok(())
    }

    /// Validate and run one work-item. Equivalent to the interpreter's
    /// `run_kernel`: the argument bindings are re-validated on every call
    /// (so a caller swapping in differently-typed buffers gets the same
    /// error the oracle reports). Launch loops that keep their bindings
    /// stable should call [`Vm::bind_kernel`] once and then
    /// [`Vm::run_item`] per item.
    pub fn run_kernel(
        &mut self,
        kernel_index: usize,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        self.bind_kernel(kernel_index, args)?;
        self.run_item(item, args)
    }

    /// Execute one work-item of the kernel bound with [`Vm::bind_kernel`].
    pub fn run_item(
        &mut self,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
    ) -> Result<(), KernelError> {
        let kernel_index = self
            .bound_kernel
            .ok_or_else(|| KernelError::run("no kernel bound to the VM"))?;
        let mut acc = StatAcc::default();
        let result = self.exec(kernel_index, item, args, &mut acc);
        // Flush the per-item counters into the launch totals (errors keep
        // the partial work counted, like the interpreter's shared cells).
        self.stats.flops += acc.flops;
        self.stats.global_bytes += acc.bytes;
        self.stats.ops += acc.ops;
        result
    }

    fn exec(
        &mut self,
        kernel_index: usize,
        item: WorkItem,
        args: &mut [ArgBinding<'_>],
        acc: &mut StatAcc,
    ) -> Result<(), KernelError> {
        let unit = self.unit;
        let mut func_idx = kernel_index;
        let mut pc: usize = 0;
        let mut base: usize = 0;
        self.frames.clear();
        {
            let func = &unit.functions[func_idx];
            // Registers are not zeroed between work-items: the compiler
            // guarantees every read is dominated by a write (declarations
            // without initialisers emit an explicit zero store).
            if self.regs.len() < func.num_regs as usize {
                self.regs.resize(func.num_regs as usize, Value::Int(0));
            }
            if !self.pool_ready {
                for (reg, value) in &func.const_pool {
                    self.regs[*reg as usize] = *value;
                }
                self.pool_ready = true;
            }
            // Scalar parameters land in registers 0..n, converted to their
            // declared types (buffer parameters go through the slot table).
            for (i, param) in func.params.iter().enumerate() {
                if let (Type::Scalar(want), ArgBinding::Scalar(v)) = (&param.ty, &args[i]) {
                    self.regs[i] = v.convert_to(*want);
                }
            }
        }
        let mut budget = self.max_loop_iterations;

        'frame: loop {
            let func = &unit.functions[func_idx];
            let code = func.code.as_slice();
            let costs = func.costs.as_slice();
            loop {
                let c = costs[pc];
                acc.flops += c.flops as f64;
                acc.bytes += c.bytes as f64;
                acc.ops += c.ops as f64;
                match &code[pc] {
                    Op::Const { dst, value } => self.regs[base + *dst as usize] = *value,
                    Op::Mov { dst, src } => {
                        self.regs[base + *dst as usize] = self.regs[base + *src as usize]
                    }
                    Op::Cast { dst, src, ty } => {
                        self.regs[base + *dst as usize] =
                            self.regs[base + *src as usize].convert_to(*ty)
                    }
                    Op::Bin { op, dst, lhs, rhs } => {
                        let l = self.regs[base + *lhs as usize];
                        let r = self.regs[base + *rhs as usize];
                        self.regs[base + *dst as usize] = vm_eval_binary(*op, l, r)?;
                    }
                    Op::Neg { dst, src } => {
                        let v = self.regs[base + *src as usize];
                        self.regs[base + *dst as usize] = match v {
                            Value::Float(x) => Value::Float(-x),
                            Value::Double(x) => Value::Double(-x),
                            Value::Int(x) => Value::Int(x.wrapping_neg()),
                            Value::Uint(x) => Value::Int(-(x as i64) as i32),
                            Value::Bool(_) => unreachable!("checker rejects bool negation"),
                        };
                    }
                    Op::Not { dst, src } => {
                        let v = self.regs[base + *src as usize];
                        self.regs[base + *dst as usize] = Value::Bool(!v.as_bool());
                    }
                    Op::BufLoad { dst, name, idx } => {
                        let idx = self.regs[base + *idx as usize].as_i64();
                        let v = buffer_access(unit, &self.buffer_slots, args, *name, idx, None)?;
                        self.regs[base + *dst as usize] = v.expect("load returns a value");
                    }
                    Op::BufStore { name, idx, src } => {
                        let idx = self.regs[base + *idx as usize].as_i64();
                        let v = self.regs[base + *src as usize];
                        buffer_access(unit, &self.buffer_slots, args, *name, idx, Some(v))?;
                    }
                    Op::Jump { target } => {
                        let t = *target as usize;
                        if t <= pc {
                            budget = budget
                                .checked_sub(1)
                                .ok_or_else(|| KernelError::run("loop iteration limit exceeded"))?;
                        }
                        pc = t;
                        continue;
                    }
                    Op::JumpIfFalse { cond, target } => {
                        if !self.regs[base + *cond as usize].as_bool() {
                            let t = *target as usize;
                            if t <= pc {
                                budget = budget.checked_sub(1).ok_or_else(|| {
                                    KernelError::run("loop iteration limit exceeded")
                                })?;
                            }
                            pc = t;
                            continue;
                        }
                    }
                    Op::BinJumpIfFalse {
                        op,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let l = self.regs[base + *lhs as usize];
                        let r = self.regs[base + *rhs as usize];
                        if !vm_eval_binary(*op, l, r)?.as_bool() {
                            let t = *target as usize;
                            if t <= pc {
                                budget = budget.checked_sub(1).ok_or_else(|| {
                                    KernelError::run("loop iteration limit exceeded")
                                })?;
                            }
                            pc = t;
                            continue;
                        }
                    }
                    Op::JumpIfTrue { cond, target } => {
                        if self.regs[base + *cond as usize].as_bool() {
                            let t = *target as usize;
                            if t <= pc {
                                budget = budget.checked_sub(1).ok_or_else(|| {
                                    KernelError::run("loop iteration limit exceeded")
                                })?;
                            }
                            pc = t;
                            continue;
                        }
                    }
                    Op::Call {
                        func: callee,
                        dst,
                        args: args_base,
                        nargs,
                    } => {
                        if self.frames.len() >= self.max_call_depth {
                            return Err(KernelError::run(format!(
                                "call depth limit ({}) exceeded",
                                self.max_call_depth
                            )));
                        }
                        let callee_idx = *callee as usize;
                        let callee_fn = &unit.functions[callee_idx];
                        let new_base = base + func.num_regs as usize;
                        let need = new_base + callee_fn.num_regs as usize;
                        if self.regs.len() < need {
                            self.regs.resize(need, Value::Int(0));
                        }
                        for k in 0..*nargs as usize {
                            let v = self.regs[base + *args_base as usize + k];
                            self.regs[new_base + k] = v.convert_to(callee_fn.params[k].ty.scalar());
                        }
                        for (reg, value) in &callee_fn.const_pool {
                            self.regs[new_base + *reg as usize] = *value;
                        }
                        self.frames.push(Frame {
                            func: func_idx,
                            return_pc: pc + 1,
                            base,
                            dst: base + *dst as usize,
                        });
                        func_idx = callee_idx;
                        base = new_base;
                        pc = 0;
                        continue 'frame;
                    }
                    Op::CallBuiltin {
                        builtin,
                        dst,
                        args: args_base,
                        nargs,
                    } => {
                        let lo = base + *args_base as usize;
                        let vals = &self.regs[lo..lo + *nargs as usize];
                        let v = builtin.eval_math(vals);
                        self.regs[base + *dst as usize] = v;
                    }
                    Op::StencilGet {
                        dst,
                        args: args_base,
                    } => {
                        let dx = self.regs[base + *args_base as usize].as_i64();
                        let dy = self.regs[base + *args_base as usize + 1].as_i64();
                        let ctx = self
                            .stencil
                            .ok_or_else(|| KernelError::run(NO_STENCIL_CONTEXT))?;
                        let v = stencil_get(ctx, args, item.global_id, dx, dy)?;
                        self.regs[base + *dst as usize] = v;
                    }
                    Op::WorkItem { dst, builtin } => {
                        let v = match builtin {
                            Builtin::GetGlobalId => item.global_id,
                            Builtin::GetLocalId => item.local_id,
                            Builtin::GetGroupId => item.group_id,
                            Builtin::GetGlobalSize => item.global_size,
                            Builtin::GetLocalSize => item.local_size,
                            Builtin::GetNumGroups => {
                                item.global_size.div_ceil(item.local_size.max(1))
                            }
                            other => unreachable!("{other:?} is not a work-item function"),
                        };
                        self.regs[base + *dst as usize] = Value::Int(v as i32);
                    }
                    Op::Return { src } => {
                        let v =
                            self.regs[base + *src as usize].convert_to(func.return_type.scalar());
                        match self.frames.pop() {
                            None => return Ok(()),
                            Some(frame) => {
                                self.regs[frame.dst] = v;
                                func_idx = frame.func;
                                pc = frame.return_pc;
                                base = frame.base;
                                continue 'frame;
                            }
                        }
                    }
                    Op::ReturnVoid => match self.frames.pop() {
                        None => return Ok(()),
                        Some(frame) => {
                            // A void function call evaluates to int 0, like
                            // the interpreter.
                            self.regs[frame.dst] = Value::Int(0);
                            func_idx = frame.func;
                            pc = frame.return_pc;
                            base = frame.base;
                            continue 'frame;
                        }
                    },
                    Op::MissingReturn { name } => {
                        return Err(KernelError::run(format!(
                            "non-void function `{}` finished without returning a value",
                            unit.buffer_names[*name as usize]
                        )));
                    }
                    Op::OrphanFlow => {
                        return Err(KernelError::run(
                            "break/continue outside of a loop".to_string(),
                        ));
                    }
                    Op::FailUnbound { name } => {
                        return Err(KernelError::run(format!(
                            "variable `{}` is not bound",
                            unit.buffer_names[*name as usize]
                        )));
                    }
                    Op::Nop => {}
                }
                pc += 1;
            }
        }
    }
}

/// Shared buffer load/store path: resolves the interned name against the
/// launch's slot table and performs the access with the interpreter's exact
/// bounds-checking error messages. `store` of `None` loads, `Some(v)` stores.
fn buffer_access(
    unit: &CompiledUnit,
    slots: &[Option<u16>],
    args: &mut [ArgBinding<'_>],
    name: u16,
    idx: i64,
    store: Option<Value>,
) -> Result<Option<Value>, KernelError> {
    let name_str = || unit.buffer_names[name as usize].clone();
    if idx < 0 {
        return Err(KernelError::run(format!(
            "negative index {idx} into buffer `{}`",
            name_str()
        )));
    }
    let slot =
        slots.get(name as usize).copied().flatten().ok_or_else(|| {
            KernelError::run(format!("`{}` is not a buffer parameter", name_str()))
        })?;
    match &mut args[slot as usize] {
        ArgBinding::Buffer(view) => match store {
            None => view.load(idx as usize).map(Some).ok_or_else(|| {
                KernelError::run(format!(
                    "index {idx} out of bounds for buffer `{}` (len {})",
                    name_str(),
                    view.len()
                ))
            }),
            Some(v) => {
                let len = view.len();
                if view.store(idx as usize, v) {
                    Ok(None)
                } else {
                    Err(KernelError::run(format!(
                        "index {idx} out of bounds for buffer `{}` (len {len})",
                        name_str()
                    )))
                }
            }
        },
        ArgBinding::Scalar(_) => Err(KernelError::run(format!(
            "`{}` is bound to a scalar but used as a buffer",
            name_str()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn run_vm(src: &str, kernel: &str, data: &mut [f32], n: usize) -> ExecStats {
        let p = Program::build(src).unwrap();
        let k = p.kernel(kernel).unwrap();
        let mut args = vec![
            ArgBinding::buffer_f32(data),
            ArgBinding::Scalar(Value::Int(n as i32)),
        ];
        let mut vm = Vm::new(p.compiled());
        vm.bind_kernel(k.index(), &args).unwrap();
        for gid in 0..n {
            vm.run_item(WorkItem::linear(gid, n), &mut args).unwrap();
        }
        vm.stats()
    }

    #[test]
    fn vm_runs_a_simple_map_kernel() {
        let src = r#"
            __kernel void dbl(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = v[i] * 2.0f; }
            }
        "#;
        let mut data = vec![1.0f32, 2.0, 3.0, 4.0];
        let stats = run_vm(src, "dbl", &mut data, 4);
        assert_eq!(data, vec![2.0, 4.0, 6.0, 8.0]);
        assert!(stats.flops > 0.0 && stats.global_bytes >= 32.0 && stats.ops > 0.0);
    }

    #[test]
    fn vm_loop_guard_trips_on_infinite_loops() {
        let src = "__kernel void k(__global float* v, int n) { while (true) { v[0] = 1.0f; } }";
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 1];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(1)),
        ];
        let mut vm = Vm::new(p.compiled());
        vm.max_loop_iterations = 100;
        vm.bind_kernel(k.index(), &args).unwrap();
        let err = vm.run_item(WorkItem::linear(0, 1), &mut args).unwrap_err();
        assert!(err.message.contains("iteration limit"));
    }

    #[test]
    fn vm_reports_out_of_bounds_like_the_interpreter() {
        let src = "__kernel void k(__global float* v, int n) { v[n + 10] = 1.0f; }";
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 4];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(4)),
        ];
        let mut vm = Vm::new(p.compiled());
        let err = vm
            .run_kernel(k.index(), WorkItem::linear(0, 1), &mut args)
            .unwrap_err();
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn vm_recursion_guard_reports_depth() {
        // Unbounded recursion must be an error, not a native stack overflow.
        let src = r#"
            float f(float x) { return f(x + 1.0f); }
            __kernel void k(__global float* v, int n) { v[0] = f(0.0f); }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut data = vec![0.0f32; 1];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut data),
            ArgBinding::Scalar(Value::Int(1)),
        ];
        let mut vm = Vm::new(p.compiled());
        let err = vm
            .run_kernel(k.index(), WorkItem::linear(0, 1), &mut args)
            .unwrap_err();
        assert!(err.message.contains("call depth"));
    }
}
