//! Diagnostics: the error type shared by all phases of the kernel language.

use std::fmt;

use crate::token::Span;

/// The phase of the pipeline where an error was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Symbol resolution / type checking.
    Check,
    /// Kernel execution.
    Run,
    /// Program / kernel lookup.
    Lookup,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Run => "run",
            Phase::Lookup => "lookup",
        };
        f.write_str(s)
    }
}

/// An error produced while building or running a kernel program.
///
/// Mirrors the build log an OpenCL implementation would return from
/// `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelError {
    /// The pipeline phase that failed.
    pub phase: Phase,
    /// Human-readable description of the problem.
    pub message: String,
    /// Source location, if known.
    pub span: Option<Span>,
}

impl KernelError {
    /// Create an error for a given phase.
    pub fn new(phase: Phase, message: impl Into<String>, span: Option<Span>) -> Self {
        KernelError {
            phase,
            message: message.into(),
            span,
        }
    }

    /// Lexer error at `span`.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        Self::new(Phase::Lex, message, Some(span))
    }

    /// Parser error at `span`.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        Self::new(Phase::Parse, message, Some(span))
    }

    /// Type/semantic error at `span`.
    pub fn check(message: impl Into<String>, span: Span) -> Self {
        Self::new(Phase::Check, message, Some(span))
    }

    /// Runtime error (out-of-bounds access, bad argument binding, ...).
    pub fn run(message: impl Into<String>) -> Self {
        Self::new(Phase::Run, message, None)
    }

    /// "No kernel named ..." lookup error.
    pub fn no_such_kernel(name: &str) -> Self {
        Self::new(
            Phase::Lookup,
            format!("no __kernel function named `{name}` in program"),
            None,
        )
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{} error at {}: {}", self.phase, span, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_when_present() {
        let e = KernelError::parse("unexpected token", Span::new(4, 5, 2, 3));
        let s = e.to_string();
        assert!(s.contains("parse error"));
        assert!(s.contains("2:3"));
    }

    #[test]
    fn display_without_location() {
        let e = KernelError::run("index out of bounds");
        assert_eq!(e.to_string(), "run error: index out of bounds");
    }
}
