//! Print the bytecode lowering of a kernel program — a debugging aid for the
//! compile stage. Pass a path to a kernel-language source file, or run with
//! no arguments to dump the generated-map-kernel shape used by the engine
//! benchmarks.
//!
//! ```sh
//! cargo run -p skelcl_kernel --example dump_bytecode [path/to/kernel.cl]
//! ```

const DEFAULT_SRC: &str = r#"
    float func(float x) { return x * x * x - 2.0f * x + 1.0f; }
    __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
        int skelcl_gid = get_global_id(0);
        if (skelcl_gid < skelcl_n) {
            skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid]);
        }
    }
"#;

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEFAULT_SRC.to_string(),
    };
    let program = match skelcl_kernel::Program::build(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("build error: {e}");
            std::process::exit(1);
        }
    };
    let unit = program.compiled();
    println!("buffer names: {:?}", unit.buffer_names);
    for f in &unit.functions {
        println!(
            "\n== {}{} ({} registers, {} instructions)",
            if f.is_kernel { "__kernel " } else { "" },
            f.name,
            f.num_regs,
            f.code.len()
        );
        if !f.const_pool.is_empty() {
            println!("   const pool: {:?}", f.const_pool);
        }
        for (i, (op, c)) in f.code.iter().zip(&f.costs).enumerate() {
            println!(
                "{i:4}: {op:?}   [flops {} bytes {} ops {}]",
                c.flops, c.bytes, c.ops
            );
        }
    }
}
