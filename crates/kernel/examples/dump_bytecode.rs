//! Print the bytecode lowering of a kernel program, followed by each
//! kernel's native-tier compilation: the closure/block listing if the kernel
//! is native-eligible (or the ineligibility reason), and the tier decision
//! the auto heuristic would make at a few representative launch sizes. A
//! debugging aid for the compile stage and the native tier. Pass a path to a
//! kernel-language source file, or run with no arguments to dump the
//! generated-map-kernel shape used by the engine benchmarks.
//!
//! ```sh
//! cargo run -p skelcl_kernel --example dump_bytecode [path/to/kernel.cl]
//! ```

const DEFAULT_SRC: &str = r#"
    float func(float x) { return x * x * x - 2.0f * x + 1.0f; }
    __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
        int skelcl_gid = get_global_id(0);
        if (skelcl_gid < skelcl_n) {
            skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid]);
        }
    }
"#;

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEFAULT_SRC.to_string(),
    };
    let program = match skelcl_kernel::Program::build(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("build error: {e}");
            std::process::exit(1);
        }
    };
    let unit = program.compiled();
    println!("buffer names: {:?}", unit.buffer_names);
    for f in &unit.functions {
        println!(
            "\n== {}{} ({} registers, {} instructions)",
            if f.is_kernel { "__kernel " } else { "" },
            f.name,
            f.num_regs,
            f.code.len()
        );
        if !f.const_pool.is_empty() {
            println!("   const pool: {:?}", f.const_pool);
        }
        for (i, (op, c)) in f.code.iter().zip(&f.costs).enumerate() {
            println!(
                "{i:4}: {op:?}   [flops {} bytes {} ops {}]",
                c.flops, c.bytes, c.ops
            );
        }
    }

    // Native tier: per-kernel compilation outcome and tier decision.
    use skelcl_kernel::native::{
        auto_graduates, AUTO_MIN_LAUNCHES, AUTO_MIN_SIZE, AUTO_SIZE_IMMEDIATE,
    };
    for name in program.kernel_names() {
        let handle = program.kernel(&name).expect("kernel exists");
        let outcome = program.native_outcome(&handle);
        println!("\n== native tier: {name}");
        match &outcome.result {
            Ok(nk) => {
                println!(
                    "   compiled in {} ns: {} block(s)",
                    outcome.compile_ns,
                    nk.block_count()
                );
                for line in nk.listing().lines() {
                    println!("   {line}");
                }
                println!(
                    "   auto decision: native from {AUTO_SIZE_IMMEDIATE} items, or after \
                     {AUTO_MIN_LAUNCHES} launches at {AUTO_MIN_SIZE}+ items"
                );
                for (prior, size) in [(0u64, 64usize), (0, AUTO_SIZE_IMMEDIATE), (32, 1024)] {
                    let tier = if auto_graduates(prior, size) {
                        "native"
                    } else {
                        "batched VM"
                    };
                    println!("     launch #{prior} of {size} item(s) -> {tier}");
                }
            }
            Err(reason) => {
                println!("   ineligible: {reason}");
                println!("   every launch runs on the batched VM (or scalar fallback)");
            }
        }
    }
}
