//! Differential property tests: the bytecode VM against the tree-walking
//! interpreter oracle.
//!
//! Every kernel here runs through **both** engines on identical inputs; the
//! suite asserts bit-identical output buffers AND identical measured
//! [`ExecStats`] (flops, global-memory bytes, op counts). Errors must agree
//! too — same failure, same message. Coverage: control-flow edge cases
//! (for/while/break/continue, nested if, ternaries), all four buffer element
//! types (f32/f64/i32/u32), compound assignment and increment quirks,
//! helper-function calls, short-circuit logic, and division by zero.

use proptest::prelude::*;

use skelcl_kernel::interp::{ArgBinding, ExecStats};
use skelcl_kernel::value::Value;
use skelcl_kernel::Program;

/// Run `kernel` over `global_size` items through both engines on identical
/// copies of the f32 buffers; return both outcomes for comparison.
type Outcome<T> = Result<(Vec<Vec<T>>, ExecStats), String>;

fn run_both_f32(
    src: &str,
    kernel: &str,
    buffers: &[Vec<f32>],
    scalars: &[Value],
    global_size: usize,
) -> (Outcome<f32>, Outcome<f32>) {
    let p = Program::build(src).expect("test kernels must build");
    let k = p.kernel(kernel).expect("kernel exists");

    let run = |use_vm: bool| -> Outcome<f32> {
        let mut bufs: Vec<Vec<f32>> = buffers.to_vec();
        let mut args: Vec<ArgBinding<'_>> = Vec::new();
        for b in &mut bufs {
            args.push(ArgBinding::Buffer(skelcl_kernel::interp::BufferView::F32(
                b,
            )));
        }
        for s in scalars {
            args.push(ArgBinding::Scalar(*s));
        }
        let stats = if use_vm {
            p.run_ndrange_measured(&k, global_size, &mut args)
        } else {
            p.run_ndrange_measured_interp(&k, global_size, &mut args)
        };
        drop(args);
        match stats {
            Ok(s) => Ok((bufs, s)),
            Err(e) => Err(e.message),
        }
    };
    (run(true), run(false))
}

fn assert_engines_agree_f32(
    src: &str,
    kernel: &str,
    buffers: &[Vec<f32>],
    scalars: &[Value],
    global_size: usize,
) {
    let (vm, oracle) = run_both_f32(src, kernel, buffers, scalars, global_size);
    match (vm, oracle) {
        (Ok((vb, vs)), Ok((ob, os))) => {
            for (i, (v, o)) in vb.iter().zip(&ob).enumerate() {
                let vbits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
                let obits: Vec<u32> = o.iter().map(|x| x.to_bits()).collect();
                assert_eq!(vbits, obits, "buffer {i} diverged for kernel:\n{src}");
            }
            assert_eq!(vs, os, "ExecStats diverged for kernel:\n{src}");
        }
        (Err(ve), Err(oe)) => {
            assert_eq!(ve, oe, "error messages diverged for kernel:\n{src}");
        }
        (vm, oracle) => panic!(
            "engines disagree on success for kernel:\n{src}\nvm: {:?}\noracle: {:?}",
            vm.map(|(_, s)| s),
            oracle.map(|(_, s)| s)
        ),
    }
}

/// Typed variant covering the integer buffer types.
macro_rules! run_both_typed {
    ($name:ident, $elem:ty, $view:ident) => {
        fn $name(
            src: &str,
            kernel: &str,
            buffers: &[Vec<$elem>],
            scalars: &[Value],
            global_size: usize,
        ) {
            let p = Program::build(src).expect("test kernels must build");
            let k = p.kernel(kernel).expect("kernel exists");
            let run = |use_vm: bool| -> Outcome<$elem> {
                let mut bufs: Vec<Vec<$elem>> = buffers.to_vec();
                let mut args: Vec<ArgBinding<'_>> = Vec::new();
                for b in &mut bufs {
                    args.push(ArgBinding::Buffer(
                        skelcl_kernel::interp::BufferView::$view(b),
                    ));
                }
                for s in scalars {
                    args.push(ArgBinding::Scalar(*s));
                }
                let stats = if use_vm {
                    p.run_ndrange_measured(&k, global_size, &mut args)
                } else {
                    p.run_ndrange_measured_interp(&k, global_size, &mut args)
                };
                drop(args);
                match stats {
                    Ok(s) => Ok((bufs, s)),
                    Err(e) => Err(e.message),
                }
            };
            let vm = run(true);
            let oracle = run(false);
            match (vm, oracle) {
                (Ok((vb, vs)), Ok((ob, os))) => {
                    assert_eq!(vb, ob, "buffers diverged for kernel:\n{src}");
                    assert_eq!(vs, os, "ExecStats diverged for kernel:\n{src}");
                }
                (Err(ve), Err(oe)) => {
                    assert_eq!(ve, oe, "errors diverged for kernel:\n{src}")
                }
                (vm, oracle) => panic!(
                    "engines disagree on success for kernel:\n{src}\nvm err: {:?}\noracle err: {:?}",
                    vm.err(),
                    oracle.err()
                ),
            }
        }
    };
}

run_both_typed!(assert_engines_agree_i32, i32, I32);
run_both_typed!(assert_engines_agree_u32, u32, U32);
run_both_typed!(assert_engines_agree_f64, f64, F64);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn for_loops_with_break_and_continue(
        data in prop::collection::vec(-100.0f32..100.0, 1..48),
        limit in 0i32..40,
        skip in 1i32..7,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, int limit, int skip) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i < n; i++) {
                    if (i % skip == 0) { continue; }
                    if (i > limit) { break; }
                    acc += v[i] * 0.5f;
                }
                v[gid] = acc;
            }
        "#;
        let n = data.len();
        assert_engines_agree_f32(
            src, "k", &[data],
            &[Value::Int(n as i32), Value::Int(limit), Value::Int(skip)],
            n,
        );
    }

    #[test]
    fn while_loops_with_runtime_bounds(
        seed in 1u32..1000,
        iters in 0i32..60,
        items in 1usize..24,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, int iters) {
                int gid = get_global_id(0);
                float acc = v[gid];
                int i = 0;
                while (i < iters) {
                    acc = acc * 1.001f + 0.25f;
                    i++;
                    if (acc > 1.0e6f) { break; }
                }
                v[gid] = acc;
            }
        "#;
        let data: Vec<f32> = (0..items).map(|i| (seed as f32) * 0.1 + i as f32).collect();
        assert_engines_agree_f32(
            src, "k", &[data],
            &[Value::Int(items as i32), Value::Int(iters)],
            items,
        );
    }

    #[test]
    fn nested_ifs_ternaries_and_short_circuits(
        data in prop::collection::vec(-50.0f32..50.0, 1..40),
        t in -10.0f32..10.0,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, float t) {
                int gid = get_global_id(0);
                float x = v[gid];
                if (x > t && x < t + 20.0f) {
                    if (x > 0.0f || t < -5.0f) {
                        x = x > 10.0f ? x - 10.0f : -x;
                    } else {
                        x += 1.0f;
                    }
                } else {
                    x = !(x > t) ? t : x * 0.5f;
                }
                v[gid] = x;
            }
        "#;
        let n = data.len();
        assert_engines_agree_f32(
            src, "k", &[data],
            &[Value::Int(n as i32), Value::Float(t)],
            n,
        );
    }

    #[test]
    fn i32_arithmetic_with_division_and_modulo(
        data in prop::collection::vec(-1000i32..1000, 1..40),
        d in -8i32..8,
    ) {
        // d may be zero: both engines must report the identical
        // division-by-zero error; otherwise identical results.
        let src = r#"
            __kernel void k(__global int* v, int n, int d) {
                int gid = get_global_id(0);
                int x = v[gid];
                v[gid] = x * 3 - x / d + x % d;
            }
        "#;
        let n = data.len();
        assert_engines_agree_i32(
            src, "k", &[data],
            &[Value::Int(n as i32), Value::Int(d)],
            n,
        );
    }

    #[test]
    fn u32_arithmetic_and_unsigned_conversions(
        data in prop::collection::vec(0u32..100_000, 1..32),
        s in 0u32..17,
    ) {
        let src = r#"
            __kernel void k(__global uint* v, int n, uint s) {
                int gid = get_global_id(0);
                uint x = v[gid];
                uint y = x + s * 3u;
                if (y % 2u == 0u) { y = y / 2u; } else { y = y * 3u + 1u; }
                v[gid] = y;
            }
        "#;
        let n = data.len();
        assert_engines_agree_u32(
            src, "k", &[data],
            &[Value::Int(n as i32), Value::Uint(s)],
            n,
        );
    }

    #[test]
    fn f64_math_builtins_and_casts(
        data in prop::collection::vec(0.01f64..100.0, 1..24),
    ) {
        let src = r#"
            __kernel void k(__global double* v, int n) {
                int gid = get_global_id(0);
                double x = v[gid];
                double y = sqrt(x) + exp(x * 0.001f) + pow(x, 0.5f);
                int trunc = (int) y;
                v[gid] = y - (float) trunc + fmin(x, 10.0f);
            }
        "#;
        let n = data.len();
        assert_engines_agree_f64(src, "k", &[data], &[Value::Int(n as i32)], n);
    }

    #[test]
    fn compound_assignment_and_incdec_quirks(
        data in prop::collection::vec(-20.0f32..20.0, 2..32),
    ) {
        // Covers: compound assignment to buffer elements (the interpreter
        // evaluates the index twice), pre/post increment as values, and
        // assignment-as-expression yielding the unconverted value.
        let src = r#"
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                int i = 0;
                v[gid] *= 2.0f;
                v[gid] += v[(gid + 1) % n];
                float a = i++;
                float b = ++i;
                int c = 0;
                float d = (c = 7) + a + b;
                v[gid] -= d * 0.125f;
            }
        "#;
        let n = data.len();
        assert_engines_agree_f32(src, "k", &[data], &[Value::Int(n as i32)], n);
    }

    #[test]
    fn helper_functions_and_generated_skeleton_shapes(
        data in prop::collection::vec(-100.0f32..100.0, 1..48),
        a in -4.0f32..4.0,
    ) {
        // The exact shape kernelgen emits for a map skeleton with helpers.
        let src = r#"
            float sq(float x) { return x * x; }
            float func(float x, float a) { return sq(x) * a + sq(a); }
            __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n, float skelcl_arg_a) {
                int skelcl_gid = get_global_id(0);
                if (skelcl_gid < skelcl_n) {
                    skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid], skelcl_arg_a);
                }
            }
        "#;
        let n = data.len();
        let out = vec![0.0f32; n];
        assert_engines_agree_f32(
            src, "SKELCL_MAP", &[data, out],
            &[Value::Int(n as i32), Value::Float(a)],
            n,
        );
    }

    #[test]
    fn sequential_reduce_kernel_matches(
        data in prop::collection::vec(-10.0f32..10.0, 1..64),
    ) {
        // The generated reduce kernel shape: one work-item folds the buffer.
        let src = r#"
            float func(float a, float b) { return a + b * 0.5f; }
            __kernel void SKELCL_REDUCE(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
                float skelcl_acc = skelcl_in[0];
                for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {
                    skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]);
                }
                skelcl_out[0] = skelcl_acc;
            }
        "#;
        let n = data.len();
        let out = vec![0.0f32; 1];
        assert_engines_agree_f32(
            src, "SKELCL_REDUCE", &[data, out],
            &[Value::Int(n as i32)],
            1,
        );
    }

    #[test]
    fn data_dependent_loops_have_identical_measured_stats(
        items in 1usize..32,
    ) {
        // Triangular work: item `gid` runs `gid+1` iterations, so the stats
        // are strongly data dependent — exactly what the per-instruction
        // cost attribution must reproduce.
        let src = r#"
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i <= gid; i++) { acc += sqrt(acc + i) * 0.1f; }
                v[gid] = acc;
            }
        "#;
        let data = vec![0.0f32; items];
        assert_engines_agree_f32(src, "k", &[data], &[Value::Int(items as i32)], items);
    }

    #[test]
    fn out_of_bounds_errors_agree(
        idx in 8i32..64,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, int idx) {
                v[idx] = 1.0f;
            }
        "#;
        assert_engines_agree_f32(
            src, "k", &[vec![0.0f32; 4]],
            &[Value::Int(4), Value::Int(idx)],
            1,
        );
    }
}

/// The kernel shape `kernelgen` emits for a MapOverlap (stencil) skeleton:
/// the reserved `skelcl_stencil_*` parameters bind the context of the
/// `get(dx, dy)` neighbour-access builtin.
fn stencil_kernel(udf: &str) -> String {
    format!(
        "{udf}\n\
         __kernel void SKELCL_MAP_OVERLAP(__global float* skelcl_stencil_in, __global float* skelcl_out,\n\
             int skelcl_n, int skelcl_stencil_w, int skelcl_stencil_halo,\n\
             int skelcl_stencil_policy, float skelcl_stencil_oob) {{\n\
             int skelcl_gid = get_global_id(0);\n\
             if (skelcl_gid < skelcl_n) {{\n\
                 int skelcl_row = skelcl_gid / skelcl_stencil_w;\n\
                 int skelcl_col = skelcl_gid % skelcl_stencil_w;\n\
                 skelcl_out[skelcl_gid] = func(skelcl_stencil_in[(skelcl_row + skelcl_stencil_halo) * skelcl_stencil_w + skelcl_col]);\n\
             }}\n\
         }}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stencil_neighbour_access_agrees_across_engines(
        rows in 1usize..6,
        w in 1usize..8,
        halo in 0usize..3,
        policy in 0i32..3,
        oob in -5.0f32..5.0,
        seed in 0u32..1000,
    ) {
        // A 5-point probe clamped to the available halo, plus corner taps.
        let dy = halo.min(1) as i32;
        let udf = format!(
            "float func(float x) {{ return x + 0.5f * (get(-1, 0) + get(1, 0) + get(0, -{dy}) + get(0, {dy})) + 0.25f * get(-2, {dy}); }}"
        );
        let src = stencil_kernel(&udf);
        let n = rows * w;
        let padded = (rows + 2 * halo) * w;
        let input: Vec<f32> = (0..padded).map(|i| ((i as u32 * 37 + seed) % 101) as f32 * 0.5 - 20.0).collect();
        let out = vec![0.0f32; n];
        assert_engines_agree_f32(
            &src, "SKELCL_MAP_OVERLAP", &[input, out],
            &[
                Value::Int(n as i32),
                Value::Int(w as i32),
                Value::Int(halo as i32),
                Value::Int(policy),
                Value::Float(oob),
            ],
            n,
        );
    }

    #[test]
    fn stencil_row_accesses_beyond_the_halo_error_identically(
        rows in 1usize..5,
        w in 1usize..6,
        halo in 0usize..3,
        dy in -4i32..5,
    ) {
        // `dy` may exceed the declared halo: both engines must report the
        // identical "exceeds the declared halo" error (and identical stats
        // up to the failure); valid offsets must agree bit for bit.
        let udf = "float func(float x, int dx, int dy) { return x * 0.5f + get(dx, dy); }";
        let src = format!(
            "{udf}\n\
             __kernel void SKELCL_MAP_OVERLAP(__global float* skelcl_stencil_in, __global float* skelcl_out,\n\
                 int skelcl_n, int skelcl_stencil_w, int skelcl_stencil_halo,\n\
                 int skelcl_stencil_policy, float skelcl_stencil_oob, int skelcl_arg_dx, int skelcl_arg_dy) {{\n\
                 int skelcl_gid = get_global_id(0);\n\
                 if (skelcl_gid < skelcl_n) {{\n\
                     skelcl_out[skelcl_gid] = func(skelcl_stencil_in[skelcl_gid], skelcl_arg_dx, skelcl_arg_dy);\n\
                 }}\n\
             }}\n"
        );
        let n = rows * w;
        let padded = (rows + 2 * halo) * w;
        let input: Vec<f32> = (0..padded).map(|i| i as f32 * 0.25).collect();
        let out = vec![0.0f32; n];
        assert_engines_agree_f32(
            &src, "SKELCL_MAP_OVERLAP", &[input, out],
            &[
                Value::Int(n as i32),
                Value::Int(w as i32),
                Value::Int(halo as i32),
                Value::Int(0),
                Value::Float(0.0),
                Value::Int(1),
                Value::Int(dy),
            ],
            n,
        );
    }
}

#[test]
fn get_outside_a_stencil_kernel_is_the_same_runtime_error() {
    let src = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            v[gid] = get(0, 0);
        }
    "#;
    assert_engines_agree_f32(src, "k", &[vec![0.0f32; 3]], &[Value::Int(3)], 3);
}

#[test]
fn stencil_column_policies_differ_only_at_the_edges() {
    // Sanity on the semantics themselves (not just engine agreement): with a
    // 1-column probe to the left, clamp repeats the edge, wrap pulls the last
    // column, constant yields the oob value.
    let src = stencil_kernel("float func(float x) { return get(-1, 0); }");
    let p = Program::build(&src).unwrap();
    let k = p.kernel("SKELCL_MAP_OVERLAP").unwrap();
    let run = |policy: i32, oob: f32| -> Vec<f32> {
        let mut input = vec![10.0f32, 20.0, 30.0]; // 1 row, 3 cols, halo 0
        let mut out = vec![0.0f32; 3];
        let mut args = vec![
            ArgBinding::Buffer(skelcl_kernel::interp::BufferView::F32(&mut input)),
            ArgBinding::Buffer(skelcl_kernel::interp::BufferView::F32(&mut out)),
            ArgBinding::Scalar(Value::Int(3)),
            ArgBinding::Scalar(Value::Int(3)),
            ArgBinding::Scalar(Value::Int(0)),
            ArgBinding::Scalar(Value::Int(policy)),
            ArgBinding::Scalar(Value::Float(oob)),
        ];
        p.run_ndrange(&k, 3, &mut args).unwrap();
        drop(args);
        out
    };
    assert_eq!(
        run(0, 0.0),
        vec![10.0, 10.0, 20.0],
        "clamp repeats the edge"
    );
    assert_eq!(run(1, 0.0), vec![30.0, 10.0, 20.0], "wrap is cyclic");
    assert_eq!(run(2, -1.0), vec![-1.0, 10.0, 20.0], "constant fills");
}

#[test]
fn break_and_continue_at_kernel_top_level() {
    // A kernel-level `break` outside any loop ends the work-item in both
    // engines (the interpreter unwinds the block stack and stops).
    let src = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            v[gid] = 1.0f;
            if (gid > 0) { break; }
            v[gid] = 2.0f;
        }
    "#;
    assert_engines_agree_f32(src, "k", &[vec![0.0f32; 4]], &[Value::Int(4)], 4);
}

#[test]
fn orphan_break_in_helper_is_the_same_runtime_error() {
    let src = r#"
        float f(float x) { break; return x; }
        __kernel void k(__global float* v, int n) { v[0] = f(v[0]); }
    "#;
    assert_engines_agree_f32(src, "k", &[vec![1.0f32; 2]], &[Value::Int(2)], 1);
}

#[test]
fn void_helper_call_value_and_return_conversion() {
    let src = r#"
        int half_int(float x) { return x / 2.0f; }
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            v[gid] = half_int(v[gid]);
        }
    "#;
    assert_engines_agree_f32(src, "k", &[vec![1.0, 3.0, 9.5, -7.0]], &[Value::Int(4)], 4);
}

#[test]
fn negative_index_errors_agree() {
    let src = r#"
        __kernel void k(__global float* v, int n, int idx) { v[idx] = 0.5f; }
    "#;
    assert_engines_agree_f32(
        src,
        "k",
        &[vec![0.0f32; 4]],
        &[Value::Int(4), Value::Int(-3)],
        1,
    );
}

#[test]
fn work_item_geometry_functions_agree() {
    let src = r#"
        __kernel void k(__global int* v, int n) {
            int gid = get_global_id(0);
            v[gid] = gid * 1000000 + get_local_id(0) * 10000
                   + get_group_id(0) * 1000 + get_global_size(0) * 10
                   + get_local_size(0) + get_num_groups(0);
        }
    "#;
    assert_engines_agree_i32(src, "k", &[vec![0i32; 6]], &[Value::Int(6)], 6);
}

#[test]
fn buffer_parameter_read_as_value_is_the_same_error() {
    let src = "__kernel void k(__global float* v, int n) { float x = v + 0.0f; v[0] = x; }";
    // Sema actually rejects binary ops on pointers, so use a bare statement.
    let src2 = "__kernel void k(__global float* v, int n) { v; v[0] = 1.0f; }";
    let _ = src;
    assert_engines_agree_f32(src2, "k", &[vec![0.0f32; 2]], &[Value::Int(2)], 1);
}

// ---------------------------------------------------------------------------
// Lane-batched accumulation vs the oracle's per-item totals
// ---------------------------------------------------------------------------
//
// `Program::run_ndrange_measured` executes work-items in lockstep batches and
// accumulates `ExecStats` once per batch (`cost × active_lanes`). These tests
// pin the accumulation identity the batched path must uphold: the per-batch
// totals equal the interpreter oracle's per-item totals *exactly* (all cost
// constants are dyadic rationals, so no summation order may differ), at every
// batch-boundary shape — full batches, ragged tails, single-item launches —
// and through the early-exit lane mask.

/// Oracle totals accumulated strictly one item at a time.
fn oracle_per_item_totals(
    p: &Program,
    k: &skelcl_kernel::KernelHandle,
    buffers: &mut [Vec<f32>],
    scalars: &[Value],
    global_size: usize,
) -> ExecStats {
    let mut args: Vec<ArgBinding<'_>> = Vec::new();
    for b in buffers.iter_mut() {
        args.push(ArgBinding::Buffer(skelcl_kernel::interp::BufferView::F32(
            b,
        )));
    }
    for s in scalars {
        args.push(ArgBinding::Scalar(*s));
    }
    let mut total = ExecStats::default();
    for gid in 0..global_size {
        // One-item NDRanges keep the oracle's accumulation strictly
        // per item while preserving the launch geometry.
        let stats = p
            .run_ndrange_measured_interp_item(k, gid, global_size, &mut args)
            .expect("oracle item");
        total.flops += stats.flops;
        total.global_bytes += stats.global_bytes;
        total.ops += stats.ops;
    }
    total
}

/// The guarded map shape at sizes straddling every batch boundary: the
/// batched engine's per-batch totals must equal the oracle's per-item sums
/// bit for bit, and so must the output buffers.
#[test]
fn per_batch_totals_equal_oracle_per_item_totals_across_batch_shapes() {
    let src = r#"
        float func(float x, float a) { return x * a + 0.5f; }
        __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n, float skelcl_arg_a) {
            int skelcl_gid = get_global_id(0);
            if (skelcl_gid < skelcl_n) {
                skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid], skelcl_arg_a);
            }
        }
    "#;
    let p = Program::build(src).unwrap();
    let k = p.kernel("SKELCL_MAP").unwrap();
    let batch = skelcl_kernel::vm::BATCH_LANES;
    for n in [1, 2, batch - 1, batch, batch + 1, 3 * batch, 3 * batch + 7] {
        let input: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 3.0).collect();
        let scalars = [Value::Int(n as i32), Value::Float(1.5)];

        let mut oracle_bufs = vec![input.clone(), vec![0.0f32; n]];
        let oracle = oracle_per_item_totals(&p, &k, &mut oracle_bufs, &scalars, n);

        let mut bufs = vec![input.clone(), vec![0.0f32; n]];
        let mut args: Vec<ArgBinding<'_>> = Vec::new();
        for b in &mut bufs {
            args.push(ArgBinding::Buffer(skelcl_kernel::interp::BufferView::F32(
                b,
            )));
        }
        for s in &scalars {
            args.push(ArgBinding::Scalar(*s));
        }
        let batched = p.run_ndrange_measured(&k, n, &mut args).unwrap();
        drop(args);

        assert_eq!(batched, oracle, "per-batch totals diverged at n = {n}");
        assert_eq!(bufs, oracle_bufs, "results diverged at n = {n}");
    }
}

/// A launch whose guard masks out a *strict subset* of the final batch's
/// lanes (gid ≥ n works on padding): the exit-chain charging of the lane
/// mask must reproduce the oracle's costs for the masked lanes exactly.
#[test]
fn lane_mask_exit_charging_matches_the_oracle() {
    let src = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            if (gid < n) { v[gid] = v[gid] * 2.0f + 1.0f; }
        }
    "#;
    let p = Program::build(src).unwrap();
    let k = p.kernel("k").unwrap();
    let batch = skelcl_kernel::vm::BATCH_LANES;
    // Launch over more items than the buffer holds valid elements: the tail
    // lanes take the guard's exit path inside a live batch.
    for (len, launch) in [(10, 16), (batch + 5, batch + batch / 2), (3, 3 * batch)] {
        let input: Vec<f32> = (0..launch).map(|i| i as f32).collect();
        let scalars = [Value::Int(len as i32)];

        let mut oracle_bufs = vec![input.clone()];
        let oracle = oracle_per_item_totals(&p, &k, &mut oracle_bufs, &scalars, launch);

        let mut bufs = vec![input.clone()];
        let mut args = vec![
            ArgBinding::Buffer(skelcl_kernel::interp::BufferView::F32(&mut bufs[0])),
            ArgBinding::Scalar(scalars[0]),
        ];
        let batched = p.run_ndrange_measured(&k, launch, &mut args).unwrap();
        drop(args);

        assert_eq!(
            batched, oracle,
            "masked-lane charging diverged for len={len} launch={launch}"
        );
        assert_eq!(bufs, oracle_bufs, "results diverged for len={len}");
    }
}

/// Kernels the lockstep model must *refuse* to batch — cross-lane hazards and
/// data-dependent divergence — still match the oracle exactly through the
/// rollback-and-replay path (the hazard test reads a neighbour it also
/// writes; the divergence test runs gid-dependent loop counts).
#[test]
fn rollback_and_replay_paths_match_the_oracle() {
    let hazard = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            v[gid] = v[gid] * 2.0f;
            v[gid] += v[(gid + 1) % n];
        }
    "#;
    let divergent = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            float acc = 0.0f;
            for (int i = 0; i <= gid % 7; i++) { acc += v[gid] * 0.5f; }
            v[gid] = acc;
        }
    "#;
    let batch = skelcl_kernel::vm::BATCH_LANES;
    for src in [hazard, divergent] {
        let n = 2 * batch + 3;
        let data: Vec<f32> = (0..n).map(|i| (i % 13) as f32 - 6.0).collect();
        assert_engines_agree_f32(src, "k", &[data], &[Value::Int(n as i32)], n);
    }
}

/// The scalar VM entry point and the batched default must agree with each
/// other (and the oracle) on a data-dependent workload.
#[test]
fn scalar_and_batched_vm_paths_are_identical() {
    let src = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            float acc = v[gid];
            for (int i = 0; i < gid % 5 + 1; i++) { acc = acc * 1.5f - 0.25f; }
            v[gid] = acc;
        }
    "#;
    let p = Program::build(src).unwrap();
    let k = p.kernel("k").unwrap();
    let n = 150;
    let input: Vec<f32> = (0..n).map(|i| i as f32 * 0.125).collect();

    let mut a = input.clone();
    let mut args = vec![
        ArgBinding::buffer_f32(&mut a),
        ArgBinding::Scalar(Value::Int(n as i32)),
    ];
    let sa = p.run_ndrange_measured(&k, n, &mut args).unwrap();
    drop(args);

    let mut b = input.clone();
    let mut args = vec![
        ArgBinding::buffer_f32(&mut b),
        ArgBinding::Scalar(Value::Int(n as i32)),
    ];
    let sb = p.run_ndrange_measured_scalar(&k, n, &mut args).unwrap();
    drop(args);

    assert_eq!(sa, sb, "batched and scalar stats must be identical");
    let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
    let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
    assert_eq!(ab, bb, "batched and scalar results must be identical");
}
