//! Property-based tests of the kernel language: the interpreter agrees with
//! a native Rust reference on arbitrary inputs, the measured execution
//! statistics behave like real counters, and the front end never panics on
//! malformed input.

use proptest::prelude::*;

use skelcl_kernel::interp::ArgBinding;
use skelcl_kernel::value::Value;
use skelcl_kernel::Program;

const SAXPY: &str = r#"
    float func(float x, float y, float a) { return a * x + y; }
    __kernel void saxpy(__global float* xs, __global float* ys,
                        __global float* out, int n, float a) {
        int gid = get_global_id(0);
        if (gid < n) { out[gid] = func(xs[gid], ys[gid], a); }
    }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn saxpy_kernel_matches_the_rust_reference(
        data in prop::collection::vec((-1.0e3f32..1.0e3, -1.0e3f32..1.0e3), 1..128),
        a in -100.0f32..100.0,
    ) {
        let p = Program::build(SAXPY).unwrap();
        let k = p.kernel("saxpy").unwrap();
        let mut xs: Vec<f32> = data.iter().map(|(x, _)| *x).collect();
        let mut ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
        let n = xs.len();
        let expected: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| a * x + y).collect();
        let mut out = vec![0.0f32; n];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut xs),
            ArgBinding::buffer_f32(&mut ys),
            ArgBinding::buffer_f32(&mut out),
            ArgBinding::Scalar(Value::Int(n as i32)),
            ArgBinding::Scalar(Value::Float(a)),
        ];
        p.run_ndrange(&k, n, &mut args).unwrap();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn integer_polynomial_kernel_matches_the_rust_reference(
        data in prop::collection::vec(-1000i32..1000, 1..100),
        c in -50i32..50,
    ) {
        let src = r#"
            __kernel void poly(__global int* v, int n, int c) {
                int gid = get_global_id(0);
                if (gid < n) {
                    int x = v[gid];
                    v[gid] = x * x + c * x - 7;
                }
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("poly").unwrap();
        let mut buf = data.clone();
        let n = buf.len();
        let mut args = vec![
            ArgBinding::buffer_i32(&mut buf),
            ArgBinding::Scalar(Value::Int(n as i32)),
            ArgBinding::Scalar(Value::Int(c)),
        ];
        p.run_ndrange(&k, n, &mut args).unwrap();
        let expected: Vec<i32> = data
            .iter()
            .map(|&x| x.wrapping_mul(x).wrapping_add(c.wrapping_mul(x)).wrapping_sub(7))
            .collect();
        prop_assert_eq!(buf, expected);
    }

    #[test]
    fn measured_flops_scale_with_the_runtime_loop_bound(
        iters in 1i32..200,
        items in 1usize..32,
    ) {
        // A loop whose bound arrives as a kernel argument: the measured
        // statistics must grow when the bound doubles — the static estimate
        // cannot know this.
        let src = r#"
            __kernel void spin(__global float* v, int n, int iters) {
                int gid = get_global_id(0);
                float acc = v[gid];
                for (int i = 0; i < iters; i++) { acc = acc * 1.001f + 1.0f; }
                v[gid] = acc;
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("spin").unwrap();
        let run = |iters: i32| {
            let mut buf = vec![1.0f32; items];
            let mut args = vec![
                ArgBinding::buffer_f32(&mut buf),
                ArgBinding::Scalar(Value::Int(items as i32)),
                ArgBinding::Scalar(Value::Int(iters)),
            ];
            p.run_ndrange_measured(&k, items, &mut args).unwrap()
        };
        let single = run(iters);
        let double = run(iters * 2);
        prop_assert!(double.flops > single.flops);
        prop_assert!(single.flops >= iters as f64 * items as f64);
        // Memory traffic does not depend on the loop bound: one load and one
        // store of 4 bytes per work-item.
        prop_assert!((single.global_bytes - 8.0 * items as f64).abs() < 1e-9);
        prop_assert!((double.global_bytes - single.global_bytes).abs() < 1e-9);
    }

    #[test]
    fn static_estimate_scales_with_literal_loop_bounds(n in 1u32..500) {
        let src = format!(
            "float f(float x) {{ float acc = x; for (int i = 0; i < {n}; i++) {{ acc += x * x; }} return acc; }}"
        );
        let tokens = skelcl_kernel::lexer::lex(&src).unwrap();
        let unit = skelcl_kernel::parser::parse(&tokens, &src).unwrap();
        let unit = skelcl_kernel::sema::check(unit).unwrap();
        let est = skelcl_kernel::cost::estimate_named(&unit, "f").unwrap();
        // At least two flops per iteration.
        prop_assert!(est.flops >= 2.0 * n as f64);
        prop_assert!(est.flops.is_finite() && est.global_bytes >= 0.0 && est.ops > 0.0);
    }

    #[test]
    fn front_end_never_panics_on_arbitrary_input(src in "[ -~\n]{0,200}") {
        // Arbitrary printable text either lexes+parses+checks or reports an
        // error; it must never panic.
        let _ = Program::build(&src);
    }

    #[test]
    fn out_of_bounds_indices_are_always_errors(idx in 4i32..1000) {
        let src = r#"
            __kernel void k(__global float* v, int n, int idx) {
                v[idx] = 1.0f;
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("k").unwrap();
        let mut buf = vec![0.0f32; 4];
        let mut args = vec![
            ArgBinding::buffer_f32(&mut buf),
            ArgBinding::Scalar(Value::Int(4)),
            ArgBinding::Scalar(Value::Int(idx)),
        ];
        let err = p.run_ndrange(&k, 1, &mut args).unwrap_err();
        prop_assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn work_item_functions_report_consistent_geometry(global in 1usize..256) {
        // get_global_id is unique per item and < get_global_size.
        let src = r#"
            __kernel void ids(__global int* out, int n) {
                int gid = get_global_id(0);
                if (gid < n) { out[gid] = gid * 1000 + get_global_size(0); }
            }
        "#;
        let p = Program::build(src).unwrap();
        let k = p.kernel("ids").unwrap();
        let mut out = vec![0i32; global];
        let mut args = vec![
            ArgBinding::buffer_i32(&mut out),
            ArgBinding::Scalar(Value::Int(global as i32)),
        ];
        p.run_ndrange(&k, global, &mut args).unwrap();
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, (i * 1000 + global) as i32);
        }
    }
}

#[test]
fn builtin_math_functions_match_rust_on_sample_points() {
    let src = r#"
        __kernel void m(__global float* v, int n) {
            int gid = get_global_id(0);
            v[gid] = sqrt(fabs(v[gid])) + exp(v[gid] * 0.01f) + fmax(v[gid], 0.5f);
        }
    "#;
    let p = Program::build(src).unwrap();
    let k = p.kernel("m").unwrap();
    let inputs: Vec<f32> = vec![-4.0, -1.0, 0.0, 0.25, 1.0, 2.0, 9.0, 100.0];
    let mut buf = inputs.clone();
    let n = buf.len();
    let mut args = vec![
        ArgBinding::buffer_f32(&mut buf),
        ArgBinding::Scalar(Value::Int(n as i32)),
    ];
    p.run_ndrange(&k, n, &mut args).unwrap();
    for (x, got) in inputs.iter().zip(&buf) {
        let want = x.abs().sqrt() + (x * 0.01).exp() + x.max(0.5);
        assert!((got - want).abs() < 1e-4, "x = {x}: {got} vs {want}");
    }
}
