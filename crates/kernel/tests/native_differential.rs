//! Differential tests for the native execution tier: native ≡ batched VM ≡
//! scalar VM ≡ interpreter, on results (bit for bit), measured [`ExecStats`]
//! and error messages, across control flow, divergence, cross-lane hazards,
//! division by zero, early exit and stencil `get(dx, dy)` kernels — plus
//! unit tests of the `Tier::Auto` gating heuristic (one-shot kernels stay on
//! the VM, hot or large kernels graduate).

use proptest::prelude::*;

use skelcl_kernel::interp::{ArgBinding, BufferView, ExecStats};
use skelcl_kernel::value::Value;
use skelcl_kernel::{Program, Tier};

type Outcome = Result<(Vec<Vec<f32>>, ExecStats), String>;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Engine {
    Interp,
    Scalar,
    Batched,
    Native,
}

const ENGINES: [Engine; 3] = [Engine::Scalar, Engine::Batched, Engine::Native];

fn run_engine(
    src: &str,
    kernel: &str,
    buffers: &[Vec<f32>],
    scalars: &[Value],
    global_size: usize,
    engine: Engine,
) -> Outcome {
    let p = Program::build(src).expect("test kernels must build");
    let k = p.kernel(kernel).expect("kernel exists");
    if engine == Engine::Native {
        p.set_tier(Tier::Native);
    }
    let mut bufs: Vec<Vec<f32>> = buffers.to_vec();
    let mut args: Vec<ArgBinding<'_>> = Vec::new();
    for b in &mut bufs {
        args.push(ArgBinding::Buffer(BufferView::F32(b)));
    }
    for s in scalars {
        args.push(ArgBinding::Scalar(*s));
    }
    let stats = match engine {
        Engine::Interp => p.run_ndrange_measured_interp(&k, global_size, &mut args),
        Engine::Scalar => p.run_ndrange_measured_scalar(&k, global_size, &mut args),
        Engine::Batched => p.run_ndrange_measured_batched(&k, global_size, &mut args),
        Engine::Native => p.run_ndrange_measured(&k, global_size, &mut args),
    };
    drop(args);
    match stats {
        Ok(s) => Ok((bufs, s)),
        Err(e) => Err(e.message),
    }
}

/// Assert every tier produces the interpreter oracle's outcome exactly:
/// bit-identical buffers, identical stats, identical error messages.
fn assert_tiers_agree(
    src: &str,
    kernel: &str,
    buffers: &[Vec<f32>],
    scalars: &[Value],
    global_size: usize,
) {
    let oracle = run_engine(src, kernel, buffers, scalars, global_size, Engine::Interp);
    for engine in ENGINES {
        let got = run_engine(src, kernel, buffers, scalars, global_size, engine);
        match (&got, &oracle) {
            (Ok((gb, gs)), Ok((ob, os))) => {
                for (i, (g, o)) in gb.iter().zip(ob).enumerate() {
                    let gbits: Vec<u32> = g.iter().map(|x| x.to_bits()).collect();
                    let obits: Vec<u32> = o.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(
                        gbits, obits,
                        "buffer {i} diverged on {engine:?} for kernel:\n{src}"
                    );
                }
                assert_eq!(
                    gs, os,
                    "ExecStats diverged on {engine:?} for kernel:\n{src}"
                );
            }
            (Err(ge), Err(oe)) => {
                assert_eq!(ge, oe, "errors diverged on {engine:?} for kernel:\n{src}");
            }
            _ => panic!(
                "{engine:?} disagrees with the oracle on success for kernel:\n{src}\n\
                 engine: {:?}\noracle: {:?}",
                got.as_ref().map(|(_, s)| s),
                oracle.as_ref().map(|(_, s)| s)
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The canonical guarded map shape — straight-line f32 arithmetic with
    /// iota loads/stores, the native tier's hottest fast path.
    #[test]
    fn guarded_map_agrees_across_all_tiers(
        data in prop::collection::vec(-100.0f32..100.0, 1..200),
        a in -4.0f32..4.0,
    ) {
        let src = r#"
            float func(float x, float a) { return x * a + 0.5f; }
            __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n, float skelcl_arg_a) {
                int skelcl_gid = get_global_id(0);
                if (skelcl_gid < skelcl_n) {
                    skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid], skelcl_arg_a);
                }
            }
        "#;
        let n = data.len();
        let out = vec![0.0f32; n];
        assert_tiers_agree(
            src, "SKELCL_MAP", &[data, out],
            &[Value::Int(n as i32), Value::Float(a)], n,
        );
    }

    /// Uniform control flow (same trip count in every lane) with break and
    /// continue: exercises native back-edge budgeting and branch terms.
    #[test]
    fn uniform_loops_agree_across_all_tiers(
        data in prop::collection::vec(-50.0f32..50.0, 1..96),
        limit in 0i32..30,
        skip in 1i32..5,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, int limit, int skip) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i < n; i++) {
                    if (i % skip == 0) { continue; }
                    if (i > limit) { break; }
                    acc += v[i] * 0.5f;
                }
                v[gid] = acc;
            }
        "#;
        let n = data.len();
        assert_tiers_agree(
            src, "k", &[data],
            &[Value::Int(n as i32), Value::Int(limit), Value::Int(skip)], n,
        );
    }

    /// Data-dependent (gid-dependent) trip counts: lanes diverge mid-batch,
    /// forcing the native tier down its rollback-and-replay path.
    #[test]
    fn divergent_loops_agree_across_all_tiers(
        items in 1usize..160,
        mult in 0.5f32..1.5,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, float m) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i <= gid % 7; i++) { acc += v[gid] * m; }
                v[gid] = acc;
            }
        "#;
        let data: Vec<f32> = (0..items).map(|i| (i % 13) as f32 - 6.0).collect();
        assert_tiers_agree(
            src, "k", &[data],
            &[Value::Int(items as i32), Value::Float(mult)], items,
        );
    }

    /// Integer division and modulo where the divisor may be zero: every tier
    /// must report the identical "integer division by zero" error (or agree
    /// bit for bit when the divisor is non-zero).
    #[test]
    fn division_by_zero_errors_agree_across_all_tiers(
        data in prop::collection::vec(-1000.0f32..1000.0, 1..96),
        d in -4i32..4,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n, int d) {
                int gid = get_global_id(0);
                int x = (int) v[gid];
                v[gid] = (float) (x * 3 - x / d + x % d);
            }
        "#;
        let n = data.len();
        assert_tiers_agree(
            src, "k", &[data],
            &[Value::Int(n as i32), Value::Int(d)], n,
        );
    }

    /// Early exit: the launch covers more items than the guard admits, so
    /// suffix lanes retire through the guard's exit chain mid-batch.
    #[test]
    fn early_exit_lane_retirement_agrees_across_all_tiers(
        len in 1usize..80,
        extra in 0usize..80,
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                if (gid < n) { v[gid] = v[gid] * 2.0f + 1.0f; }
            }
        "#;
        let launch = len + extra;
        let data: Vec<f32> = (0..launch).map(|i| i as f32 * 0.25).collect();
        assert_tiers_agree(src, "k", &[data], &[Value::Int(len as i32)], launch);
    }

    /// Math builtins over f32 rows (the fn-pointer fast paths) mixed with
    /// casts and f64 locals.
    #[test]
    fn math_builtins_and_casts_agree_across_all_tiers(
        data in prop::collection::vec(0.01f32..100.0, 1..96),
    ) {
        let src = r#"
            __kernel void k(__global float* v, int n) {
                int gid = get_global_id(0);
                float x = v[gid];
                float y = sqrt(x) + exp(x * 0.001f) + pow(x, 0.5f);
                y = fmin(fmax(y, 0.5f), 1.0e6f) + clamp(x, 1.0f, 8.0f);
                double z = (double) y * 0.125;
                int t = (int) z;
                v[gid] = (float) z - (float) t + fabs(x) * 0.0625f;
            }
        "#;
        let n = data.len();
        assert_tiers_agree(src, "k", &[data], &[Value::Int(n as i32)], n);
    }

    /// The MapOverlap stencil shape: `get(dx, dy)` neighbour reads bind the
    /// reserved stencil context and must agree across tiers, including the
    /// "exceeds the declared halo" error when `dy` overruns.
    #[test]
    fn stencil_get_agrees_across_all_tiers(
        rows in 1usize..6,
        w in 1usize..8,
        halo in 0usize..3,
        policy in 0i32..3,
        dy in -3i32..4,
        seed in 0u32..1000,
    ) {
        let src =
            "float func(float x, int dy) { return x + 0.5f * (get(-1, 0) + get(1, 0) + get(0, dy)); }\n\
             __kernel void SKELCL_MAP_OVERLAP(__global float* skelcl_stencil_in, __global float* skelcl_out,\n\
                 int skelcl_n, int skelcl_stencil_w, int skelcl_stencil_halo,\n\
                 int skelcl_stencil_policy, float skelcl_stencil_oob, int skelcl_arg_dy) {\n\
                 int skelcl_gid = get_global_id(0);\n\
                 if (skelcl_gid < skelcl_n) {\n\
                     skelcl_out[skelcl_gid] = func(skelcl_stencil_in[skelcl_gid], skelcl_arg_dy);\n\
                 }\n\
             }\n";
        let n = rows * w;
        let padded = (rows + 2 * halo) * w;
        let input: Vec<f32> = (0..padded)
            .map(|i| ((i as u32 * 37 + seed) % 101) as f32 * 0.5 - 20.0)
            .collect();
        let out = vec![0.0f32; n];
        assert_tiers_agree(
            src, "SKELCL_MAP_OVERLAP", &[input, out],
            &[
                Value::Int(n as i32),
                Value::Int(w as i32),
                Value::Int(halo as i32),
                Value::Int(policy),
                Value::Float(-1.5),
                Value::Int(dy),
            ],
            n,
        );
    }
}

/// Cross-lane hazard: each item writes its own element then reads its
/// neighbour's. The native tier must bail, roll back and replay exactly.
#[test]
fn cross_lane_hazards_roll_back_and_replay_exactly() {
    let src = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            v[gid] = v[gid] * 2.0f;
            v[gid] += v[(gid + 1) % n];
        }
    "#;
    let n = 2 * skelcl_kernel::vm::BATCH_LANES + 3;
    let data: Vec<f32> = (0..n).map(|i| (i % 13) as f32 - 6.0).collect();
    assert_tiers_agree(src, "k", &[data], &[Value::Int(n as i32)], n);
}

/// Compound assignment and increment quirks: in-place forms (`x = x op y`)
/// exercise the native tier's operand-snapshot aliasing discipline.
#[test]
fn compound_assignment_aliasing_agrees_across_all_tiers() {
    let src = r#"
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            float x = v[gid];
            x *= 2.0f;
            x += x;
            x -= x * 0.25f;
            int i = gid;
            i += i;
            float a = i++;
            float b = ++i;
            v[gid] = x + a * 0.125f - b * 0.0625f;
        }
    "#;
    let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5 - 20.0).collect();
    assert_tiers_agree(src, "k", &[data], &[Value::Int(100)], 100);
}

/// Out-of-bounds and negative indices produce identical errors everywhere.
#[test]
fn out_of_bounds_errors_agree_across_all_tiers() {
    let src = r#"
        __kernel void k(__global float* v, int n, int idx) { v[idx] = 1.0f; }
    "#;
    for idx in [-3, 17] {
        assert_tiers_agree(
            src,
            "k",
            &[vec![0.0f32; 4]],
            &[Value::Int(4), Value::Int(idx)],
            1,
        );
    }
}

/// Reduce- and scan-shaped kernels (single-item sequential folds) run
/// identically on the native tier.
#[test]
fn sequential_fold_kernels_agree_across_all_tiers() {
    let src = r#"
        float func(float a, float b) { return a + b * 0.5f; }
        __kernel void SKELCL_REDUCE(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
            float skelcl_acc = skelcl_in[0];
            for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {
                skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]);
            }
            skelcl_out[0] = skelcl_acc;
        }
    "#;
    let data: Vec<f32> = (0..200).map(|i| (i % 17) as f32 * 0.25 - 2.0).collect();
    let out = vec![0.0f32; 1];
    assert_tiers_agree(src, "SKELCL_REDUCE", &[data, out], &[Value::Int(200)], 1);
}

// ---------------------------------------------------------------------------
// Tier selection
// ---------------------------------------------------------------------------

const MAP_SRC: &str = r#"
    __kernel void k(__global float* v, int n) {
        int gid = get_global_id(0);
        if (gid < n) { v[gid] = v[gid] * 2.0f; }
    }
"#;

fn traced_launch(p: &Program, n: usize) -> skelcl_kernel::LaunchTrace {
    let k = p.kernel("k").unwrap();
    let mut data = vec![1.0f32; n];
    let mut args = vec![
        ArgBinding::buffer_f32(&mut data),
        ArgBinding::Scalar(Value::Int(n as i32)),
    ];
    let (_, trace) = p.run_ndrange_traced(&k, n, &mut args).unwrap();
    trace
}

#[test]
fn one_shot_small_kernels_stay_on_the_batched_vm() {
    let p = Program::build(MAP_SRC).unwrap();
    p.set_tier(Tier::Auto);
    let trace = traced_launch(&p, 1024);
    assert_eq!(trace.tier, Tier::Batched);
    assert!(!trace.native_compiled);
    assert_eq!(trace.native_batches, 0);
}

#[test]
fn hot_kernels_graduate_to_native_after_repeated_launches() {
    let p = Program::build(MAP_SRC).unwrap();
    p.set_tier(Tier::Auto);
    let mut graduated_at = None;
    for launch in 0..skelcl_kernel::native::AUTO_MIN_LAUNCHES + 4 {
        let trace = traced_launch(&p, skelcl_kernel::native::AUTO_MIN_SIZE);
        if trace.tier == Tier::Native && graduated_at.is_none() {
            graduated_at = Some(launch);
            assert!(trace.native_compiled, "first native launch compiles");
            assert!(trace.native_batches > 0);
            assert!(trace.fallback.is_none());
        }
    }
    assert_eq!(
        graduated_at,
        Some(skelcl_kernel::native::AUTO_MIN_LAUNCHES),
        "kernel graduates exactly when prior launches reach the threshold"
    );
}

#[test]
fn large_launches_graduate_immediately_and_cache_the_artifact() {
    let p = Program::build(MAP_SRC).unwrap();
    p.set_tier(Tier::Auto);
    let n = skelcl_kernel::native::AUTO_SIZE_IMMEDIATE;
    let first = traced_launch(&p, n);
    assert_eq!(first.tier, Tier::Native);
    assert!(first.native_compiled);
    let second = traced_launch(&p, n);
    assert_eq!(second.tier, Tier::Native);
    assert!(!second.native_compiled, "the compiled artifact is cached");
    assert_eq!(second.native_compile_ns, first.native_compile_ns);
}

#[test]
fn forced_native_on_ineligible_kernels_falls_back_with_a_reason() {
    // Recursion leaves a real `Op::Call`, which only the VM can execute.
    let src = r#"
        float fib(float n) {
            if (n < 2.0f) { return n; }
            return fib(n - 1.0f) + fib(n - 2.0f);
        }
        __kernel void k(__global float* v, int n) {
            int gid = get_global_id(0);
            if (gid < n) { v[gid] = fib(v[gid]); }
        }
    "#;
    let p = Program::build(src).unwrap();
    p.set_tier(Tier::Native);
    let trace = traced_launch(&p, 16);
    assert_eq!(trace.tier, Tier::Batched, "fell back to the batched VM");
    let reason = trace.fallback.expect("fallback reason recorded");
    assert!(reason.contains("through a VM frame"), "reason: {reason}");
    // And the fallback still computes the right answer.
    assert_tiers_agree(src, "k", &[vec![7.0f32; 16]], &[Value::Int(16)], 16);
}

#[test]
fn explicit_tier_override_is_respected_per_program() {
    let p = Program::build(MAP_SRC).unwrap();
    for tier in [Tier::Interp, Tier::Scalar, Tier::Batched, Tier::Native] {
        p.set_tier(tier);
        assert_eq!(p.tier(), tier);
        let trace = traced_launch(&p, 64);
        assert_eq!(trace.tier, tier, "forced tier runs unconditionally");
    }
}
