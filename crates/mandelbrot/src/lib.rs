//! # mandelbrot — the Mandelbrot benchmark application
//!
//! The paper's conclusion reports that the SkelCL findings for list-mode
//! OSEM (greatly reduced programming effort, small performance overhead)
//! also hold for a Mandelbrot benchmark application, evaluated in the
//! companion paper \[6\]. This crate provides that application: a SkelCL
//! version built on the map skeleton with additional arguments, a low-level
//! version written directly against the simulated OpenCL runtime, and a
//! sequential reference.

use std::sync::Arc;

use skelcl::prelude::*;
use skelcl::SkelCl;

use oclsim::{ApiModel, Context, CostHint, KernelArg, NativeKernelDef, Program};

/// Parameters of a Mandelbrot rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelbrotConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Iteration limit.
    pub max_iterations: u32,
    /// Centre of the view (real axis).
    pub center_re: f32,
    /// Centre of the view (imaginary axis).
    pub center_im: f32,
    /// Width of the view in the complex plane.
    pub view_width: f32,
}

impl MandelbrotConfig {
    /// A small configuration for tests.
    pub fn test_scale() -> MandelbrotConfig {
        MandelbrotConfig {
            width: 64,
            height: 48,
            max_iterations: 100,
            center_re: -0.5,
            center_im: 0.0,
            view_width: 3.0,
        }
    }

    /// The benchmark configuration (a 2048×2048 rendering).
    pub fn benchmark_scale() -> MandelbrotConfig {
        MandelbrotConfig {
            width: 2048,
            height: 2048,
            max_iterations: 1000,
            ..MandelbrotConfig::test_scale()
        }
    }

    /// Number of pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Per-pixel cost hint for the virtual-time model, used by the low-level
    /// (native-kernel) rendering: an author-provided estimate that assumes
    /// roughly half the pixels run to the iteration limit. The SkelCL version
    /// is charged the cost the interpreter *measures* instead, so the two
    /// renderings bracket the true data-dependent cost from opposite sides
    /// (see EXPERIMENTS.md, Mandelbrot).
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(8.0 * self.max_iterations as f64 * 0.5, 8.0)
    }
}

/// The escape-time computation for one pixel index.
pub fn escape_time(config: &MandelbrotConfig, pixel: usize) -> u32 {
    let x = (pixel % config.width) as f32;
    let y = (pixel / config.width) as f32;
    let scale = config.view_width / config.width as f32;
    let c_re = config.center_re + (x - config.width as f32 / 2.0) * scale;
    let c_im = config.center_im + (y - config.height as f32 / 2.0) * scale;
    let mut z_re = 0.0f32;
    let mut z_im = 0.0f32;
    let mut i = 0;
    while i < config.max_iterations && z_re * z_re + z_im * z_im <= 4.0 {
        let new_re = z_re * z_re - z_im * z_im + c_re;
        z_im = 2.0 * z_re * z_im + c_im;
        z_re = new_re;
        i += 1;
    }
    i
}

/// Sequential reference rendering.
pub fn render_sequential(config: &MandelbrotConfig) -> Vec<u32> {
    (0..config.pixels())
        .map(|p| escape_time(config, p))
        .collect()
}

/// The kernel-language source of the per-pixel user function used by the
/// SkelCL version: the pixel index is the map input, the image geometry and
/// iteration limit arrive as additional (scalar) arguments.
pub const MANDELBROT_UDF: &str = r#"
int func(int pixel, int width, int height, float center_re, float center_im,
         float view_width, int max_iter) {
    float x = pixel % width;
    float y = pixel / width;
    float scale = view_width / width;
    float c_re = center_re + (x - width / 2.0f) * scale;
    float c_im = center_im + (y - height / 2.0f) * scale;
    float z_re = 0.0f;
    float z_im = 0.0f;
    int i = 0;
    while (i < max_iter && z_re * z_re + z_im * z_im <= 4.0f) {
        float new_re = z_re * z_re - z_im * z_im + c_re;
        z_im = 2.0f * z_re * z_im + c_im;
        z_re = new_re;
        i = i + 1;
    }
    return i;
}
"#;

/// Render with SkelCL: an index-map skeleton over the pixel indices (no input
/// vector is stored or uploaded), customised with [`MANDELBROT_UDF`] and the
/// view parameters as additional arguments.
pub fn render_skelcl(runtime: &Arc<SkelCl>, config: &MandelbrotConfig) -> Result<Vec<u32>> {
    let map = Map::<i32, i32>::from_source(MANDELBROT_UDF);
    let out = map
        .run_index(runtime, config.pixels())
        .args(skelcl::args![
            config.width as i32,
            config.height as i32,
            config.center_re,
            config.center_im,
            config.view_width,
            config.max_iterations as i32
        ])
        .exec()?;
    Ok(out.to_vec()?.into_iter().map(|v| v as u32).collect())
}

/// Render with the low-level simulated-OpenCL path: explicit context, queue
/// and buffer management, one launch per device over a manually computed
/// pixel range.
pub fn render_lowlevel(num_gpus: usize, config: &MandelbrotConfig) -> oclsim::Result<Vec<u32>> {
    let context = Context::new(
        vec![oclsim::DeviceProfile::tesla_c1060(); num_gpus],
        ApiModel::opencl(),
    );
    let cfg = *config;
    let kernel_def = NativeKernelDef::new("mandelbrot", config.cost_hint(), move |ctx| {
        let n = ctx.global_size();
        let offset = ctx.scalar_usize(1)?;
        let mut views = ctx.arg_views();
        let out = views[0]
            .as_slice_mut::<u32>()
            .ok_or("output must be a buffer")?;
        for i in 0..n {
            out[i] = escape_time(&cfg, offset + i);
        }
        Ok(())
    });
    let program = Program::from_native([kernel_def]);
    let kernel = program.kernel("mandelbrot")?;

    let pixels = config.pixels();
    let per_gpu = pixels.div_ceil(num_gpus.max(1));
    let mut image = vec![0u32; pixels];
    let mut launches = Vec::new();
    for gpu in 0..num_gpus {
        let start = (gpu * per_gpu).min(pixels);
        let end = ((gpu + 1) * per_gpu).min(pixels);
        if start == end {
            continue;
        }
        let queue = context.queue(gpu)?;
        let buffer = context.create_buffer::<u32>(gpu, end - start)?;
        queue.enqueue_kernel(
            &kernel,
            end - start,
            &[
                KernelArg::Buffer(buffer.clone()),
                KernelArg::Scalar(oclsim::Value::Uint(start as u32)),
            ],
        )?;
        launches.push((queue, buffer, start..end));
    }
    for (queue, buffer, range) in &launches {
        queue.enqueue_read_buffer(buffer, &mut image[range.clone()])?;
        context.release_buffer(buffer)?;
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_time_known_points() {
        let cfg = MandelbrotConfig::test_scale();
        // The centre pixel maps near -0.5 + 0i, inside the set.
        let centre = (cfg.height / 2) * cfg.width + cfg.width / 2;
        assert_eq!(escape_time(&cfg, centre), cfg.max_iterations);
        // The corner pixels are far outside and escape quickly.
        assert!(escape_time(&cfg, 0) < 10);
    }

    #[test]
    fn skelcl_rendering_matches_sequential_on_multiple_gpus() {
        let cfg = MandelbrotConfig::test_scale();
        let reference = render_sequential(&cfg);
        for devices in [1usize, 2, 4] {
            let rt = skelcl::init_gpus(devices);
            let image = render_skelcl(&rt, &cfg).unwrap();
            assert_eq!(image, reference, "devices = {devices}");
        }
    }

    #[test]
    fn lowlevel_rendering_matches_sequential() {
        let cfg = MandelbrotConfig::test_scale();
        let reference = render_sequential(&cfg);
        for devices in [1usize, 3] {
            assert_eq!(render_lowlevel(devices, &cfg).unwrap(), reference);
        }
    }

    #[test]
    fn config_helpers() {
        let cfg = MandelbrotConfig::benchmark_scale();
        assert_eq!(cfg.pixels(), 2048 * 2048);
        assert!(cfg.cost_hint().flops_per_item > 100.0);
    }
}
