//! # skelcl-suite — workspace umbrella
//!
//! This package exists to own the workspace-level artefacts:
//!
//! * the cross-crate integration tests in `tests/` (the paper's listings and
//!   figures exercised end to end),
//! * the runnable examples in `examples/` (`cargo run --example quickstart`).
//!
//! The library itself only re-exports the member crates for convenience in
//! those tests and examples.

pub use dopencl;
pub use mandelbrot;
pub use oclsim;
pub use osem;
pub use skelcl;
pub use skelcl_bench;
