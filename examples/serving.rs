//! SkelCL as a service: three tenants share one runtime through a
//! [`skelcl_serving::Server`]. An interactive tenant runs at high priority,
//! two batch tenants split the remaining capacity 3:1 by fair-share weight,
//! one of them under a memory quota. Same-kernel jobs coalesce into packed
//! launches; the serving trace at the end shows how many launches that
//! saved.
//!
//! Run with `cargo run --example serving`.

use skelcl::prelude::*;
use skelcl_serving::{Priority, ServeError, Server, ServerConfig, TenantConfig};

fn main() -> skelcl_serving::Result<()> {
    let rt = skelcl::init_gpus(2);
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            coalescing: true,
            coalesce_cap: 32,
            max_queue_depth: 256,
            ..ServerConfig::default()
        },
    );

    server.add_tenant(
        "dashboard",
        TenantConfig {
            priority: Priority::High,
            ..TenantConfig::default()
        },
    )?;
    server.add_tenant("nightly-etl", TenantConfig::weighted(3))?;
    server.add_tenant(
        "best-effort",
        TenantConfig {
            weight: 1,
            quota_bytes: Some(64 << 10),
            max_pending: 16,
            ..TenantConfig::default()
        },
    )?;

    let normalize =
        Map::<f32, f32>::from_source("float func(float x) { return (x - 0.5f) * 2.0f; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

    // Batch tenants enqueue a backlog of small same-kernel jobs...
    let mut batch_jobs = Vec::new();
    for tenant in ["nightly-etl", "best-effort"] {
        let session = server.session(tenant)?;
        for i in 0..24u32 {
            let v = Vector::from_vec(
                &rt,
                (0..256).map(|k| ((k + i) % 97) as f32 / 97.0).collect(),
            );
            match session.try_submit_vec(&v.lazy().map(&normalize)) {
                Ok(handle) => batch_jobs.push(handle),
                Err(ServeError::WouldBlock) | Err(ServeError::QuotaExceeded { .. }) => {
                    // Backpressure: this tenant is at its watermark or
                    // quota; a real client would retry after a completion.
                    break;
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ...and the interactive tenant's reduction still jumps the queue.
    let dashboard = server.session("dashboard")?;
    let v = Vector::from_vec(
        &rt,
        (0..4096).map(|k| (k % 31) as f32).collect::<Vec<f32>>(),
    );
    let (total, report) = dashboard.submit_scalar(&v.lazy().reduce(&sum))?.wait()?;
    println!(
        "dashboard reduction = {total} (job #{}, virtual latency {:?})",
        report.job_id,
        report.latency()
    );

    server.flush();
    let mut completed = 0usize;
    for handle in batch_jobs {
        let (out, report) = handle.wait()?;
        assert_eq!(out.len(), 256);
        completed += 1;
        if report.batch_jobs > 1 && completed == 1 {
            println!(
                "batch jobs ran coalesced: {} jobs shared one launch on device {:?}",
                report.batch_jobs, report.device
            );
        }
    }

    let trace = server.trace();
    println!(
        "served {} jobs in {} batches ({} packed, {} jobs coalesced, {} rejected by backpressure)",
        trace.jobs_completed,
        trace.batches,
        trace.packed_batches,
        trace.coalesced_jobs,
        trace.would_blocks,
    );
    for usage in rt.context().ledger().usages() {
        println!(
            "tenant {:<12} peak {:>6} B  launches {:>3}  transfers {:>3} ({} B)",
            usage.tag, usage.peak_bytes, usage.launches, usage.transfers, usage.transfer_bytes
        );
    }
    server.shutdown();
    Ok(())
}
