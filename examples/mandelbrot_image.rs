//! Render a small Mandelbrot set with the map skeleton and print it as ASCII
//! art — the benchmark application referenced in the paper's conclusion.
//!
//! Run with `cargo run --example mandelbrot_image`.

use mandelbrot::{render_skelcl, MandelbrotConfig};

fn main() {
    let config = MandelbrotConfig {
        width: 96,
        height: 32,
        max_iterations: 80,
        center_re: -0.5,
        center_im: 0.0,
        view_width: 3.2,
    };
    let rt = skelcl::init_gpus(4);
    let image = render_skelcl(&rt, &config).expect("rendering");

    let palette = [b' ', b'.', b':', b'-', b'=', b'+', b'*', b'#', b'%', b'@'];
    for row in 0..config.height {
        let mut line = String::with_capacity(config.width);
        for col in 0..config.width {
            let it = image[row * config.width + col];
            let idx = (it as usize * (palette.len() - 1)) / config.max_iterations as usize;
            line.push(palette[idx] as char);
        }
        println!("{line}");
    }
    println!(
        "{}x{} pixels rendered on {} simulated GPUs in {:.3} simulated ms",
        config.width,
        config.height,
        rt.device_count(),
        rt.now().as_secs_f64() * 1e3
    );
}
