//! Section V of the paper: scheduling skeletons on *heterogeneous* devices.
//!
//! "To use the heterogeneous devices efficiently ... SkelCL should not assign
//! evenly-sized workload to the devices." This example shows the static
//! scheduler's performance prediction in action: the per-device weights it
//! derives for differently expensive user functions, the resulting block
//! partition, the speed-up over an even split, and the CPU-vs-GPU decision
//! for the final step of a reduction.
//!
//! Run with `cargo run --release --example heterogeneous_scheduling`.

use skelcl::prelude::*;
use skelcl::{PerfModel, StaticScheduler};

use oclsim::DeviceProfile;

fn main() -> Result<()> {
    // One Tesla-class GPU, one small GPU and one CPU device — the kind of
    // mixed system the paper's laboratory cluster exposes through dOpenCL.
    let rt = skelcl::init_profiles(vec![
        DeviceProfile::tesla_c1060(),
        DeviceProfile::generic_small_gpu(),
        DeviceProfile::xeon_e5520(),
    ]);
    println!("heterogeneous runtime with {} devices:", rt.device_count());
    for (i, d) in rt.context().devices().iter().enumerate() {
        println!("  device {i}: {}", d.name());
    }

    // --- 1. Performance prediction -------------------------------------
    let model = PerfModel::analytical(&rt);
    println!("\npredicted relative throughput (weights) per user-function cost:");
    for (label, cost) in [
        ("memory-bound (1 flop, 16 B)", CostHint::new(1.0, 16.0)),
        ("balanced (50 flops, 8 B)", CostHint::new(50.0, 8.0)),
        ("compute-bound (500 flops, 4 B)", CostHint::new(500.0, 4.0)),
    ] {
        let weights = model.weights(cost);
        println!(
            "  {label:32} -> {:?}",
            weights
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }

    // --- 2. Even vs weighted block distribution -------------------------
    let n = 400_000;
    let heavy = "float func(float x) {\n  float acc = x;\n  for (int i = 0; i < 64; i++) { acc = acc * 1.0001f + 0.5f; }\n  return acc;\n}";
    let scheduler = StaticScheduler::analytical(&rt);
    let cost = CostHint::new(130.0, 8.0);

    let time_with = |dist: Distribution| -> Result<f64> {
        let rt = skelcl::init_profiles(vec![
            DeviceProfile::tesla_c1060(),
            DeviceProfile::generic_small_gpu(),
            DeviceProfile::xeon_e5520(),
        ]);
        let map = Map::<f32, f32>::from_source(heavy);
        let v = Vector::from_vec(&rt, vec![1.0f32; n]);
        v.set_distribution(dist)?;
        v.map(&map)?; // warm-up: compile + upload
        rt.finish_all();
        let t0 = rt.now();
        let out = v.map(&map)?;
        out.with_host(|_| ())?;
        rt.finish_all();
        Ok((rt.now() - t0).as_secs_f64())
    };

    let even = time_with(Distribution::Block)?;
    let weighted = time_with(scheduler.weighted_block(cost))?;
    println!("\nmap over {n} elements (heavy user function):");
    println!("  even block distribution     : {:.3} ms", even * 1e3);
    println!("  scheduler-weighted blocks   : {:.3} ms", weighted * 1e3);
    println!("  speed-up                    : {:.2}x", even / weighted);

    // --- 3. Where should the final reduction run? -----------------------
    // Few partial results: the CPU wins because a GPU pays launch overhead
    // and a PCIe round trip for almost no work. Large compute-heavy
    // reductions go back to a GPU.
    println!("\nfinal-reduction placement (intermediate results -> chosen device):");
    for intermediate in [4usize, 64, 4_096, 1_000_000, 50_000_000] {
        let (device, is_cpu) = scheduler.final_reduce_placement(
            intermediate,
            std::mem::size_of::<f32>(),
            CostHint::new(400.0, 8.0),
        )?;
        println!(
            "  {intermediate:>10} partial results -> device {device} ({})",
            if is_cpu { "CPU" } else { "GPU" }
        );
    }
    Ok(())
}
