//! Quickstart: the SAXPY computation of Listing 1 of the paper, plus a
//! map → reduce pipeline that never leaves the (simulated) GPUs.
//!
//! Run with `cargo run --example quickstart`.

use skelcl::prelude::*;

fn main() -> Result<()> {
    // Initialise SkelCL on two simulated Tesla GPUs.
    let rt = skelcl::init_gpus(2);
    println!("SkelCL initialised on {} devices", rt.device_count());

    // --- Listing 1: Y <- a*X + Y with a zip skeleton --------------------
    let saxpy = Zip::<f32, f32, f32>::from_source(
        "float func(float x, float y, float a) { return a * x + y; }",
    );
    let n = 1 << 16;
    let x = Vector::from_vec(&rt, (0..n).map(|i| i as f32).collect());
    let y = Vector::from_vec(&rt, vec![1.0f32; n as usize]);
    let a = 2.5f32;
    let y = saxpy.run(&x, &y).arg(a).exec()?;
    let result = y.to_vec()?;
    println!(
        "saxpy: y[10] = {} (expected {})",
        result[10],
        a * 10.0 + 1.0
    );

    // --- A map → reduce pipeline ----------------------------------------
    // The map's output stays on the devices; the reduce reuses it without
    // any host transfer (lazy copying, Section II-B of the paper).
    let square = Map::<f32, f32>::from_source("float func(float v) { return v * v; }");
    let sum = Reduce::<f32>::from_source("float func(float l, float r) { return l + r; }");
    let values = Vector::from_vec(&rt, (1..=1000).map(|i| i as f32).collect());
    let sum_of_squares = values.map(&square)?.reduce(&sum)?;
    println!("sum of squares 1..=1000 = {sum_of_squares}");

    println!(
        "total skeleton calls: {}, simulated time: {:.3} ms",
        rt.skeleton_calls(),
        rt.now().as_secs_f64() * 1e3
    );
    Ok(())
}
