//! Container-layer smoke: the *same* `Map` / `Zip` / `Reduce` skeleton
//! instances run element-wise over a `Vector` and over a `Matrix` through
//! the unified `Container` launch path — same kernels, same telemetry.
//!
//! Run with `cargo run --example matrix_map`.

use skelcl::prelude::*;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(4);
    println!("SkelCL initialised on {} devices", rt.device_count());

    let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
    let sub = Zip::<f32, f32, f32>::from_source("float func(float a, float b) { return a - b; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

    // One skeleton instance, two container shapes.
    let rows = 64;
    let cols = 48;
    let image = Matrix::from_fn(&rt, rows, cols, |r, c| ((r * 31 + c * 7) % 17) as f32);
    let flat = Vector::from_vec(&rt, image.to_vec()?);

    // map → zip → reduce entirely on the devices, over the matrix...
    let m_squared = image.map(&square)?;
    let m_diff = m_squared.zip(&image, &sub)?;
    let m_total = m_diff.reduce(&sum)?;

    // ...and over the flattened vector.
    let v_total = flat.map(&square)?.zip(&flat, &sub)?.reduce(&sum)?;

    println!("matrix pipeline: sum(x² - x) = {m_total}");
    println!("vector pipeline: sum(x² - x) = {v_total}");
    assert_eq!(
        m_total.to_bits(),
        v_total.to_bits(),
        "matrix and vector pipelines must agree bit for bit"
    );

    // The matrix output keeps its shape and row-block distribution.
    println!(
        "matrix output: {}×{} rows-per-device {:?}",
        m_diff.rows(),
        m_diff.cols(),
        m_diff.row_counts()
    );

    // Telemetry flows through the same exec-trace path for both shapes.
    let trace = rt.exec_trace();
    println!(
        "exec trace: {} skeleton calls, {} programs built",
        trace.skeleton_calls, trace.programs_built
    );
    assert!(trace.skeleton_calls >= 6);
    Ok(())
}
