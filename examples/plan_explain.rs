//! Inspecting lazy pipelines before running them: `explain()` renders the
//! expression DAG, the distribution the runtime will unify the sources to,
//! and — per stage boundary — the cost model's fuse-vs-split verdict with
//! the predicted virtual times behind it. Nothing is enqueued.
//!
//! Run with `cargo run --example plan_explain`.

use skelcl::prelude::*;
use skelcl::FusionPolicy;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(2);

    let n = 1 << 18;
    let v = Vector::from_vec(&rt, (0..n).map(|i| (i % 13) as f32).collect::<Vec<f32>>());
    let w = Vector::from_vec(&rt, vec![0.25f32; n]);

    let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
    let scale = Map::<f32, f32>::from_source("float func(float x, float a) { return a * x; }");
    let add = Zip::<f32, f32, f32>::from_source("float func(float x, float y) { return x + y; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

    // A 4-stage pipeline: map -> map -> zip -> reduce. Under the default
    // Auto policy the cost model fuses every boundary: one kernel per
    // device instead of four, and no intermediate vectors.
    let plan = v
        .lazy()
        .map(&square)
        .map_with(&scale, args![0.5f32])
        .zip(&w, &add)
        .reduce(&sum);

    println!("=== FusionPolicy::Auto (default) ===");
    println!("{}", plan.explain()?);

    // `Never` lowers one launch group per stage — the differential baseline
    // the test suite compares fused results against, bit for bit.
    println!("=== FusionPolicy::Never ===");
    println!("{}", plan.clone().policy(FusionPolicy::Never).explain()?);

    // explain() did not execute anything; the terminal does.
    let total = plan.scalar()?;
    println!("result: {total:.1}");

    let trace = rt.exec_trace();
    println!(
        "telemetry: {} kernel(s) fused, {} launch(es) elided, {} intermediate byte(s) elided",
        trace.kernels_fused, trace.launches_elided, trace.intermediate_bytes_elided
    );
    Ok(())
}
