//! Figure 3 of the paper: the five phases of one list-mode OSEM subset
//! iteration on two GPUs (upload, step 1, redistribution, step 2, download),
//! expressed purely through SkelCL distributions.
//!
//! Run with `cargo run --release --example osem_phases`.

use osem::{sequential, ReconstructionConfig, SkelclOsem};
use skelcl::prelude::*;
use skelcl::DeviceSelection;

fn main() {
    let config = ReconstructionConfig::test_scale().with_events_per_subset(5_000);
    let subsets = sequential::generate_subsets(&config);

    let rt = skelcl::SkelCl::init(DeviceSelection::Gpus(2));
    let osem = SkelclOsem::new(rt.clone(), config.clone());
    // Build the kernels first so the phase timing reflects steady state.
    osem.warmup(&subsets[0]).expect("warm-up");

    let mut f = Vector::filled(&rt, config.volume.voxel_count(), 1.0f32);
    let timing = osem.process_subset(&subsets[0], &mut f).expect("subset");

    println!("one list-mode OSEM subset iteration on 2 simulated GPUs");
    println!(
        "volume {}x{}x{}, {} events",
        config.volume.nx, config.volume.ny, config.volume.nz, config.events_per_subset
    );
    println!("phase breakdown (simulated milliseconds), cf. Figure 3 of the paper:");
    println!("  1. upload          {:>10.3} ms", timing.upload_s * 1e3);
    println!("  2. step 1 (map)    {:>10.3} ms", timing.step1_s * 1e3);
    println!(
        "  3. redistribution  {:>10.3} ms",
        timing.redistribution_s * 1e3
    );
    println!("  4. step 2 (zip)    {:>10.3} ms", timing.step2_s * 1e3);
    println!("  5. download        {:>10.3} ms", timing.download_s * 1e3);
    println!("  total              {:>10.3} ms", timing.total_s() * 1e3);

    let image = f.to_vec().expect("download");
    let max = image.iter().cloned().fold(0.0f32, f32::max);
    println!(
        "reconstructed image: {} voxels, max value {max:.3}",
        image.len()
    );
}
