//! Dot product on multiple GPUs: a zip skeleton (element-wise multiply)
//! chained into a reduce skeleton (summation), the classic composition the
//! paper's Section II-B uses to motivate lazy data transfers — the zip's
//! output never leaves the devices.
//!
//! Run with `cargo run --example dot_product`.

use skelcl::prelude::*;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(4);
    println!("dot product on {} simulated GPUs", rt.device_count());

    let n = 1 << 20;
    let xs: Vec<f32> = (0..n).map(|i| ((i % 7) as f32) * 0.5).collect();
    let ys: Vec<f32> = (0..n).map(|i| ((i % 5) as f32) - 2.0).collect();
    let reference: f64 = xs.iter().zip(&ys).map(|(x, y)| (x * y) as f64).sum();

    let multiply =
        Zip::<f32, f32, f32>::from_source("float func(float x, float y) { return x * y; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

    let x = Vector::from_vec(&rt, xs);
    let y = Vector::from_vec(&rt, ys);

    // Warm-up pass: compiles both generated kernels (runtime compilation is a
    // one-time cost the paper excludes from its measurements) and uploads the
    // two input vectors.
    let _ = x.zip(&y, &multiply)?.reduce(&sum)?;
    rt.finish_all();
    rt.drain_events();

    let t0 = rt.now();
    let dot = x.zip(&y, &multiply)?.reduce(&sum)?;
    rt.finish_all();
    let elapsed = (rt.now() - t0).as_secs_f64();

    println!("dot(x, y)        = {dot:.1}");
    println!("reference        = {reference:.1}");
    println!("simulated time   = {:.3} ms", elapsed * 1e3);

    // Show that the intermediate vector of products stayed on the devices:
    // no host → device transfer happened after the initial upload of x and y.
    let events = rt.drain_events();
    let uploads = events.iter().flatten().filter(|e| e.is_write()).count();
    let kernels = events.iter().flatten().filter(|e| e.is_kernel()).count();
    println!("uploads after warm-up: {uploads} (inputs were already resident)");
    println!("kernel launches:       {kernels} (zip + per-device reduce)");
    Ok(())
}
