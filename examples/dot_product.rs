//! Dot product on multiple GPUs as a **lazy fused pipeline**: a zip stage
//! (element-wise multiply) chained into a reduce stage (summation), the
//! classic composition the paper's Section II-B uses to motivate lazy data
//! transfers. The lazy plan goes one step further than keeping the zip's
//! output on the devices — fusion composes the multiply into the reduction's
//! first phase, so the product vector is **never materialised at all** and
//! each device runs a single kernel.
//!
//! Run with `cargo run --example dot_product`.

use skelcl::prelude::*;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(4);
    println!("dot product on {} simulated GPUs", rt.device_count());

    let n = 1 << 20;
    let xs: Vec<f32> = (0..n).map(|i| ((i % 7) as f32) * 0.5).collect();
    let ys: Vec<f32> = (0..n).map(|i| ((i % 5) as f32) - 2.0).collect();
    let reference: f64 = xs.iter().zip(&ys).map(|(x, y)| (x * y) as f64).sum();

    let multiply =
        Zip::<f32, f32, f32>::from_source("float func(float x, float y) { return x * y; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

    let x = Vector::from_vec(&rt, xs);
    let y = Vector::from_vec(&rt, ys);

    // Nothing runs yet: `lazy()` starts an expression DAG and each stage
    // only appends a node. The plan can be inspected and re-executed.
    let dot_plan = x.lazy().zip(&y, &multiply).reduce(&sum);
    println!("\n{}", dot_plan.explain()?);

    // Warm-up pass: compiles the fused kernel (runtime compilation is a
    // one-time cost the paper excludes from its measurements) and uploads
    // the two input vectors.
    let _ = dot_plan.scalar()?;
    rt.finish_all();
    rt.drain_events();
    let warm = rt.exec_trace();

    let t0 = rt.now();
    let dot = dot_plan.scalar()?;
    rt.finish_all();
    let elapsed = (rt.now() - t0).as_secs_f64();

    println!("dot(x, y)        = {dot:.1}");
    println!("reference        = {reference:.1}");
    println!("simulated time   = {:.3} ms", elapsed * 1e3);

    // Fusion telemetry: the zip never ran as its own kernel, so one launch
    // per device was elided and the 4 MiB product vector never existed.
    let trace = rt.exec_trace();
    let events = rt.drain_events();
    let uploads = events.iter().flatten().filter(|e| e.is_write()).count();
    let kernels = events.iter().flatten().filter(|e| e.is_kernel()).count();
    println!("uploads after warm-up:  {uploads} (inputs were already resident)");
    println!("kernel launches:        {kernels} (one fused zip+reduce per device)");
    println!(
        "launches elided:        {}",
        trace.launches_elided - warm.launches_elided
    );
    println!(
        "intermediate bytes elided: {} ({} MiB product vector never allocated)",
        trace.intermediate_bytes_elided - warm.intermediate_bytes_elided,
        (trace.intermediate_bytes_elided - warm.intermediate_bytes_elided) >> 20
    );
    Ok(())
}
