//! Deterministic fault injection and replay-based recovery.
//!
//! Arms a reproducible [`FaultPlan`] — a transient kernel failure and a
//! permanent device loss — against a 4-device runtime, runs ordinary
//! skeleton code, and shows that the recovery layer replays the launches
//! bit-identically while the `ExecTrace` counters record what happened.
//! Then escalates to the cluster level: a whole dual-GPU server of the
//! paper's lab cluster dies mid-way through an iterative heat stencil, and
//! the checkpointed `run_iter` driver rolls back and finishes on the
//! survivors.
//!
//! Run with `cargo run --release --example fault_injection`.

use dopencl::{Cluster, ClusterTier};
use skelcl::oclsim::{FaultPlan, FaultTrigger};
use skelcl::prelude::*;

const HEAT_STEP: &str = r#"
    float func(float u) {
        return u + 0.2f * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

fn main() -> Result<()> {
    // --- Single-runtime faults: a transient and a permanent one. ---------
    let rt = skelcl::init_gpus(4);
    // Device 0's second op (the map kernel) fails once; device 2 dies for
    // good on its third op. Both triggers are virtual-schedule-deterministic:
    // re-running this program replays the exact same faults.
    rt.inject_faults(
        &FaultPlan::new()
            .transient_launch_at_op(0, 2)
            .device_lost_at_op(2, 3),
    );

    let xs: Vec<f32> = (0..1 << 14).map(|i| (i % 17) as f32).collect();
    let v = Vector::from_vec(&rt, xs.clone());
    let dbl = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x; }");
    let out = v.map(&dbl)?.to_vec()?;
    assert!(out.iter().zip(&xs).all(|(o, x)| *o == 2.0 * x));

    let trace = rt.exec_trace();
    println!("map over 4 devices with 2 armed faults:");
    println!("  faults injected:   {}", trace.faults_injected);
    println!("  recovered launches: {}", trace.recoveries);
    println!("  replayed launches:  {}", trace.replayed_launches);
    println!("  re-partitions:      {}", trace.repartitions);
    println!("  lost devices:       {:?}", rt.lost_devices());
    println!("  result: bit-identical to the fault-free run\n");

    // --- Cluster-level fault: a node drops off the network mid-run. ------
    let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
    let armed = tier.fail_node("small-server-1", FaultTrigger::AtOpCount(20));
    println!("lab cluster: armed a node failure ({armed} GPUs die at op 20)");

    let rt = tier.runtime();
    let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
        .with_halo(1)
        .with_boundary(Boundary::Constant(0.0));
    let m = Matrix::from_vec(rt, 64, 64, (0..64 * 64).map(|i| (i % 13) as f32).collect())?;
    let out = heat.run(&m).checkpoint_every(2).run_iter(12)?;
    let sample = out.to_vec()?[64 * 32 + 32];

    let trace = rt.exec_trace();
    println!("12 heat sweeps survived the node loss:");
    println!("  lost devices:       {:?}", rt.lost_devices());
    println!("  recoveries:         {}", trace.recoveries);
    println!("  replayed sweeps:    {}", trace.replayed_launches);
    println!(
        "  checkpoint traffic: {:.1} KiB",
        trace.checkpoint_bytes as f64 / 1024.0
    );
    println!("  centre sample:      {sample}");
    Ok(())
}
