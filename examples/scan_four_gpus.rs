//! Figure 2 of the paper: the scan skeleton on four GPUs.
//!
//! Prints the three rows of the figure: the block-distributed input, the
//! per-device local scans, and the final result after the implicitly created
//! map skeletons add each device's predecessor totals.
//!
//! Run with `cargo run --example scan_four_gpus`.

use skelcl::prelude::*;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(4);
    let input: Vec<f32> = (1..=16).map(|i| i as f32).collect();
    println!("input (block-distributed over 4 GPUs):");
    println!(
        "  {:?}",
        input.iter().map(|v| *v as i64).collect::<Vec<_>>()
    );

    let scan = Scan::<f32>::from_source("float func(float a, float b) { return a + b; }");
    let v = Vector::from_vec(&rt, input);
    let (out, trace) = scan.run(&v).trace()?;

    println!("local scans per GPU (step 1 of Figure 2):");
    for (gpu, part) in trace.local_scans.iter().enumerate() {
        println!(
            "  GPU {gpu}: {:?}",
            part.iter().map(|v| *v as i64).collect::<Vec<_>>()
        );
    }
    println!("offsets combined by the implicit map skeletons (step 2):");
    for (gpu, offset) in trace.offsets.iter().enumerate() {
        match offset {
            Some(o) => println!("  GPU {gpu}: map adds {}", *o as i64),
            None => println!("  GPU {gpu}: (first device, no map needed)"),
        }
    }
    println!("final result:");
    println!(
        "  {:?}",
        out.to_vec()?.iter().map(|v| *v as i64).collect::<Vec<_>>()
    );
    Ok(())
}
