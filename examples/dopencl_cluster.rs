//! Section V of the paper: SkelCL on top of dOpenCL.
//!
//! "When using dOpenCL, all CPUs, GPUs and accelerators of a distributed
//! system become accessible as OpenCL devices. ... Since dOpenCL is a drop-in
//! replacement for any OpenCL implementation, it can be used together with
//! SkelCL without any modifications."
//!
//! This example assembles the paper's laboratory system — the 4-GPU Tesla
//! S1070 server plus two dual-GPU servers — as a simulated dOpenCL cluster,
//! runs the *unmodified* SkelCL SAXPY program on it, and quantifies the
//! communication penalty for different interconnects.
//!
//! Run with `cargo run --release --example dopencl_cluster`.

use skelcl::prelude::*;

use dopencl::{Cluster, NetworkModel, Node};

fn saxpy_on(profiles: Vec<oclsim::DeviceProfile>, n: usize) -> Result<(f64, f32)> {
    let rt = skelcl::init_profiles(profiles);
    let saxpy = Zip::<f32, f32, f32>::from_source(
        "float func(float x, float y, float a) { return a*x+y; }",
    );
    let x = Vector::from_vec(&rt, (0..n).map(|i| i as f32).collect());
    let y = Vector::from_vec(&rt, vec![1.0f32; n]);
    saxpy.run(&x, &y).arg(2.0f32).exec()?; // warm-up
    rt.finish_all();
    let t0 = rt.now();
    let out = saxpy.run(&x, &y).arg(2.0f32).exec()?;
    let sample = out.to_vec()?[n / 2];
    rt.finish_all();
    Ok(((rt.now() - t0).as_secs_f64(), sample))
}

fn main() -> Result<()> {
    // The paper's laboratory system: the Section IV-C GPU server plus two
    // dual-GPU servers, connected to a client without OpenCL devices.
    let cluster = Cluster::new(NetworkModel::gigabit_ethernet())
        .with_node(Node::tesla_s1070_server("tesla-server"))
        .with_node(Node::dual_gpu_server("lab-server-1"))
        .with_node(Node::dual_gpu_server("lab-server-2"));

    println!("simulated dOpenCL cluster:");
    for node in cluster.nodes() {
        println!("  node `{}` with {} GPUs", node.name, node.gpu_count());
    }
    println!(
        "  total devices visible to the client: {} ({} GPUs)",
        cluster.device_count(),
        cluster.gpu_profiles().len()
    );

    // The very same SkelCL program runs locally and on the cluster.
    let n = 1 << 21;
    let (local_s, local_sample) = saxpy_on(vec![oclsim::DeviceProfile::tesla_c1060(); 4], n)?;
    let (remote_s, remote_sample) = saxpy_on(cluster.gpu_profiles(), n)?;
    assert_eq!(local_sample, remote_sample, "same program, same result");

    println!("\nSAXPY over {n} elements (steady state, simulated seconds):");
    println!("  4 local GPUs                 : {:.3} ms", local_s * 1e3);
    println!(
        "  8 remote GPUs over 1 GbE     : {:.3} ms ({:.2}x vs local)",
        remote_s * 1e3,
        remote_s / local_s
    );

    // The interconnect determines how much the distribution costs.
    println!("\nmoving 64 MiB from the client to a server:");
    for (name, network) in [
        ("Gigabit Ethernet", NetworkModel::gigabit_ethernet()),
        ("10-Gigabit Ethernet", NetworkModel::ten_gigabit_ethernet()),
        ("InfiniBand QDR", NetworkModel::infiniband_qdr()),
    ] {
        let t = network.transfer_time(64 * 1024 * 1024);
        println!("  {name:20}: {:.3} ms", t.as_secs_f64() * 1e3);
    }
    Ok(())
}
