//! Figure 1 of the paper: the `single`, `block` and `copy` distributions of a
//! vector over two GPUs, and what changing them implies.
//!
//! Run with `cargo run --example distributions`.

use skelcl::prelude::*;

fn show(label: &str, v: &Vector<f32>) {
    println!(
        "{label:<28} sizes per device = {:?}, residence = {:?}",
        v.sizes(),
        v.residence()
    );
}

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (1..=16).map(|i| i as f32).collect());

    // Figure 1a: single — the whole vector on one device.
    v.set_distribution(Distribution::Single(0))?;
    v.copy_data_to_devices()?;
    show("single (device 0)", &v);

    // Figure 1b: block — contiguous disjoint parts.
    v.set_distribution(Distribution::Block)?;
    v.copy_data_to_devices()?;
    show("block", &v);

    // Figure 1c: copy — a full copy on every device.
    v.set_distribution(Distribution::Copy)?;
    v.copy_data_to_devices()?;
    show("copy", &v);

    // Changing away from copy with a combine function merges the per-device
    // copies (used by the OSEM error image in Listing 3).
    v.set_combine(Combine::add());
    v.set_distribution(Distribution::Block)?;
    println!(
        "after copy -> block with Combine::add(): v[0] = {}",
        v.to_vec()?[0]
    );

    Ok(())
}
