//! Gaussian blur: the classic 3×3 image filter as a MapOverlap (stencil)
//! skeleton over a [`skelcl::Matrix`].
//!
//! The user-defined function reads its neighbours with the `get(dx, dy)`
//! builtin; each device owns a block of image rows plus one halo row from
//! each neighbour ([`MatrixDistribution::OverlapBlock`]), and repeated blurs
//! chain on the devices with halo-only exchanges in between.
//!
//! Run with `cargo run --example gaussian_blur`.

use skelcl::prelude::*;

const GAUSSIAN_BLUR: &str = r#"
    float func(float x) {
        float acc = 4.0f * x;
        acc += 2.0f * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1));
        acc += get(-1, -1) + get(1, -1) + get(-1, 1) + get(1, 1);
        return acc / 16.0f;
    }
"#;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(4);
    println!("SkelCL initialised on {} devices", rt.device_count());

    // A synthetic 256×256 test image: a bright square on a dark background.
    let (rows, cols) = (256usize, 256usize);
    let image = Matrix::from_fn(&rt, rows, cols, |r, c| {
        if (96..160).contains(&r) && (96..160).contains(&c) {
            255.0f32
        } else {
            16.0
        }
    });

    let blur = MapOverlap::<f32, f32>::from_source(GAUSSIAN_BLUR)
        .with_halo(1)
        .with_boundary(Boundary::Clamp);

    // One pass: every device blurs its rows; the halo rows provide the
    // neighbours across part boundaries.
    let once = blur.run(&image).exec()?;
    println!(
        "one pass:   edge pixel (96, 128) {} -> {}",
        image.get(96, 128)?,
        once.get(96, 128)?
    );

    // Ten iterated passes with the iterative driver: between sweeps only the
    // halo rows travel between devices, never whole parts.
    rt.drain_events();
    let soft = blur.run(&image).run_iter(10)?;
    println!(
        "ten passes: edge pixel (96, 128) -> {:.2}",
        soft.get(96, 128)?
    );

    let trace = rt.exec_trace();
    println!(
        "halo traffic: {} exchanges, {:.1} KiB total ({} bytes per halo row)",
        trace.halo_transfers(),
        trace.halo_bytes() as f64 / 1024.0,
        cols * 4,
    );
    println!("virtual time: {:?}", rt.now());
    Ok(())
}
