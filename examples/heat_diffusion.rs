//! Heat diffusion: an explicit 5-point finite-difference solver for the 2-D
//! heat equation, expressed as an iterative MapOverlap (stencil) skeleton.
//!
//! `u' = u + α · (u_north + u_south + u_west + u_east − 4u)` with a constant
//! (Dirichlet) boundary of 0. The iterative driver `run_iter(n)` keeps every
//! device's rows on the device across all sweeps and re-exchanges only the
//! halo rows in between.
//!
//! Run with `cargo run --example heat_diffusion`.

use skelcl::prelude::*;

const HEAT_STEP: &str = r#"
    float func(float u, float alpha) {
        return u + alpha * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

fn main() -> Result<()> {
    let rt = skelcl::init_gpus(4);
    println!("SkelCL initialised on {} devices", rt.device_count());

    // A 128×128 plate, cold everywhere except a hot spot in the middle.
    let (rows, cols) = (128usize, 128usize);
    let plate = Matrix::from_fn(&rt, rows, cols, |r, c| {
        if (56..72).contains(&r) && (56..72).contains(&c) {
            100.0f32
        } else {
            0.0
        }
    });
    let initial_heat: f32 = plate.with_host(|h| h.iter().sum())?;

    let step = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
        .with_halo(1)
        .with_boundary(Boundary::Constant(0.0));

    rt.drain_events();
    let sweeps = 200;
    let diffused = step.run(&plate).arg(0.2f32).run_iter(sweeps)?;

    let centre = diffused.get(64, 64)?;
    let corner = diffused.get(0, 0)?;
    let remaining: f32 = diffused.with_host(|h| h.iter().sum())?;
    println!("after {sweeps} sweeps: centre {centre:.3}, corner {corner:.6}");
    println!(
        "heat: initial {initial_heat:.0}, remaining {remaining:.1} \
         (the Dirichlet boundary drains heat once the front reaches the edge)"
    );

    let trace = rt.exec_trace();
    println!(
        "halo traffic between sweeps: {} exchanges, {:.1} KiB; buffer pool hits: {}",
        trace.halo_transfers(),
        trace.halo_bytes() as f64 / 1024.0,
        trace.buffer_pool_hits,
    );
    println!("virtual time: {:?}", rt.now());
    Ok(())
}
