#!/usr/bin/env bash
# Stencil (MapOverlap) performance trajectory: regenerates BENCH_stencil.json
# at the repository root — a device-count (1-4) × halo-width (1/2/4) sweep of
# an iterative vertical-box stencil plus the Gaussian-blur and heat-diffusion
# example workloads, reporting virtual runtime and halo-exchange traffic.
#
# Usage:
#   scripts/bench_stencil.sh            # full run, rewrites BENCH_stencil.json
#   scripts/bench_stencil.sh --smoke    # small-image smoke run only (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" || "${1:-}" == "--quick" ]]; then
    cargo run --release -p skelcl_bench --bin stencil_bench -- --smoke --out /tmp/BENCH_stencil.json
else
    cargo run --release -p skelcl_bench --bin stencil_bench -- --out BENCH_stencil.json
fi
