#!/usr/bin/env bash
# Fault-tolerance trajectory: runs the faults_bench harness, which drives
# 16 sweeps of heat diffusion on the 8-GPU lab cluster in four
# configurations — {fault-free, one dual-GPU node lost mid-run} ×
# {checkpointing off, checkpoint every 2 sweeps} — and reports virtual and
# wall runtime, recovery counters and checkpoint traffic, then regenerates
# BENCH_faults.json at the repository root.
#
# The harness itself asserts the recovery contract: every faulted run's
# result is bit-identical to the fault-free run, exactly the failed node's
# devices are reported dead, and checkpointing never increases the number
# of replayed sweeps.
#
# Usage:
#   scripts/bench_faults.sh            # full run, rewrites BENCH_faults.json
#   scripts/bench_faults.sh --smoke    # small-N smoke run only (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: the layout the bench depends on. A rename in the fault
# machinery or the harness should fail here with a clear message, not deep
# inside cargo.
required_paths=(
    crates/bench/src/bin/faults_bench.rs
    crates/oclsim/src/fault.rs
    crates/core/src/recovery.rs
    crates/dopencl/src/tier.rs
    crates/core/tests/chaos.rs
)
for path in "${required_paths[@]}"; do
    if [[ ! -e "$path" ]]; then
        echo "bench_faults.sh: missing expected path: $path" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "--smoke" ]]; then
    cargo run --release -p skelcl_bench --bin faults_bench -- --smoke --out /tmp/BENCH_faults.json
else
    cargo run --release -p skelcl_bench --bin faults_bench -- --out BENCH_faults.json
fi
