#!/usr/bin/env bash
# Device-scaling performance trajectory: runs the scaling_bench harness,
# which measures wall-clock AND virtual-time elements/sec for 1-4 simulated
# devices over {map-chain, reduce, heat_diffusion} plus the lane-batched vs
# scalar VM column, and regenerates BENCH_scaling.json at the repository
# root.
#
# Wall-clock scaling requires real host cores for the per-device worker
# threads; the JSON records `host_cpus` so a single-core CI host's parity
# numbers are not mistaken for a regression.
#
# Usage:
#   scripts/bench_scaling.sh            # full run, rewrites BENCH_scaling.json
#   scripts/bench_scaling.sh --smoke    # small-N smoke run only (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: the layout the bench depends on. A rename in the engine or the
# harness should fail here with a clear message, not deep inside cargo.
required_paths=(
    crates/bench/src/bin/scaling_bench.rs
    crates/oclsim/src/queue.rs
    crates/kernel/src/vm.rs
    crates/core/tests/determinism.rs
)
for path in "${required_paths[@]}"; do
    if [[ ! -e "$path" ]]; then
        echo "bench_scaling.sh: missing expected path: $path" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "--smoke" ]]; then
    cargo run --release -p skelcl_bench --bin scaling_bench -- --smoke --out /tmp/BENCH_scaling.json
else
    cargo run --release -p skelcl_bench --bin scaling_bench -- --out BENCH_scaling.json
fi
