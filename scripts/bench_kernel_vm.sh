#!/usr/bin/env bash
# Kernel-engine performance trajectory: runs the criterion benches that cover
# the kernel language and skeletons, then regenerates BENCH_kernel_vm.json
# (elements/sec for map/zip/reduce/scan at 1M elements, AST interpreter vs
# bytecode VM) at the repository root.
#
# Usage:
#   scripts/bench_kernel_vm.sh            # full run, rewrites BENCH_kernel_vm.json
#   scripts/bench_kernel_vm.sh --quick    # small-N smoke run only (CI runs the
#                                         # kernel_vm_bench binary directly)
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: the layout the bench and its workloads depend on. A rename in
# the core container layer or the bench harness should fail here with a
# clear message, not deep inside a cargo invocation.
required_paths=(
    crates/bench/src/bin/kernel_vm_bench.rs
    crates/core/src/container.rs
    crates/core/tests/container.rs
    examples/matrix_map.rs
)
for path in "${required_paths[@]}"; do
    if [[ ! -e "$path" ]]; then
        echo "bench_kernel_vm.sh: missing expected path: $path" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "--quick" ]]; then
    cargo run --release -p skelcl_bench --bin kernel_vm_bench -- --quick --out /tmp/BENCH_kernel_vm.json
else
    cargo bench -p skelcl_bench --bench kernel_language
    cargo bench -p skelcl_bench --bench skeletons
    cargo run --release -p skelcl_bench --bin kernel_vm_bench -- --out BENCH_kernel_vm.json
fi
