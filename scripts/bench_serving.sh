#!/usr/bin/env bash
# Multi-tenant serving trajectory: runs the serving_bench harness, which
# drives the admission scheduler at 1/100/1k/10k concurrent sessions
# (4 tenants, weights 1-4, 2 simulated devices), coalesced vs uncoalesced,
# and reports jobs/sec in wall AND virtual time plus p50/p99 virtual job
# latency, then regenerates BENCH_serving.json at the repository root.
#
# The harness itself asserts the serving layer's core guarantees: coalesced
# and uncoalesced results are bit-identical, coalescing reduces the
# simulator's kernel-launch count whenever more than one job is in play,
# and a fixed submission order is deterministic (results and virtual
# clock) across repetitions.
#
# Usage:
#   scripts/bench_serving.sh            # full run, rewrites BENCH_serving.json
#   scripts/bench_serving.sh --smoke    # small-N smoke run only (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: the layout the bench depends on. A rename in the serving
# subsystem or the harness should fail here with a clear message, not deep
# inside cargo.
required_paths=(
    crates/bench/src/bin/serving_bench.rs
    crates/serving/src/scheduler.rs
    crates/serving/src/server.rs
    crates/serving/tests/serving.rs
)
for path in "${required_paths[@]}"; do
    if [[ ! -e "$path" ]]; then
        echo "bench_serving.sh: missing expected path: $path" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "--smoke" ]]; then
    cargo run --release -p skelcl_bench --bin serving_bench -- --smoke --out /tmp/BENCH_serving.json
else
    cargo run --release -p skelcl_bench --bin serving_bench -- --out BENCH_serving.json
fi
