#!/usr/bin/env bash
# Fusion performance trajectory: runs the pipeline_bench harness, which
# measures fused (FusionPolicy::Auto) vs unfused (FusionPolicy::Never)
# wall-clock AND virtual-time elements/sec for {map_map, map_map_map,
# zip_map, map_reduce} at 100k/1M elements on 1-4 simulated devices, plus
# the intermediate bytes each fused execution elides, and regenerates
# BENCH_pipeline.json at the repository root.
#
# Both lowerings produce bit-identical results (asserted by
# crates/core/tests/plan_fusion.rs); this harness only quantifies the
# launch and memory-traffic savings.
#
# Usage:
#   scripts/bench_pipeline.sh            # full run, rewrites BENCH_pipeline.json
#   scripts/bench_pipeline.sh --smoke    # small-N smoke run only (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: the layout the bench depends on. A rename in the plan
# subsystem or the harness should fail here with a clear message, not deep
# inside cargo.
required_paths=(
    crates/bench/src/bin/pipeline_bench.rs
    crates/core/src/plan.rs
    crates/core/src/fusion.rs
    crates/core/tests/plan_fusion.rs
)
for path in "${required_paths[@]}"; do
    if [[ ! -e "$path" ]]; then
        echo "bench_pipeline.sh: missing expected path: $path" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "--smoke" ]]; then
    cargo run --release -p skelcl_bench --bin pipeline_bench -- --smoke --out /tmp/BENCH_pipeline.json
else
    cargo run --release -p skelcl_bench --bin pipeline_bench -- --out BENCH_pipeline.json
fi
