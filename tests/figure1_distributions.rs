//! Figure 1 of the paper: the three vector distributions offered to the
//! programmer — `single`, `block` and `copy` — plus the semantics of
//! changing a distribution at runtime (Section III-A): implicit data
//! exchanges, and the combine step when switching away from `copy`.

use skelcl::prelude::*;
use skelcl::Residence;

/// The figure's setting: a 16-element vector on a 2-GPU system.
fn sixteen_on_two_gpus() -> (std::sync::Arc<skelcl::SkelCl>, Vector<f32>) {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (1..=16).map(|i| i as f32).collect());
    (rt, v)
}

#[test]
fn figure_1a_single_distribution_stores_everything_on_one_gpu() {
    let (_rt, v) = sixteen_on_two_gpus();
    v.set_distribution(Distribution::Single(0)).unwrap();
    v.copy_data_to_devices().unwrap();
    assert_eq!(v.sizes(), vec![16, 0]);
    // "the first GPU if not specified otherwise" — but any device may be
    // chosen explicitly.
    v.set_distribution(Distribution::Single(1)).unwrap();
    v.copy_data_to_devices().unwrap();
    assert_eq!(v.sizes(), vec![0, 16]);
    assert_eq!(
        v.to_vec().unwrap(),
        (1..=16).map(|i| i as f32).collect::<Vec<_>>()
    );
}

#[test]
fn figure_1b_block_distribution_splits_into_contiguous_disjoint_parts() {
    let (_rt, v) = sixteen_on_two_gpus();
    v.set_distribution(Distribution::Block).unwrap();
    v.copy_data_to_devices().unwrap();
    assert_eq!(v.sizes(), vec![8, 8]);
    assert_eq!(v.range_of(0), 0..8);
    assert_eq!(v.range_of(1), 8..16);
}

#[test]
fn figure_1c_copy_distribution_replicates_the_whole_vector() {
    let (_rt, v) = sixteen_on_two_gpus();
    v.set_distribution(Distribution::Copy).unwrap();
    v.copy_data_to_devices().unwrap();
    assert_eq!(v.sizes(), vec![16, 16]);
    assert_eq!(v.range_of(0), 0..16);
    assert_eq!(v.range_of(1), 0..16);
}

#[test]
fn block_parts_scale_with_the_number_of_devices() {
    for devices in 1..=4 {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, vec![0.0f32; 12]);
        v.set_distribution(Distribution::Block).unwrap();
        v.copy_data_to_devices().unwrap();
        let sizes = v.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 12, "devices = {devices}");
        assert_eq!(sizes.len(), devices);
        // Evenly sized up to rounding.
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?} are not balanced");
    }
}

#[test]
fn changing_distribution_preserves_the_observable_contents() {
    let (_rt, v) = sixteen_on_two_gpus();
    let expected: Vec<f32> = (1..=16).map(|i| i as f32).collect();
    for dist in [
        Distribution::Block,
        Distribution::Copy,
        Distribution::Single(1),
        Distribution::Block,
        Distribution::Single(0),
        Distribution::Copy,
    ] {
        v.set_distribution(dist).unwrap();
        assert_eq!(v.to_vec().unwrap(), expected);
    }
}

#[test]
fn switching_away_from_copy_keeps_the_first_devices_version_by_default() {
    // Section III-A: "If no function is specified, the copy of the first
    // device is taken as the new version of the vector; the copies of the
    // other devices are discarded."
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
    v.set_distribution(Distribution::Copy).unwrap();

    // Each device locally doubles its own full copy (copy-distributed map).
    let double = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x; }");
    let doubled = double.run(&v).exec().unwrap();
    assert_eq!(doubled.distribution(), Distribution::Copy);

    // Switching to block without a combine function keeps device 0's copy.
    doubled.set_distribution(Distribution::Block).unwrap();
    assert_eq!(doubled.to_vec().unwrap(), vec![2.0f32; 8]);
}

#[test]
fn switching_away_from_copy_with_a_user_combine_function_merges_the_copies() {
    // The OSEM error image in Listing 3 uses `Distribution::copy(add)`: the
    // per-device versions are element-wise added when the distribution
    // changes.
    let rt = skelcl::init_gpus(3);
    let c = Vector::from_vec(&rt, vec![0.0f32; 6]);
    c.set_copy_distribution_with(Combine::add()).unwrap();
    c.copy_data_to_devices().unwrap();

    // Each device adds 1 to its own copy.
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let c = inc.run(&c).exec().unwrap();
    c.set_combine(Combine::add());
    assert_eq!(c.distribution(), Distribution::Copy);

    c.set_distribution(Distribution::Block).unwrap();
    // Three devices, each contributed +1 to its own full copy → 3 everywhere.
    assert_eq!(c.to_vec().unwrap(), vec![3.0f32; 6]);
}

#[test]
fn weighted_block_distribution_respects_the_weights() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, vec![0.0f32; 100]);
    v.set_distribution(Distribution::block_weighted(&[3.0, 1.0]))
        .unwrap();
    v.copy_data_to_devices().unwrap();
    let sizes = v.sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 100);
    assert!(sizes[0] >= 70 && sizes[0] <= 80, "sizes = {sizes:?}");
}

#[test]
fn residence_tracks_where_the_valid_copy_lives() {
    let (_rt, v) = sixteen_on_two_gpus();
    assert_eq!(v.residence(), Residence::HostOnly);
    v.copy_data_to_devices().unwrap();
    assert_eq!(v.residence(), Residence::Shared);

    // A skeleton writes a device-resident output; reading it back makes it
    // shared again.
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let out = inc.run(&v).exec().unwrap();
    assert_eq!(out.residence(), Residence::DevicesOnly);
    let _ = out.to_vec().unwrap();
    assert_eq!(out.residence(), Residence::Shared);
}

#[test]
fn skeleton_execution_follows_the_input_distribution() {
    // Section III-B: every device that holds a part or a copy participates;
    // single-distributed vectors run on one GPU only.
    let rt = skelcl::init_gpus(2);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");

    for (dist, expected_kernels) in [
        (Distribution::Single(1), vec![0usize, 1]),
        (Distribution::Block, vec![1, 1]),
        (Distribution::Copy, vec![1, 1]),
    ] {
        let v = Vector::from_vec(&rt, vec![1.0f32; 32]);
        v.set_distribution(dist.clone()).unwrap();
        rt.drain_events();
        let _ = inc.run(&v).exec().unwrap();
        let events = rt.drain_events();
        let per_device: Vec<usize> = events
            .iter()
            .map(|evs| evs.iter().filter(|e| e.is_kernel()).count())
            .collect();
        assert_eq!(per_device, expected_kernels, "distribution = {dist:?}");
    }
}

#[test]
fn redistribution_moves_data_through_the_host_as_the_paper_describes() {
    // Section III-A: "data has to be downloaded to the host before it can be
    // uploaded to other devices" — redistributing a vector whose only valid
    // copy lives on device 0 therefore causes a download from device 0 and an
    // upload to device 1.
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..64).map(|i| i as f32).collect());
    v.set_distribution(Distribution::Single(0)).unwrap();
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    // The map's output is resident on device 0 only; the host copy is stale.
    let out = inc.run(&v).exec().unwrap();
    rt.drain_events();

    out.set_distribution(Distribution::Single(1)).unwrap();
    out.copy_data_to_devices().unwrap();

    let events = rt.drain_events();
    let downloads_from_0 = events[0].iter().filter(|e| e.is_read()).count();
    let uploads_to_1 = events[1].iter().filter(|e| e.is_write()).count();
    assert!(downloads_from_0 >= 1, "expected a download from device 0");
    assert!(uploads_to_1 >= 1, "expected an upload to device 1");
    assert_eq!(
        out.to_vec().unwrap(),
        (0..64).map(|i| i as f32 + 1.0).collect::<Vec<_>>()
    );
}
