//! Cross-crate behaviour of the kernel-language path: user-defined functions
//! passed as plain source strings are merged into generated kernels,
//! compiled at runtime by the (simulated) OpenCL implementation, cached per
//! context, and charged for the work they *actually* execute.

use skelcl::prelude::*;

#[test]
fn user_functions_are_merged_and_compiled_at_runtime_once() {
    // Section II-A: "SkelCL merges the user-defined function's source code
    // with pre-implemented skeleton-specific program code ... The created
    // kernel is then compiled by the underlying OpenCL implementation before
    // execution." Compilation happens once per distinct source: re-creating
    // the same skeleton hits the context's program cache.
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, vec![1.0f32; 128]);

    let first = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    first.run(&v).exec().unwrap();
    rt.finish_all();
    assert_eq!(rt.context().built_program_count(), 1);
    let after_first_build = rt.now();

    // A second skeleton object with the identical user function compiles to
    // the identical kernel source → cache hit, no further build time.
    let second = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    second.run(&v).exec().unwrap();
    rt.finish_all();
    assert_eq!(rt.context().built_program_count(), 1, "cache hit expected");

    // A different user function is a genuine new program.
    let third = Map::<f32, f32>::from_source("float func(float x) { return x - 1.0f; }");
    third.run(&v).exec().unwrap();
    rt.finish_all();
    assert_eq!(rt.context().built_program_count(), 2);
    assert!(rt.now() > after_first_build);
}

#[test]
fn runtime_compilation_is_a_one_time_cost_like_the_paper_measures() {
    // The paper excludes compilation from its runtime measurements because
    // "compilation is only required once, when launching the implementation,
    // but not during the subset iterations". Check that the first call pays
    // the build cost and subsequent calls do not.
    let rt = skelcl::init_gpus(1);
    let map = Map::<f32, f32>::from_source("float func(float x) { return 3.0f * x; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 256]);

    let t0 = rt.now();
    map.run(&v).exec().unwrap();
    rt.finish_all();
    let first_call = (rt.now() - t0).as_secs_f64();

    let t1 = rt.now();
    map.run(&v).exec().unwrap();
    rt.finish_all();
    let second_call = (rt.now() - t1).as_secs_f64();

    // The Tesla profile charges 0.15 s of build time; steady-state calls are
    // microseconds.
    assert!(
        first_call > 0.1,
        "first call pays the build: {first_call} s"
    );
    assert!(
        second_call < 0.01,
        "later calls are steady state: {second_call} s"
    );
}

#[test]
fn data_dependent_kernels_are_charged_for_the_work_they_actually_do() {
    // The interpreter measures executed flops, so a user function whose loop
    // count comes from an additional argument costs more virtual time when
    // the argument is larger — even though the static estimate cannot know
    // the trip count.
    let rt_cheap = skelcl::init_gpus(1);
    let rt_pricey = skelcl::init_gpus(1);
    let udf = r#"
        float func(float x, int iters) {
            float acc = x;
            for (int i = 0; i < iters; i++) { acc = acc * 1.0001f + 0.5f; }
            return acc;
        }
    "#;
    let data = vec![1.0f32; 16 * 1024];

    let time_with = |rt: &std::sync::Arc<skelcl::SkelCl>, iters: i32| {
        let map = Map::<f32, f32>::from_source(udf);
        let v = Vector::from_vec(rt, data.clone());
        // Warm-up: build the program and upload the data.
        map.run(&v).arg(iters).exec().unwrap();
        rt.finish_all();
        let t0 = rt.now();
        map.run(&v).arg(iters).exec().unwrap();
        rt.finish_all();
        (rt.now() - t0).as_secs_f64()
    };

    let cheap = time_with(&rt_cheap, 4);
    let pricey = time_with(&rt_pricey, 400);
    // The cheap call is dominated by the fixed launch + dispatch overheads
    // (~23 µs); the expensive one must clearly rise above that floor.
    assert!(
        pricey > cheap * 3.0,
        "100× the iterations must cost several times more virtual time ({pricey} vs {cheap})"
    );
}

#[test]
fn kernel_language_and_native_closures_agree_on_a_nontrivial_function() {
    let rt = skelcl::init_gpus(3);
    let source = Map::<f32, f32>::from_source(
        r#"
        float poly(float x) { return x * x * x - 2.0f * x + 1.0f; }
        float func(float x) { return fabs(poly(x)) + sqrt(fabs(x)); }
        "#,
    );
    let native = Map::<f32, f32>::new(|x, _| (x * x * x - 2.0 * x + 1.0).abs() + x.abs().sqrt());
    let data: Vec<f32> = (-50..50).map(|i| i as f32 * 0.25).collect();
    let v1 = Vector::from_vec(&rt, data.clone());
    let v2 = Vector::from_vec(&rt, data);
    let a = source.run(&v1).exec().unwrap().to_vec().unwrap();
    let b = native.run(&v2).exec().unwrap().to_vec().unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-4, "{x} vs {y}");
    }
}

#[test]
fn paper_user_functions_all_compile_and_run() {
    // Every user-function string that appears in the paper (or its companion
    // applications) goes through the full pipeline.
    let rt = skelcl::init_gpus(2);

    // Listing 1: SAXPY.
    let saxpy = Zip::<f32, f32, f32>::from_source(
        "float func(float x, float y, float a) { return a*x+y; }",
    );
    let x = Vector::from_vec(&rt, vec![2.0f32; 8]);
    let y = Vector::from_vec(&rt, vec![1.0f32; 8]);
    assert_eq!(
        saxpy
            .run(&x, &y)
            .arg(3.0f32)
            .exec()
            .unwrap()
            .to_vec()
            .unwrap(),
        vec![7.0f32; 8]
    );

    // Figure 2: scan with addition.
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let v = Vector::from_vec(&rt, (1..=8).collect());
    assert_eq!(
        scan.run(&v).exec().unwrap().to_vec().unwrap(),
        vec![1, 3, 6, 10, 15, 21, 28, 36]
    );

    // Reduction with addition (Section III-C).
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
    let v = Vector::from_vec(&rt, vec![0.5f32; 64]);
    assert_eq!(v.reduce(&sum).unwrap(), 32.0);

    // Listing 3, step 2: the reconstruction-image update.
    let update = Zip::<f32, f32, f32>::from_source(
        "float func(float f, float c) { return c > 0.0f ? f * c : f; }",
    );
    let f = Vector::from_vec(&rt, vec![2.0f32, 2.0, 2.0]);
    let c = Vector::from_vec(&rt, vec![0.5f32, 0.0, 3.0]);
    assert_eq!(
        update.run(&f, &c).exec().unwrap().to_vec().unwrap(),
        vec![1.0, 2.0, 6.0]
    );
}

#[test]
fn helpful_errors_for_the_mistakes_the_paper_warns_about() {
    let rt = skelcl::init_gpus(1);
    let v = Vector::from_vec(&rt, vec![1.0f32; 4]);

    // Passing a whole __kernel instead of a plain user function.
    let kernel_instead_of_udf =
        Map::<f32, f32>::from_source("__kernel void k(__global float* v) { v[0] = 0.0f; }");
    assert!(matches!(
        kernel_instead_of_udf.run(&v).exec(),
        Err(SkelError::UdfSignature(_))
    ));

    // Name errors inside the user function are reported by the checker.
    let name_error =
        Map::<f32, f32>::from_source("float func(float x) { return x + undeclared_variable; }");
    assert!(name_error.run(&v).exec().is_err());

    // A user function that returns nothing cannot customise a map.
    let void_udf = Map::<f32, f32>::from_source("void func(float x) { float y = x; }");
    assert!(void_udf.run(&v).exec().is_err());
}
