//! Listing 1 of the paper: the BLAS SAXPY computation (`Y <- a*X + Y`)
//! expressed as a zip skeleton whose user-defined function receives the
//! scalar `a` as an *additional argument*.
//!
//! These tests reproduce the listing verbatim (same user-function source
//! string) and then exercise the surrounding feature space the paper
//! describes in Section II-A: additional scalar arguments of several types,
//! additional vector arguments, input distributions, and the error paths a
//! user hits when the user function and the call do not agree.

use skelcl::prelude::*;

/// The user-defined function exactly as printed in Listing 1.
const SAXPY_UDF: &str = "float func(float x, float y, float a) { return a*x+y; }";

fn saxpy_reference(x: &[f32], y: &[f32], a: f32) -> Vec<f32> {
    x.iter().zip(y).map(|(x, y)| a * x + y).collect()
}

#[test]
fn listing_1_saxpy_matches_the_reference() {
    let rt = skelcl::init_gpus(2);
    let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);

    let size = 4096;
    let x_data: Vec<f32> = (0..size).map(|i| i as f32 * 0.25).collect();
    let y_data: Vec<f32> = (0..size).map(|i| (size - i) as f32).collect();
    let a = 3.5f32;

    let x = Vector::from_vec(&rt, x_data.clone());
    let y = Vector::from_vec(&rt, y_data.clone());
    let result = saxpy.run(&x, &y).arg(a).exec().unwrap().to_vec().unwrap();

    assert_eq!(result, saxpy_reference(&x_data, &y_data, a));
}

#[test]
fn saxpy_is_identical_on_one_two_and_four_gpus() {
    let x_data: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
    let y_data: Vec<f32> = (0..1000).map(|i| (i as f32).cos()).collect();
    let a = -1.25f32;
    let expected = saxpy_reference(&x_data, &y_data, a);

    for devices in [1usize, 2, 3, 4] {
        let rt = skelcl::init_gpus(devices);
        let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);
        let x = Vector::from_vec(&rt, x_data.clone());
        let y = Vector::from_vec(&rt, y_data.clone());
        let result = saxpy.run(&x, &y).arg(a).exec().unwrap().to_vec().unwrap();
        assert_eq!(result, expected, "devices = {devices}");
    }
}

#[test]
fn saxpy_result_can_be_fed_back_like_y_in_the_listing() {
    // Listing 1 overwrites Y with the skeleton result (`Y = saxpy(X, Y, a)`);
    // repeating the call must keep accumulating into the same logical vector.
    let rt = skelcl::init_gpus(2);
    let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);
    let x = Vector::from_vec(&rt, vec![1.0f32; 64]);
    let mut y = Vector::from_vec(&rt, vec![0.0f32; 64]);
    for _ in 0..3 {
        y = saxpy.run(&x, &y).arg(2.0f32).exec().unwrap();
    }
    // y = ((0 + 2) + 2) + 2 = 6 everywhere.
    assert_eq!(y.to_vec().unwrap(), vec![6.0f32; 64]);
}

#[test]
fn additional_arguments_of_mixed_scalar_types() {
    // Section II-A: "Besides scalar values, like shown in the example,
    // vectors can also be passed as additional arguments" — here we check
    // several scalar types in one call.
    let rt = skelcl::init_gpus(2);
    let affine = Zip::<f32, f32, f32>::from_source(
        "float func(float x, float y, float a, int shift) { return a * x + y + shift; }",
    );
    let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
    let y = Vector::from_vec(&rt, vec![10.0f32, 20.0, 30.0]);
    let out = affine
        .run(&x, &y)
        .arg(2.0f32)
        .arg(100i32)
        .exec()
        .unwrap()
        .to_vec()
        .unwrap();
    assert_eq!(out, vec![112.0, 124.0, 136.0]);
}

#[test]
fn additional_vector_argument_with_a_native_user_function() {
    // A copy-distributed lookup table passed as an additional argument —
    // the mechanism the OSEM step-1 map relies on.
    let rt = skelcl::init_gpus(2);
    let table = Vector::from_vec(&rt, vec![0.5f32, 2.0, 4.0, 8.0]);
    table.set_distribution(Distribution::Copy).unwrap();

    let scale_by_table = Zip::<f32, f32, f32>::new(|x, y, args| {
        let t = args.slice_f32(0);
        x * t[(*y as usize) % t.len()]
    });
    let x = Vector::from_vec(&rt, vec![1.0f32, 1.0, 1.0, 1.0]);
    let y = Vector::from_vec(&rt, vec![0.0f32, 1.0, 2.0, 3.0]);
    let out = scale_by_table
        .run(&x, &y)
        .arg(&table)
        .exec()
        .unwrap()
        .to_vec()
        .unwrap();
    assert_eq!(out, vec![0.5, 2.0, 4.0, 8.0]);
}

#[test]
fn saxpy_with_explicit_single_and_copy_distributions() {
    // The programmer may override the default block distribution
    // (Section III-B); the numerical result must not change.
    let x_data: Vec<f32> = (0..256).map(|i| i as f32).collect();
    let y_data = vec![1.0f32; 256];
    let expected = saxpy_reference(&x_data, &y_data, 0.5);

    for dist in [
        Distribution::Single(0),
        Distribution::Copy,
        Distribution::Block,
    ] {
        let rt = skelcl::init_gpus(3);
        let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);
        let x = Vector::from_vec(&rt, x_data.clone());
        let y = Vector::from_vec(&rt, y_data.clone());
        x.set_distribution(dist.clone()).unwrap();
        y.set_distribution(dist.clone()).unwrap();
        let out = saxpy
            .run(&x, &y)
            .arg(0.5f32)
            .exec()
            .unwrap()
            .to_vec()
            .unwrap();
        assert_eq!(out, expected, "distribution = {dist:?}");
    }
}

#[test]
fn missing_additional_argument_is_a_signature_error() {
    let rt = skelcl::init_gpus(1);
    let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);
    let x = Vector::from_vec(&rt, vec![1.0f32; 8]);
    let y = Vector::from_vec(&rt, vec![1.0f32; 8]);
    let err = saxpy.run(&x, &y).exec().unwrap_err();
    assert!(matches!(err, SkelError::UdfSignature(_)), "got {err:?}");
}

#[test]
fn mismatched_input_lengths_are_rejected() {
    let rt = skelcl::init_gpus(2);
    let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);
    let x = Vector::from_vec(&rt, vec![1.0f32; 8]);
    let y = Vector::from_vec(&rt, vec![1.0f32; 9]);
    assert!(saxpy.run(&x, &y).arg(1.0f32).exec().is_err());
}

#[test]
fn malformed_user_function_source_is_reported_not_panicked() {
    let rt = skelcl::init_gpus(1);
    let broken = Zip::<f32, f32, f32>::from_source("float func(float x, float y { return x; }");
    let x = Vector::from_vec(&rt, vec![1.0f32; 4]);
    let y = Vector::from_vec(&rt, vec![1.0f32; 4]);
    assert!(broken.run(&x, &y).exec().is_err());
}

#[test]
fn daxpy_double_precision_variant() {
    let rt = skelcl::init_gpus(2);
    let daxpy = Zip::<f64, f64, f64>::from_source(
        "double func(double x, double y, double a) { return a*x+y; }",
    );
    let x = Vector::from_vec(&rt, vec![1.0f64, 2.0, 3.0]);
    let y = Vector::from_vec(&rt, vec![0.5f64, 0.5, 0.5]);
    let out = daxpy
        .run(&x, &y)
        .arg(10.0f64)
        .exec()
        .unwrap()
        .to_vec()
        .unwrap();
    assert_eq!(out, vec![10.5, 20.5, 30.5]);
}

#[test]
fn saxpy_uploads_each_input_exactly_once() {
    // Lazy copying (Section II-B): executing the skeleton uploads the two
    // inputs once; reading the result downloads each device part once; no
    // other transfers happen.
    let rt = skelcl::init_gpus(2);
    let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY_UDF);
    let x = Vector::from_vec(&rt, vec![1.0f32; 1024]);
    let y = Vector::from_vec(&rt, vec![2.0f32; 1024]);
    let out = saxpy.run(&x, &y).arg(4.0f32).exec().unwrap();
    let _ = out.to_vec().unwrap();

    let events = rt.drain_events();
    let uploads: usize = events.iter().flatten().filter(|e| e.is_write()).count();
    let downloads: usize = events.iter().flatten().filter(|e| e.is_read()).count();
    // Two inputs × two devices (block halves) = 4 uploads; one output × two
    // devices = 2 downloads.
    assert_eq!(uploads, 4, "one upload per input part");
    assert_eq!(downloads, 2, "one download per output part");
}
