//! Figure 3 and Listing 3 of the paper: the five phases of one list-mode
//! OSEM subset iteration (upload, step 1, redistribution, step 2, download)
//! expressed through SkelCL distribution changes, and the correctness of the
//! resulting reconstruction against the sequential reference of Listing 2.

use skelcl::prelude::*;
use skelcl::DeviceSelection;

use osem::{sequential, ReconstructionConfig, SkelclOsem};

fn small_config() -> ReconstructionConfig {
    ReconstructionConfig::test_scale()
}

#[test]
fn one_subset_iteration_produces_the_five_phases_of_figure_3() {
    let config = small_config();
    let subsets = sequential::generate_subsets(&config);

    let rt = SkelCl::init(DeviceSelection::Gpus(2));
    let osem = SkelclOsem::new(rt.clone(), config.clone());
    osem.warmup(&subsets[0]).unwrap();

    let mut f = Vector::filled(&rt, config.volume.voxel_count(), 1.0f32);
    let timing = osem.process_subset(&subsets[0], &mut f).unwrap();

    // Every phase exists and the total is the sum of the parts.
    assert!(timing.step1_s > 0.0, "step 1 computes the error image");
    assert!(
        timing.step2_s > 0.0,
        "step 2 updates the reconstruction image"
    );
    assert!(
        timing.redistribution_s > 0.0,
        "switching PSD → ISD moves the error and reconstruction images"
    );
    let total = timing.total_s();
    let sum = timing.upload_s
        + timing.step1_s
        + timing.redistribution_s
        + timing.step2_s
        + timing.download_s;
    assert!((total - sum).abs() < 1e-12);

    // Step 1 (the per-event path tracing) dominates the iteration, as in the
    // paper's workload.
    assert!(
        timing.step1_s > timing.step2_s,
        "step 1 ({}) should dominate step 2 ({})",
        timing.step1_s,
        timing.step2_s
    );
}

#[test]
fn skelcl_reconstruction_matches_the_sequential_listing_2_reference() {
    let config = small_config();
    let subsets = sequential::generate_subsets(&config);

    // Sequential reference: Listing 2.
    let mut reference = vec![1.0f32; config.volume.voxel_count()];
    for s in &subsets {
        sequential::process_subset(&config, s, &mut reference);
    }

    for gpus in [1usize, 2, 4] {
        let rt = SkelCl::init(DeviceSelection::Gpus(gpus));
        let osem = SkelclOsem::new(rt, config.clone());
        let image = osem.reconstruct_subsets(&subsets).unwrap();
        let diff = osem::max_relative_difference(&image, &reference);
        assert!(
            diff < 1e-3,
            "parallel reconstruction deviates by {diff} on {gpus} GPUs"
        );
    }
}

#[test]
fn all_three_implementations_compute_the_same_image() {
    let config = small_config();
    let subsets = sequential::generate_subsets(&config);

    let rt = SkelCl::init(DeviceSelection::Gpus(2));
    let img_skel = SkelclOsem::new(rt, config.clone())
        .reconstruct_subsets(&subsets)
        .unwrap();
    let img_ocl = osem::OpenClOsem::new(2, config.clone())
        .unwrap()
        .reconstruct_subsets(&subsets)
        .unwrap();
    let img_cuda = osem::CudaOsem::new(2, config)
        .unwrap()
        .reconstruct_subsets(&subsets)
        .unwrap();

    assert!(osem::max_relative_difference(&img_skel, &img_ocl) < 1e-3);
    assert!(osem::max_relative_difference(&img_skel, &img_cuda) < 1e-3);
    assert!(osem::max_relative_difference(&img_ocl, &img_cuda) < 1e-3);
}

#[test]
fn reconstruction_is_deterministic_for_a_fixed_seed() {
    let config = small_config();
    let subsets_a = sequential::generate_subsets(&config);
    let subsets_b = sequential::generate_subsets(&config);
    assert_eq!(subsets_a.len(), subsets_b.len());
    for (a, b) in subsets_a.iter().zip(&subsets_b) {
        assert_eq!(a, b, "event generation must be reproducible");
    }
}

#[test]
fn more_events_increase_step_1_time_but_not_step_2() {
    // Step 1 is event-bound (PSD), step 2 is voxel-bound (ISD): ten times the
    // events must clearly grow step 1 while leaving step 2 unchanged. (At
    // very small event counts step 1 is dominated by the fixed image uploads,
    // so the comparison uses a 10× spread.)
    let base = small_config().with_events_per_subset(2_000);
    let heavy = small_config().with_events_per_subset(20_000);

    let time_phases = |config: &ReconstructionConfig| {
        let subsets = sequential::generate_subsets(config);
        let rt = SkelCl::init(DeviceSelection::Gpus(2));
        let osem = SkelclOsem::new(rt.clone(), config.clone());
        osem.warmup(&subsets[0]).unwrap();
        let mut f = Vector::filled(&rt, config.volume.voxel_count(), 1.0f32);
        osem.process_subset(&subsets[0], &mut f).unwrap()
    };

    let t_base = time_phases(&base);
    let t_heavy = time_phases(&heavy);
    assert!(
        t_heavy.step1_s > t_base.step1_s * 2.0,
        "step 1 must scale with the event count ({} vs {})",
        t_heavy.step1_s,
        t_base.step1_s
    );
    let step2_ratio = t_heavy.step2_s / t_base.step2_s;
    assert!(
        step2_ratio < 1.5,
        "step 2 depends on the volume, not the events (ratio {step2_ratio})"
    );
}

#[test]
fn subset_iterations_refine_the_image_towards_the_phantom() {
    // After a few subset iterations the reconstruction must correlate better
    // with the phantom's reference image than the flat initial image does.
    let config = small_config().with_events_per_subset(2_000).with_subsets(4);
    let reference = config.phantom.reference_image(&config.volume);

    let rt = SkelCl::init(DeviceSelection::Gpus(2));
    let osem = SkelclOsem::new(rt, config.clone());
    let image = osem.reconstruct().unwrap();

    let correlation = |a: &[f32], b: &[f32]| {
        let ma = a.iter().sum::<f32>() / a.len() as f32;
        let mb = b.iter().sum::<f32>() / b.len() as f32;
        let mut num = 0.0f64;
        let mut da = 0.0f64;
        let mut db = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            num += ((x - ma) * (y - mb)) as f64;
            da += ((x - ma) * (x - ma)) as f64;
            db += ((y - mb) * (y - mb)) as f64;
        }
        num / (da.sqrt() * db.sqrt() + 1e-12)
    };

    let flat = vec![1.0f32; reference.len()];
    let corr_reconstructed = correlation(&image, &reference);
    let corr_flat = correlation(&flat, &reference);
    assert!(
        corr_reconstructed > corr_flat + 0.1,
        "reconstruction ({corr_reconstructed:.3}) must beat the flat image ({corr_flat:.3})"
    );
}

#[test]
fn figure_4a_loc_breakdown_orders_the_implementations_as_the_paper_does() {
    // SkelCL is by far the shortest host program; OpenCL the longest; the
    // multi-GPU delta of SkelCL is a handful of lines while the low-level
    // versions need tens of additional lines.
    let rows = osem::figure_4a();
    let find = |imp: osem::Implementation| {
        rows.iter()
            .find(|(i, _)| *i == imp)
            .map(|(_, b)| b)
            .unwrap()
    };
    let skel = find(osem::Implementation::SkelCl);
    let ocl = find(osem::Implementation::OpenCl);
    let cuda = find(osem::Implementation::Cuda);

    assert!(skel.host_single < cuda.host_single && cuda.host_single < ocl.host_single);
    assert!(skel.host_multi_total() < cuda.host_multi_total());
    assert!(
        skel.host_multi_extra <= 12,
        "SkelCL multi-GPU delta is a few lines, got {}",
        skel.host_multi_extra
    );
    assert!(
        ocl.host_multi_extra >= 20,
        "OpenCL needs explicit multi-GPU code, got {}",
        ocl.host_multi_extra
    );
    assert!(
        cuda.host_multi_extra >= 20,
        "CUDA needs explicit multi-GPU code, got {}",
        cuda.host_multi_extra
    );
}
