//! Figure 2 of the paper: the scan skeleton on four GPUs.
//!
//! The figure shows the input `[1..16]` block-distributed over four devices,
//! the per-device local scans, the offsets (6+4, 18+8, 30+12 → 10, 36, 78)
//! added by implicitly created map skeletons, and the final prefix-sum
//! vector. These tests reproduce the figure exactly and then cover the
//! surrounding behaviour: other device counts, uneven part sizes,
//! non-commutative operators, and the distribution of the output.

use skelcl::prelude::*;

fn prefix_sums(data: &[i32]) -> Vec<i32> {
    let mut acc = 0;
    data.iter()
        .map(|x| {
            acc += x;
            acc
        })
        .collect()
}

#[test]
fn figure_2_trace_on_four_gpus_matches_every_stage() {
    let rt = skelcl::init_gpus(4);
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let input: Vec<i32> = (1..=16).collect();
    let v = Vector::from_vec(&rt, input.clone());

    let (out, trace) = scan.run(&v).trace().unwrap();

    // Second row of the figure: the local (per-device) scans.
    assert_eq!(
        trace.local_scans,
        vec![
            vec![1, 3, 6, 10],
            vec![5, 11, 18, 26],
            vec![9, 19, 30, 42],
            vec![13, 27, 42, 58],
        ]
    );

    // The offsets combined by the implicit map skeletons: the first device
    // needs none; the others receive the totals of all their predecessors
    // (6+4 = 10, 18+8+10 = 36, 30+12+36 = 78 in the figure's notation).
    assert_eq!(trace.offsets, vec![None, Some(10), Some(36), Some(78)]);

    // Bottom row: the complete prefix sums.
    assert_eq!(out.to_vec().unwrap(), prefix_sums(&input));
}

#[test]
fn scan_output_is_block_distributed_as_section_iii_c_states() {
    let rt = skelcl::init_gpus(4);
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let v = Vector::from_vec(&rt, (1..=16).collect());
    let out = scan.run(&v).exec().unwrap();
    assert_eq!(out.distribution(), Distribution::Block);
    assert_eq!(out.sizes(), vec![4, 4, 4, 4]);
}

#[test]
fn scan_matches_the_sequential_prefix_on_any_device_count() {
    let input: Vec<i32> = (0..97).map(|i| (i * 7) % 23 - 11).collect();
    let expected = prefix_sums(&input);
    for devices in 1..=4 {
        let rt = skelcl::init_gpus(devices);
        let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
        let v = Vector::from_vec(&rt, input.clone());
        assert_eq!(
            scan.run(&v).exec().unwrap().to_vec().unwrap(),
            expected,
            "devices = {devices}"
        );
    }
}

#[test]
fn scan_handles_lengths_that_do_not_divide_evenly() {
    // 10 elements over 4 devices: parts of 3/2/3/2 (or similar) — the
    // predecessor offsets must still be correct.
    let rt = skelcl::init_gpus(4);
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let input: Vec<i32> = (1..=10).collect();
    let v = Vector::from_vec(&rt, input.clone());
    assert_eq!(
        scan.run(&v).exec().unwrap().to_vec().unwrap(),
        prefix_sums(&input)
    );
}

#[test]
fn scan_of_a_single_element_and_of_fewer_elements_than_devices() {
    let rt = skelcl::init_gpus(4);
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");

    let one = Vector::from_vec(&rt, vec![42]);
    assert_eq!(scan.run(&one).exec().unwrap().to_vec().unwrap(), vec![42]);

    let three = Vector::from_vec(&rt, vec![1, 2, 3]);
    assert_eq!(
        scan.run(&three).exec().unwrap().to_vec().unwrap(),
        vec![1, 3, 6]
    );
}

#[test]
fn scan_with_a_non_commutative_but_associative_operator() {
    // The paper requires associativity but not commutativity. The "right
    // projection" operator `a ⊕ b = b` is associative and non-commutative;
    // its prefix scan is the input itself, but only if the implementation
    // preserves the left-to-right order across device boundaries.
    let rt = skelcl::init_gpus(3);
    let rightmost = Scan::<i32>::from_source("int func(int a, int b) { return b; }");
    let input: Vec<i32> = vec![7, 1, 9, 4, 2, 8, 6, 3];
    let v = Vector::from_vec(&rt, input.clone());
    assert_eq!(
        rightmost.run(&v).exec().unwrap().to_vec().unwrap(),
        input,
        "left-to-right order must be preserved across device boundaries"
    );
}

#[test]
fn scan_with_maximum_operator() {
    let rt = skelcl::init_gpus(4);
    let running_max = Scan::<i32>::from_source("int func(int a, int b) { return a > b ? a : b; }");
    let input = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8];
    let v = Vector::from_vec(&rt, input.clone());
    let mut acc = i32::MIN;
    let expected: Vec<i32> = input
        .iter()
        .map(|x| {
            acc = acc.max(*x);
            acc
        })
        .collect();
    assert_eq!(
        running_max.run(&v).exec().unwrap().to_vec().unwrap(),
        expected
    );
}

#[test]
fn scan_with_a_native_closure_operator_matches_the_source_version() {
    let rt = skelcl::init_gpus(4);
    let input: Vec<f32> = (1..=32).map(|i| i as f32 * 0.5).collect();

    let source = Scan::<f32>::from_source("float func(float a, float b) { return a + b; }");
    let native = Scan::<f32>::new(|a, b| a + b);

    let v1 = Vector::from_vec(&rt, input.clone());
    let v2 = Vector::from_vec(&rt, input);
    assert_eq!(
        source.run(&v1).exec().unwrap().to_vec().unwrap(),
        native.run(&v2).exec().unwrap().to_vec().unwrap()
    );
}

#[test]
fn scan_rejects_non_operator_user_functions() {
    let rt = skelcl::init_gpus(2);
    // A unary function is not a binary operator.
    let bad = Scan::<f32>::from_source("float func(float a) { return a; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
    assert!(bad.run(&v).exec().is_err());

    // Mixed types are not (T, T) -> T either.
    let mixed = Scan::<f32>::from_source("float func(float a, int b) { return a; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
    assert!(mixed.run(&v).exec().is_err());
}

#[test]
fn scan_downloads_only_the_per_device_totals_between_the_two_steps() {
    // Step 2 of the paper's description: "The results of all GPUs are
    // downloaded to the host" — the implementation only needs the *totals*
    // (one element per device), not the full parts.
    let rt = skelcl::init_gpus(4);
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let v = Vector::from_vec(&rt, (1..=4096).collect());
    v.copy_data_to_devices().unwrap();
    rt.drain_events();

    let _ = scan.run(&v).exec().unwrap();
    let events = rt.drain_events();
    let downloaded_bytes: usize = events
        .iter()
        .flatten()
        .filter(|e| e.is_read())
        .map(|e| e.bytes)
        .sum();
    // Far less than the vector itself (16 KiB): only a handful of scalars.
    assert!(
        downloaded_bytes <= 64,
        "scan downloaded {downloaded_bytes} bytes between its steps"
    );
}
