//! Workspace-level integration tests: behaviour that spans the kernel
//! language, the device simulator, the SkelCL library, the dOpenCL layer and
//! the applications. Property-based tests check the skeleton semantics
//! against sequential references for arbitrary inputs and device counts.

use proptest::prelude::*;

use skelcl::prelude::*;
use skelcl::{DeviceSelection, SkelCl, StaticScheduler};

// ---------------------------------------------------------------------------
// Skeleton semantics across device counts (Sections II-A and III-C)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn map_equals_sequential_for_any_input(
        data in prop::collection::vec(-1.0e3f32..1.0e3, 1..200),
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let map = Map::<f32, f32>::from_source(
            "float func(float x) { return 2.0f * x + 1.0f; }",
        );
        let v = Vector::from_vec(&rt, data.clone());
        let out = map.run(&v).exec().unwrap().to_vec().unwrap();
        let expected: Vec<f32> = data.iter().map(|x| 2.0 * x + 1.0).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn zip_with_additional_argument_equals_sequential(
        data in prop::collection::vec((-1.0e3f32..1.0e3, -1.0e3f32..1.0e3), 1..200),
        a in -10.0f32..10.0,
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let saxpy = Zip::<f32, f32, f32>::from_source(
            "float func(float x, float y, float a) { return a * x + y; }",
        );
        let xs: Vec<f32> = data.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
        let xv = Vector::from_vec(&rt, xs.clone());
        let yv = Vector::from_vec(&rt, ys.clone());
        let out = saxpy.run(&xv, &yv).arg(a).exec().unwrap().to_vec().unwrap();
        let expected: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| a * x + y).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn reduce_sum_is_independent_of_device_count(
        data in prop::collection::vec(-100i32..100, 1..300),
        devices in 1usize..=4,
    ) {
        // Integer addition is exactly associative, so the multi-device result
        // must equal the sequential sum bit for bit.
        let rt = skelcl::init_gpus(devices);
        let sum = Reduce::<i32>::from_source("int func(int a, int b) { return a + b; }");
        let v = Vector::from_vec(&rt, data.clone());
        let result = v.reduce(&sum).unwrap();
        prop_assert_eq!(result, data.iter().sum::<i32>());
    }

    #[test]
    fn scan_matches_sequential_prefix_for_any_device_count(
        data in prop::collection::vec(-100i32..100, 1..300),
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
        let v = Vector::from_vec(&rt, data.clone());
        let out = scan.run(&v).exec().unwrap().to_vec().unwrap();
        let mut acc = 0;
        let expected: Vec<i32> = data.iter().map(|x| { acc += x; acc }).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn redistribution_preserves_contents(
        data in prop::collection::vec(-1.0e6f32..1.0e6, 1..256),
        devices in 1usize..=4,
        order in prop::collection::vec(0usize..4, 1..6),
    ) {
        // Cycling through arbitrary sequences of distributions never changes
        // what the vector contains.
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        for step in order {
            let dist = match step {
                0 => Distribution::Block,
                1 => Distribution::Copy,
                2 => Distribution::Single(0),
                _ => Distribution::block_weighted(&[2.0, 1.0, 1.0, 1.0][..devices]),
            };
            v.set_distribution(dist).unwrap();
            v.copy_data_to_devices().unwrap();
        }
        prop_assert_eq!(v.to_vec().unwrap(), data);
    }

    #[test]
    fn kernel_language_matches_native_closure(
        data in prop::collection::vec(-50.0f32..50.0, 1..100),
    ) {
        // The same user function expressed as kernel-language source and as a
        // Rust closure must produce identical results.
        let rt = skelcl::init_gpus(2);
        let source = Map::<f32, f32>::from_source(
            "float func(float x) { return x * x - 3.0f * x + 1.0f; }",
        );
        let native = Map::<f32, f32>::new(|x, _| x * x - 3.0 * x + 1.0);
        let v1 = Vector::from_vec(&rt, data.clone());
        let v2 = Vector::from_vec(&rt, data);
        prop_assert_eq!(
            source.run(&v1).exec().unwrap().to_vec().unwrap(),
            native.run(&v2).exec().unwrap().to_vec().unwrap()
        );
    }
}

// ---------------------------------------------------------------------------
// Cross-crate scenarios
// ---------------------------------------------------------------------------

#[test]
fn listing_3_pipeline_runs_on_dopencl_devices() {
    // SkelCL on top of dOpenCL: the OSEM reconstruction runs unmodified on
    // the remote GPUs of the simulated lab cluster (Section V).
    let cluster = dopencl::Cluster::lab_cluster();
    let profiles: Vec<_> = cluster.gpu_profiles().into_iter().take(4).collect();
    let rt = skelcl::init_profiles(profiles);

    let config = osem::ReconstructionConfig::test_scale();
    let subsets = osem::sequential::generate_subsets(&config);
    let mut reference = vec![1.0f32; config.volume.voxel_count()];
    for s in &subsets {
        osem::sequential::process_subset(&config, s, &mut reference);
    }
    let osem_impl = osem::SkelclOsem::new(rt, config);
    let image = osem_impl.reconstruct_subsets(&subsets).unwrap();
    assert!(osem::max_relative_difference(&image, &reference) < 1e-3);
}

#[test]
fn osem_three_implementations_agree_on_two_gpus() {
    let config = osem::ReconstructionConfig::test_scale();
    let subsets = osem::sequential::generate_subsets(&config);

    let rt = SkelCl::init(DeviceSelection::Gpus(2));
    let skel = osem::SkelclOsem::new(rt, config.clone());
    let img_skel = skel.reconstruct_subsets(&subsets).unwrap();

    let ocl = osem::OpenClOsem::new(2, config.clone()).unwrap();
    let img_ocl = ocl.reconstruct_subsets(&subsets).unwrap();

    let cuda = osem::CudaOsem::new(2, config).unwrap();
    let img_cuda = cuda.reconstruct_subsets(&subsets).unwrap();

    assert!(osem::max_relative_difference(&img_skel, &img_ocl) < 1e-3);
    assert!(osem::max_relative_difference(&img_skel, &img_cuda) < 1e-3);
}

#[test]
fn skelcl_overhead_over_opencl_is_bounded() {
    // Section IV-C: "SkelCL introduces only a moderate overhead of less than
    // 5%" compared to OpenCL. The simulator reproduces the mechanism (extra
    // per-skeleton dispatch work on an identical execution plan); assert a
    // conservative bound.
    let config = osem::ReconstructionConfig::test_scale().with_events_per_subset(20_000);
    let subsets = osem::sequential::generate_subsets(&config);

    let rt = SkelCl::init(DeviceSelection::Gpus(4));
    let skel = osem::SkelclOsem::new(rt, config.clone());
    let (t_skel, _) = skel.time_one_subset(&subsets[0]).unwrap();

    let ocl = osem::OpenClOsem::new(4, config).unwrap();
    let (t_ocl, _) = ocl.time_one_subset(&subsets[0]).unwrap();

    let overhead = (t_skel / t_ocl - 1.0) * 100.0;
    assert!(
        overhead < 10.0,
        "SkelCL overhead over OpenCL is {overhead:.1} % (SkelCL {t_skel:.6} s, OpenCL {t_ocl:.6} s)"
    );
}

#[test]
fn heterogeneous_scheduler_improves_makespan() {
    let row = skelcl_bench::sched::even_vs_weighted(200_000).unwrap();
    assert!(
        row.speedup() > 1.05,
        "speed-up was only {:.3}",
        row.speedup()
    );
}

#[test]
fn scheduler_places_small_final_reduction_on_the_cpu() {
    let rt = skelcl::init_profiles(vec![
        oclsim::DeviceProfile::tesla_c1060(),
        oclsim::DeviceProfile::tesla_c1060(),
        oclsim::DeviceProfile::xeon_e5520(),
    ]);
    let scheduler = StaticScheduler::analytical(&rt);
    let (_, is_cpu) = scheduler
        .final_reduce_placement(8, 4, CostHint::new(1.0, 8.0))
        .unwrap();
    assert!(is_cpu);
}

#[test]
fn figure_4a_and_4b_harnesses_produce_reports() {
    let loc_report = skelcl_bench::fig4a::report();
    assert!(loc_report.contains("SkelCL") && loc_report.contains("kernel"));

    let config = osem::ReconstructionConfig::test_scale().with_events_per_subset(5_000);
    let rows = skelcl_bench::fig4b::measure(&config, &[1, 2]);
    let runtime_report = skelcl_bench::fig4b::report(&rows);
    assert!(runtime_report.contains("GPUs"));
    assert_eq!(rows.len(), 2);
}

#[test]
fn chained_skeletons_avoid_all_intermediate_transfers() {
    // map → map → reduce: only the initial upload and the final single-value
    // reads may move data.
    let rt = skelcl::init_gpus(4);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let dbl = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 4096]);

    let a = inc.run(&v).exec().unwrap();
    rt.drain_events();
    let b = dbl.run(&a).exec().unwrap();
    let result = b.reduce(&sum).unwrap();
    assert_eq!(result, 4.0 * 4096.0);

    let events = rt.drain_events();
    let uploads = events
        .iter()
        .flatten()
        .filter(|e| matches!(e.kind, oclsim::CommandKind::WriteBuffer))
        .count();
    assert_eq!(uploads, 0, "no re-uploads between chained skeletons");
}
