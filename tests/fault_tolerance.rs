//! Cluster-level fault tolerance: a whole node of the paper's lab cluster
//! (Section IV-C / V) dies mid-way through an iterative stencil run, and
//! the recovery layer replays the computation on the surviving nodes —
//! bit-identically to a fault-free run.
//!
//! The scenario stacks every layer of the stack: `dopencl` models the
//! three-server cluster and arms the node failure, `oclsim` injects the
//! deterministic device deaths, and the `skelcl` recovery layer
//! re-partitions and replays from the `run_iter` checkpoints.

use dopencl::{Cluster, ClusterTier};
use skelcl::oclsim::FaultTrigger;
use skelcl::prelude::*;

/// Explicit 5-point heat step (halo 1), matching `host_heat` bit for bit.
const HEAT_STEP: &str = r#"
    float func(float u) {
        return u + 0.2f * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

/// Host reference for one `HEAT_STEP` sweep with a constant-0 boundary.
fn host_heat(input: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let (r_max, c_max) = (rows as i64, cols as i64);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..r_max {
        for c in 0..c_max {
            let probe = |dx: i64, dy: i64| -> f32 {
                let (rr, cc) = (r + dy, c + dx);
                if !(0..r_max).contains(&rr) || !(0..c_max).contains(&cc) {
                    return 0.0;
                }
                input[(rr * c_max + cc) as usize]
            };
            let u = input[(r * c_max + c) as usize];
            out[(r * c_max + c) as usize] =
                u + 0.2f32 * (probe(0, -1) + probe(0, 1) + probe(-1, 0) + probe(1, 0) - 4.0f32 * u);
        }
    }
    out
}

/// Small integers: every arithmetic result stays exact in f32, so
/// "bit-identical" holds regardless of how recovery re-partitions.
fn test_data(len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i * 7 + 3) % 16) as f32).collect()
}

fn heat() -> MapOverlap<f32, f32> {
    MapOverlap::<f32, f32>::from_source(HEAT_STEP)
        .with_halo(1)
        .with_boundary(Boundary::Constant(0.0))
}

fn run_heat(tier: &ClusterTier, rows: usize, cols: usize, sweeps: usize) -> Vec<f32> {
    let rt = tier.runtime();
    let m = Matrix::from_vec(rt, rows, cols, test_data(rows * cols)).unwrap();
    let out = heat().run(&m).checkpoint_every(2).run_iter(sweeps).unwrap();
    out.to_vec().unwrap()
}

#[test]
fn node_death_mid_run_iter_recovers_bit_identically_on_the_lab_cluster() {
    let (rows, cols, sweeps) = (48, 16, 8);
    let mut expected = test_data(rows * cols);
    for _ in 0..sweeps {
        expected = host_heat(&expected, rows, cols);
    }

    // Fault-free reference on the full 8-GPU tier.
    let reference = run_heat(
        &ClusterTier::launch_gpus(&Cluster::lab_cluster()),
        rows,
        cols,
        sweeps,
    );
    assert_eq!(
        reference, expected,
        "fault-free run matches the host oracle"
    );

    // Same computation, but one dual-GPU server drops off the network
    // mid-run: its two devices die at their 20th op, well inside the sweep
    // loop.
    let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
    let armed = tier.fail_node("small-server-1", FaultTrigger::AtOpCount(20));
    assert_eq!(armed, 2, "the node failure arms both of the server's GPUs");
    let survived = run_heat(&tier, rows, cols, sweeps);
    assert_eq!(
        survived, reference,
        "the recovered run must be bit-identical to the fault-free run"
    );

    let rt = tier.runtime();
    let mut lost = rt.lost_devices();
    lost.sort_unstable();
    assert_eq!(lost, tier.devices_of("small-server-1"));
    let trace = rt.exec_trace();
    assert!(trace.faults_injected >= 2, "both GPUs reported their death");
    assert!(trace.recoveries >= 1, "the sweep loop recovered");
    assert!(trace.repartitions >= 1, "work moved onto the survivors");
    assert!(trace.checkpoint_bytes > 0, "checkpointing was armed");
}

#[test]
fn node_topology_guides_recovery_weights() {
    // The tier registers the two-level (node / device) topology with the
    // runtime; after a node failure, the recovery weights zero out every
    // device of the dead node and keep every survivor.
    let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
    let rt = tier.runtime();
    assert_eq!(rt.device_count(), 8);
    assert_eq!(rt.node_topology().len(), 8);
    assert_eq!(tier.devices_of("gpu-server"), vec![0, 1, 2, 3]);

    tier.fail_node("small-server-2", FaultTrigger::AtOpCount(1));
    // Trip the armed faults with a real launch; recovery replays it on the
    // surviving six devices.
    let v = Vector::from_vec(rt, test_data(96));
    let dbl = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x; }");
    let out = v.map(&dbl).unwrap().to_vec().unwrap();
    assert_eq!(
        out,
        test_data(96).iter().map(|x| 2.0 * x).collect::<Vec<_>>()
    );

    let weights = rt.recovery_weights().expect("six devices survive");
    for &d in &tier.devices_of("small-server-2") {
        assert_eq!(weights[d], 0.0, "dead node's devices get no work");
    }
    assert!(
        tier.devices_of("gpu-server")
            .iter()
            .chain(tier.devices_of("small-server-1").iter())
            .all(|&d| weights[d] > 0.0),
        "every surviving device keeps a share"
    );
}

#[test]
fn losing_two_of_three_nodes_still_recovers() {
    let (rows, cols, sweeps) = (32, 12, 6);
    let mut expected = test_data(rows * cols);
    for _ in 0..sweeps {
        expected = host_heat(&expected, rows, cols);
    }
    let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
    tier.fail_node("small-server-1", FaultTrigger::AtOpCount(8));
    tier.fail_node("small-server-2", FaultTrigger::AtOpCount(14));
    let out = run_heat(&tier, rows, cols, sweeps);
    assert_eq!(
        out, expected,
        "only gpu-server survives, result still exact"
    );
    assert_eq!(tier.runtime().lost_devices().len(), 4);
    assert!(tier.runtime().exec_trace().repartitions >= 1);
}
