//! Section V of the paper: enhancing SkelCL towards distributed,
//! heterogeneous ("exascale") systems.
//!
//! The claims under test are qualitative: (1) with dOpenCL, the devices of
//! several nodes appear to the application as local OpenCL devices, so
//! SkelCL programs run on them unmodified; (2) communication with remote
//! devices is more expensive than with local ones; (3) heterogeneous
//! devices need non-evenly sized workloads, chosen by a static scheduler
//! with performance prediction; (4) the final step of a reduction is better
//! placed on a CPU when only a few intermediate results remain.

use skelcl::prelude::*;
use skelcl::StaticScheduler;

use dopencl::{Cluster, NetworkModel, Node};

#[test]
fn lab_cluster_exposes_all_remote_devices_as_local_ones() {
    // "in our laboratory we use dOpenCL to connect our GPU system described
    // in Section IV-C and two other GPU systems, each equipped with 1
    // multi-core CPU and 2 GPUs (3 servers) ... all 8 GPUs and 3 multi-core
    // CPUs of this distributed system appear as if they were local devices."
    let cluster = Cluster::lab_cluster();
    assert_eq!(cluster.gpu_profiles().len(), 8, "8 GPUs");
    assert_eq!(cluster.device_count(), 11, "8 GPUs + 3 CPUs");
    assert_eq!(cluster.nodes().len(), 3, "3 servers");

    // A SkelCL runtime built from the cluster's profiles behaves like any
    // local runtime.
    let rt = skelcl::init_profiles(cluster.device_profiles());
    assert_eq!(rt.device_count(), 11);
}

#[test]
fn skelcl_programs_run_unmodified_on_the_cluster_and_locally() {
    let data: Vec<f32> = (0..2048).map(|i| (i % 97) as f32).collect();
    let expected: Vec<f32> = data.iter().map(|x| x * x + 1.0).collect();

    let run_on = |profiles: Vec<oclsim::DeviceProfile>| {
        let rt = skelcl::init_profiles(profiles);
        let map = Map::<f32, f32>::from_source("float func(float x) { return x * x + 1.0f; }");
        let v = Vector::from_vec(&rt, data.clone());
        map.run(&v).exec().unwrap().to_vec().unwrap()
    };

    // Local 4-GPU system vs the distributed 11-device system: identical
    // results from the same program text.
    let local = run_on(vec![oclsim::DeviceProfile::tesla_c1060(); 4]);
    let remote = run_on(Cluster::lab_cluster().device_profiles());
    assert_eq!(local, expected);
    assert_eq!(remote, expected);
}

#[test]
fn remote_transfers_pay_the_network_penalty() {
    let cluster = Cluster::lab_cluster();
    let bytes = 4 * 1024 * 1024;

    // The offload overhead (client → server network hop) is strictly larger
    // than zero and grows with the payload.
    let small = cluster.offload_overhead(64 * 1024);
    let large = cluster.offload_overhead(bytes);
    assert!(large > small);

    // A remote transfer (PCIe + network) is slower than the same PCIe
    // transfer on a local device.
    let local_pcie = oclsim::DeviceProfile::tesla_c1060().transfer_time(bytes);
    let network = cluster.network().transfer_time(bytes);
    assert!(
        network + local_pcie > local_pcie,
        "the network hop must add cost"
    );
}

#[test]
fn faster_interconnects_reduce_the_network_cost() {
    let bytes = 16 * 1024 * 1024;
    let gig = NetworkModel::gigabit_ethernet().transfer_time(bytes);
    let ten_gig = NetworkModel::ten_gigabit_ethernet().transfer_time(bytes);
    let ib = NetworkModel::infiniband_qdr().transfer_time(bytes);
    assert!(gig > ten_gig, "10 GbE beats 1 GbE");
    assert!(ten_gig > ib, "InfiniBand QDR beats 10 GbE");
}

#[test]
fn cluster_nodes_can_be_assembled_explicitly() {
    let cluster = Cluster::new(NetworkModel::gigabit_ethernet())
        .with_node(Node::tesla_s1070_server("paper-testbed"))
        .with_node(Node::dual_gpu_server("lab-1"))
        .with_node(Node::dual_gpu_server("lab-2"));
    assert_eq!(cluster.nodes().len(), 3);
    assert_eq!(
        cluster.nodes()[0].gpu_count(),
        4,
        "the S1070 node has 4 GPUs"
    );
    assert_eq!(cluster.gpu_profiles().len(), 8);
    // Every remote device remembers which node it lives on.
    let remotes = cluster.remote_devices();
    assert_eq!(remotes.len(), cluster.device_count());
}

#[test]
fn heterogeneous_devices_need_non_even_workloads() {
    // A Tesla GPU, a small GPU and a CPU: the scheduler's weighted block
    // distribution must give the Tesla the largest part and the CPU the
    // smallest.
    let rt = skelcl::init_profiles(vec![
        oclsim::DeviceProfile::tesla_c1060(),
        oclsim::DeviceProfile::generic_small_gpu(),
        oclsim::DeviceProfile::xeon_e5520(),
    ]);
    let scheduler = StaticScheduler::analytical(&rt);
    let dist = scheduler.weighted_block(CostHint::new(200.0, 8.0));

    let v = Vector::from_vec(&rt, vec![0.0f32; 10_000]);
    v.set_distribution(dist).unwrap();
    v.copy_data_to_devices().unwrap();
    let sizes = v.sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 10_000);
    assert!(
        sizes[0] > sizes[1] && sizes[1] > sizes[2],
        "parts must follow device speed: {sizes:?}"
    );
    assert!(
        sizes[0] > 10_000 / 3,
        "the Tesla must receive more than an even share"
    );
}

#[test]
fn weighted_distribution_beats_the_even_split_on_heterogeneous_devices() {
    let row = skelcl_bench::sched::even_vs_weighted(100_000).unwrap();
    assert!(
        row.speedup() > 1.05,
        "the scheduler's split must beat the even split (speed-up {:.3})",
        row.speedup()
    );
}

#[test]
fn small_final_reductions_belong_on_the_cpu_large_ones_on_the_gpu() {
    // "CPUs will be faster to perform the final reduction of these vectors
    // than GPUs which provide poor performance when reducing only few
    // elements."
    let rt = skelcl::init_profiles(vec![
        oclsim::DeviceProfile::tesla_c1060(),
        oclsim::DeviceProfile::tesla_c1060(),
        oclsim::DeviceProfile::xeon_e5520(),
    ]);
    let scheduler = StaticScheduler::analytical(&rt);

    let (_, few_on_cpu) = scheduler
        .final_reduce_placement(4, 4, CostHint::new(1.0, 8.0))
        .unwrap();
    assert!(few_on_cpu, "a handful of partial results goes to the CPU");

    let (_, many_on_cpu) = scheduler
        .final_reduce_placement(50_000_000, 4, CostHint::new(400.0, 8.0))
        .unwrap();
    assert!(
        !many_on_cpu,
        "a large compute-heavy reduction stays on a GPU"
    );
}

#[test]
fn stencils_run_on_the_cluster_and_halo_exchanges_pay_the_network() {
    use skelcl::{Boundary, MapOverlap, Matrix};

    const HEAT: &str = r#"
        float func(float u, float alpha) {
            return u + alpha * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
        }
    "#;
    let (rows, cols, sweeps) = (64usize, 32usize, 5usize);
    let image: Vec<f32> = (0..rows * cols).map(|i| ((i * 7) % 19) as f32).collect();

    // The same stencil program on four local Teslas and on the four Teslas
    // of the S1070 node reached through Gigabit Ethernet: identical results,
    // but every halo exchange of the remote runtime additionally crosses the
    // network (latency added, bandwidth capped by the interconnect via the
    // adjusted DeviceProfiles).
    let run_on = |profiles: Vec<oclsim::DeviceProfile>| {
        let rt = skelcl::init_profiles(profiles);
        let heat = MapOverlap::<f32, f32>::from_source(HEAT)
            .with_halo(1)
            .with_boundary(Boundary::Constant(0.0));
        let m = Matrix::from_vec(&rt, rows, cols, image.clone()).unwrap();
        rt.drain_events();
        let out = heat.run(&m).arg(0.2f32).run_iter(sweeps).unwrap();
        let result = out.to_vec().unwrap();
        let events = rt.drain_events();
        let halo_row_bytes = cols * 4;
        let halo_time = events
            .iter()
            .flatten()
            .filter(|e| e.is_transfer() && e.bytes <= halo_row_bytes)
            .fold(oclsim::SimDuration::ZERO, |acc, e| acc + e.duration());
        let trace = rt.exec_trace();
        (result, halo_time, trace)
    };

    let local_profiles = vec![oclsim::DeviceProfile::tesla_c1060(); 4];
    let remote_profiles = Cluster::new(NetworkModel::gigabit_ethernet())
        .with_node(Node::tesla_s1070_server("gpu-server"))
        .gpu_profiles();
    assert_eq!(remote_profiles.len(), 4, "same topology on both sides");

    let (local_result, local_halo_time, local_trace) = run_on(local_profiles);
    let (remote_result, remote_halo_time, remote_trace) = run_on(remote_profiles);

    assert_eq!(
        local_result, remote_result,
        "the distributed run must be bit-identical to the local one"
    );
    assert_eq!(
        local_trace.halo_bytes(),
        remote_trace.halo_bytes(),
        "both runs exchange exactly the same halo rows"
    );
    assert!(local_trace.halo_transfers() > 0);
    assert!(
        remote_halo_time > local_halo_time,
        "remote halo exchanges must be charged the network cost \
         (remote {remote_halo_time:?} vs local {local_halo_time:?})"
    );
}

#[test]
fn reduce_skeleton_still_computes_the_right_value_on_the_cluster() {
    let cluster = Cluster::lab_cluster();
    let rt = skelcl::init_profiles(cluster.device_profiles());
    let sum = Reduce::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let data: Vec<i32> = (1..=10_000).collect();
    let v = Vector::from_vec(&rt, data);
    assert_eq!(v.reduce(&sum).unwrap(), 10_000 * 10_001 / 2);
}
